"""Feature/target preprocessing shared by the predictors.

Execution times in Redshift span seven orders of magnitude (Figure 1b), so
every learned model here regresses in log space; :class:`LogTargetTransform`
centralizes the transform and its inverse.  :class:`StandardScaler` is the
usual zero-mean/unit-variance scaler for the GCN's dense inputs.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "RunningMoments",
    "StandardScaler",
    "LogTargetTransform",
    "clip_features",
]


class RunningMoments:
    """Mergeable per-column mean/variance moments (parallel Welford).

    The vector analogue of :class:`repro.cache.welford.RunningStats`:
    ``(count, mean, M2)`` per feature column, with a pairwise ``merge``
    (Chan et al. 1982) so shards of a dataset can be reduced into the
    exact moments of the concatenation.  Used by the sharded global-model
    trainer: each worker computes one trace's moments, the parent merges
    them **in trace order**, so the fitted scaler is bit-identical for
    any shard assignment (floating-point addition is not associative —
    a fixed merge order is what makes the reduction shard-stable).
    """

    def __init__(self, n_features: int):
        self.count = 0
        self.mean = np.zeros(n_features, dtype=np.float64)
        self.m2 = np.zeros(n_features, dtype=np.float64)

    def update(self, X) -> "RunningMoments":
        """Fold a batch of rows into the moments (one merge per batch)."""
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[1] != self.mean.shape[0]:
            raise ValueError(f"expected (n, {self.mean.shape[0]}) rows, got {X.shape}")
        if X.shape[0] == 0:
            return self
        batch = RunningMoments(X.shape[1])
        batch.count = X.shape[0]
        batch.mean = X.mean(axis=0)
        batch.m2 = ((X - batch.mean) ** 2).sum(axis=0)
        return self.merge(batch)

    def merge(self, other: "RunningMoments") -> "RunningMoments":
        """Fold ``other``'s moments into ``self`` (in place)."""
        if other.count == 0:
            return self
        if self.count == 0:
            self.count = other.count
            self.mean = other.mean.copy()
            self.m2 = other.m2.copy()
            return self
        total = self.count + other.count
        delta = other.mean - self.mean
        self.mean = self.mean + delta * (other.count / total)
        self.m2 = self.m2 + other.m2 + delta**2 * (self.count * other.count / total)
        self.count = total
        return self

    @property
    def variance(self) -> np.ndarray:
        """Population (``ddof=0``) variance per column."""
        if self.count < 1:
            return np.zeros_like(self.mean)
        return np.maximum(self.m2 / self.count, 0.0)

    @property
    def std(self) -> np.ndarray:
        return np.sqrt(self.variance)


class StandardScaler:
    """Per-column standardization with variance floor."""

    def __init__(self):
        self.mean_ = None
        self.scale_ = None

    def fit(self, X):
        X = np.asarray(X, dtype=np.float64)
        self.mean_ = X.mean(axis=0)
        std = X.std(axis=0)
        std[std < 1e-12] = 1.0
        self.scale_ = std
        return self

    @classmethod
    def from_moments(cls, moments: RunningMoments) -> "StandardScaler":
        """Build a fitted scaler from accumulated :class:`RunningMoments`."""
        if moments.count < 1:
            raise ValueError("cannot fit a scaler from zero observations")
        scaler = cls()
        scaler.mean_ = moments.mean.copy()
        std = moments.std
        std[std < 1e-12] = 1.0
        scaler.scale_ = std
        return scaler

    def transform(self, X):
        if self.mean_ is None:
            raise RuntimeError("StandardScaler.transform called before fit")
        return (np.asarray(X, dtype=np.float64) - self.mean_) / self.scale_

    def fit_transform(self, X):
        return self.fit(X).transform(X)

    def inverse_transform(self, X):
        if self.mean_ is None:
            raise RuntimeError("StandardScaler.inverse_transform called before fit")
        return np.asarray(X, dtype=np.float64) * self.scale_ + self.mean_


class LogTargetTransform:
    """``log1p``/``expm1`` transform for heavy-tailed exec-time targets.

    Predictions are clipped at ``max_seconds`` on the way back so that one
    wild model output cannot produce astronomically large estimates.
    """

    def __init__(self, max_seconds=1e6):
        self.max_seconds = max_seconds

    def transform(self, y):
        y = np.asarray(y, dtype=np.float64)
        return np.log1p(np.maximum(y, 0.0))

    def inverse(self, z):
        z = np.asarray(z, dtype=np.float64)
        return np.minimum(np.expm1(np.minimum(z, 50.0)), self.max_seconds)

    def inverse_variance(self, z_mean, z_var):
        """Approximate variance of ``expm1(Z)`` when ``Z ~ N(mean, var)``.

        Uses the lognormal identity ``Var[e^Z] = e^{2m+v}(e^v - 1)``, which
        dominates the ``-1`` shift for all but sub-millisecond queries.
        """
        z_mean = np.asarray(z_mean, dtype=np.float64)
        z_var = np.maximum(np.asarray(z_var, dtype=np.float64), 0.0)
        m = np.minimum(z_mean, 50.0)
        v = np.minimum(z_var, 50.0)
        return np.exp(2 * m + v) * (np.exp(v) - 1.0)


def clip_features(X, low=-1e12, high=1e12):
    """Replace NaN/inf with zeros and clip extreme magnitudes."""
    X = np.asarray(X, dtype=np.float64)
    X = np.nan_to_num(X, nan=0.0, posinf=high, neginf=low)
    return np.clip(X, low, high)
