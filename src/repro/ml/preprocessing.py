"""Feature/target preprocessing shared by the predictors.

Execution times in Redshift span seven orders of magnitude (Figure 1b), so
every learned model here regresses in log space; :class:`LogTargetTransform`
centralizes the transform and its inverse.  :class:`StandardScaler` is the
usual zero-mean/unit-variance scaler for the GCN's dense inputs.
"""

from __future__ import annotations

import numpy as np

__all__ = ["StandardScaler", "LogTargetTransform", "clip_features"]


class StandardScaler:
    """Per-column standardization with variance floor."""

    def __init__(self):
        self.mean_ = None
        self.scale_ = None

    def fit(self, X):
        X = np.asarray(X, dtype=np.float64)
        self.mean_ = X.mean(axis=0)
        std = X.std(axis=0)
        std[std < 1e-12] = 1.0
        self.scale_ = std
        return self

    def transform(self, X):
        if self.mean_ is None:
            raise RuntimeError("StandardScaler.transform called before fit")
        return (np.asarray(X, dtype=np.float64) - self.mean_) / self.scale_

    def fit_transform(self, X):
        return self.fit(X).transform(X)

    def inverse_transform(self, X):
        if self.mean_ is None:
            raise RuntimeError("StandardScaler.inverse_transform called before fit")
        return np.asarray(X, dtype=np.float64) * self.scale_ + self.mean_


class LogTargetTransform:
    """``log1p``/``expm1`` transform for heavy-tailed exec-time targets.

    Predictions are clipped at ``max_seconds`` on the way back so that one
    wild model output cannot produce astronomically large estimates.
    """

    def __init__(self, max_seconds=1e6):
        self.max_seconds = max_seconds

    def transform(self, y):
        y = np.asarray(y, dtype=np.float64)
        return np.log1p(np.maximum(y, 0.0))

    def inverse(self, z):
        z = np.asarray(z, dtype=np.float64)
        return np.minimum(np.expm1(np.minimum(z, 50.0)), self.max_seconds)

    def inverse_variance(self, z_mean, z_var):
        """Approximate variance of ``expm1(Z)`` when ``Z ~ N(mean, var)``.

        Uses the lognormal identity ``Var[e^Z] = e^{2m+v}(e^v - 1)``, which
        dominates the ``-1`` shift for all but sub-millisecond queries.
        """
        z_mean = np.asarray(z_mean, dtype=np.float64)
        z_var = np.maximum(np.asarray(z_var, dtype=np.float64), 0.0)
        m = np.minimum(z_mean, 50.0)
        v = np.minimum(z_var, 50.0)
        return np.exp(2 * m + v) * (np.exp(v) - 1.0)


def clip_features(X, low=-1e12, high=1e12):
    """Replace NaN/inf with zeros and clip extreme magnitudes."""
    X = np.asarray(X, dtype=np.float64)
    X = np.nan_to_num(X, nan=0.0, posinf=high, neginf=low)
    return np.clip(X, low, high)
