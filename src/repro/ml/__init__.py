"""Machine-learning substrate: GBDTs, Bayesian ensembles, MLP/GCN.

These are from-scratch numpy implementations standing in for XGBoost /
CatBoost / PyTorch in the paper's stack.
"""

from .losses import AbsoluteError, GaussianNLL, Objective, SquaredError, get_objective
from .tree import Binner, RegressionTree
from .gbm import GradientBoostingModel
from .ensemble import BayesianGBMEnsemble, EnsemblePrediction
from .nn import MLP, Adam, Linear, ReLU, huber_loss, mse_loss
from .gcn import DirectedGCN, GraphBatch, PlanGraph
from .preprocessing import LogTargetTransform, StandardScaler, clip_features

__all__ = [
    "Objective",
    "SquaredError",
    "AbsoluteError",
    "GaussianNLL",
    "get_objective",
    "Binner",
    "RegressionTree",
    "GradientBoostingModel",
    "BayesianGBMEnsemble",
    "EnsemblePrediction",
    "MLP",
    "Adam",
    "Linear",
    "ReLU",
    "huber_loss",
    "mse_loss",
    "DirectedGCN",
    "GraphBatch",
    "PlanGraph",
    "LogTargetTransform",
    "StandardScaler",
    "clip_features",
]
