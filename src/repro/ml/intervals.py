"""The interval algebra shared by every layer of the prediction path.

The paper's uncertainty story (Section 2.1: downstream consumers "need a
confidence interval to ensure good worst-case behavior") is threaded
through the whole stack in this repo: the exec-time cache derives a
prediction interval from its Welford statistics, the local Bayesian
ensemble derives member-spread quantile intervals, and the global model
carries a residual-variance head fit at training time.  This module owns
the arithmetic all three share, plus the empirical-coverage estimator
and the fixed-bin width histogram the serving stats roll up.

Every function here is engineered for the repo's bit-parity contracts:

- :func:`member_quantile_bounds` reduces over the member axis with
  ``np.quantile`` (a per-column sort + elementwise interpolation), so
  the bounds are *permutation-stable* across member order and a row
  predicted in any batch is bit-identical to predicting it alone;
- :func:`welford_interval` is scalar arithmetic on ``(count,
  sample_variance)`` — its half-width shrinks monotonically with the
  observation count for a fixed variance;
- the width histogram uses fixed bin edges and integer counts, so
  per-instance histograms merge across gateway shards by elementwise
  addition without any float reduction-order sensitivity.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from typing import Sequence, Tuple

import numpy as np

__all__ = [
    "NOMINAL_CONFIDENCE",
    "WIDTH_BIN_EDGES",
    "empirical_coverage",
    "member_quantile_bounds",
    "merge_width_bins",
    "new_width_bins",
    "welford_interval",
    "width_bin_index",
    "width_percentile_from_bins",
    "z_for",
]

#: the one confidence level carried end to end (cache -> gateway); the
#: calibration scorecard checks empirical coverage against this nominal
NOMINAL_CONFIDENCE = 0.9

_Z_CACHE: dict = {}


def z_for(confidence: float) -> float:
    """Two-sided standard-normal quantile for ``confidence`` coverage."""
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    z = _Z_CACHE.get(confidence)
    if z is None:
        from scipy.stats import norm

        z = _Z_CACHE[confidence] = float(norm.ppf(0.5 + confidence / 2.0))
    return z


# ---------------------------------------------------------------------------
# cache: Welford-variance prediction intervals (seconds domain)
# ---------------------------------------------------------------------------
def welford_interval(
    point: float,
    count: int,
    sample_variance: float,
    confidence: float = NOMINAL_CONFIDENCE,
) -> Tuple[float, float]:
    """Prediction interval around a cache estimate, from Welford stats.

    Uses the classic prediction-interval half-width ``z * sqrt(s2 * (1 +
    1/n))`` — the spread of the *next* observation, not of the mean — so
    for a fixed sample variance the interval shrinks strictly
    monotonically as ``n`` grows (the Hypothesis property suite pins
    this).  Entries with fewer than two observations (or zero variance)
    collapse to the point; the lower bound is clamped at 0 because
    exec-times cannot be negative.
    """
    if count < 2 or sample_variance <= 0.0:
        return (point, point)
    half = z_for(confidence) * math.sqrt(sample_variance * (1.0 + 1.0 / count))
    return (max(point - half, 0.0), point + half)


# ---------------------------------------------------------------------------
# ensemble: member-spread quantile bounds (log space, vectorized)
# ---------------------------------------------------------------------------
def member_quantile_bounds(
    mus: np.ndarray,
    sigma2s: np.ndarray,
    mean: np.ndarray | None = None,
    confidence: float = NOMINAL_CONFIDENCE,
) -> Tuple[np.ndarray, np.ndarray]:
    """Quantile interval bounds over the member axis of an ensemble.

    ``mus``/``sigma2s`` are ``(K, N)``: member ``k``'s Gaussian mean and
    variance for each of ``N`` queries.  Each member contributes its own
    ``mu_k +- z * sigma_k`` band; the ensemble bounds are the
    ``alpha/2`` / ``1 - alpha/2`` quantiles of those per-member bounds,
    widened (elementwise) to always contain the ensemble mean.

    ``np.quantile(..., axis=0)`` sorts each column independently, which
    gives the two invariants the parity contracts need: the result is
    identical under any permutation of the members, and each column's
    bound never depends on which other columns share the batch.
    """
    z = z_for(confidence)
    mus = np.asarray(mus, dtype=np.float64)
    spread = z * np.sqrt(np.maximum(np.asarray(sigma2s, dtype=np.float64), 0.0))
    alpha = (1.0 - confidence) / 2.0
    low = np.quantile(mus - spread, alpha, axis=0)
    high = np.quantile(mus + spread, 1.0 - alpha, axis=0)
    if mean is None:
        # member-order-stable ensemble mean (same accumulation order as
        # BayesianGBMEnsemble.predict) so the containment widening is exact
        mean = np.zeros(mus.shape[1])
        for k in range(mus.shape[0]):
            mean += mus[k]
        mean /= mus.shape[0]
    return np.minimum(low, mean), np.maximum(high, mean)


# ---------------------------------------------------------------------------
# scorecard: empirical coverage
# ---------------------------------------------------------------------------
def empirical_coverage(true, low, high) -> float:
    """Fraction of ``true`` values inside ``[low, high]``.

    Rows where any of the three is NaN are excluded (a NaN bound means
    the source never answered that query); all-NaN input returns NaN.
    Matches the brute-force per-row count exactly — the Hypothesis suite
    checks the equivalence.
    """
    true = np.asarray(true, dtype=np.float64)
    low = np.asarray(low, dtype=np.float64)
    high = np.asarray(high, dtype=np.float64)
    valid = ~(np.isnan(true) | np.isnan(low) | np.isnan(high))
    n = int(valid.sum())
    if n == 0:
        return float("nan")
    inside = (true[valid] >= low[valid]) & (true[valid] <= high[valid])
    return float(int(inside.sum()) / n)


# ---------------------------------------------------------------------------
# serving stats: fixed-bin interval-width histogram (mergeable)
# ---------------------------------------------------------------------------
#: fixed seconds-domain bin edges; bin ``i`` holds widths in
#: ``[edges[i-1], edges[i])`` with an open first and last bin
WIDTH_BIN_EDGES = (0.01, 0.1, 0.5, 1.0, 2.0, 5.0, 10.0, 30.0, 60.0, 300.0, 1800.0)

#: number of counters in a width histogram
N_WIDTH_BINS = len(WIDTH_BIN_EDGES) + 1


def new_width_bins() -> list:
    """A zeroed width histogram (one counter per bin)."""
    return [0] * N_WIDTH_BINS


def width_bin_index(width: float) -> int:
    """The histogram bin holding ``width`` (seconds)."""
    return bisect_right(WIDTH_BIN_EDGES, width)


def merge_width_bins(a: Sequence[int], b: Sequence[int]) -> list:
    """Elementwise sum of two width histograms (gateway fleet roll-up)."""
    if len(a) != len(b):
        raise ValueError(f"width histograms differ in size: {len(a)} vs {len(b)}")
    return [int(x) + int(y) for x, y in zip(a, b)]


def width_percentile_from_bins(bins: Sequence[int], q: float) -> float:
    """Deterministic percentile readout of a width histogram.

    Returns the upper edge of the bin containing the ``q``-quantile
    observation (integer rank arithmetic only — merge order can never
    change the answer); the open top bin reports ``inf`` and an empty
    histogram reports 0.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError("q must be in [0, 1]")
    total = sum(int(c) for c in bins)
    if total == 0:
        return 0.0
    rank = max(1, math.ceil(q * total))
    seen = 0
    for i, count in enumerate(bins):
        seen += int(count)
        if seen >= rank:
            return float(WIDTH_BIN_EDGES[i]) if i < len(WIDTH_BIN_EDGES) else float("inf")
    return float("inf")
