"""Gradient boosting machine on numpy histogram trees.

This stands in for XGBoost/CatBoost in the paper: the AutoWLM baseline is a
single :class:`GradientBoostingModel` with the absolute-error objective, and
the Stage local model is a Bayesian ensemble of models with the Gaussian
negative-log-likelihood objective (see :mod:`repro.ml.ensemble`).

Supports multi-parameter objectives (one tree per raw parameter per round),
row/column subsampling, and early stopping on a held-out validation split —
matching the paper's "20% of training data as a validation set for early
stopping" setup (Section 5.1).
"""

from __future__ import annotations

import numpy as np

from .losses import get_objective
from .tree import Binner, RegressionTree

__all__ = ["GradientBoostingModel"]


class GradientBoostingModel:
    """Additive regression-tree model trained with Newton boosting.

    Parameters
    ----------
    objective:
        Objective name (``"squared_error"``, ``"absolute_error"``,
        ``"gaussian_nll"``) or an :class:`~repro.ml.losses.Objective`.
    n_estimators:
        Maximum boosting rounds (each round fits ``objective.n_params``
        trees).
    learning_rate:
        Shrinkage applied to each tree's contribution.
    max_depth, min_samples_leaf, min_child_weight, reg_lambda:
        Tree learner settings (see :class:`~repro.ml.tree.RegressionTree`).
    subsample, colsample:
        Row / column sampling fractions per round.
    early_stopping_rounds:
        Stop when validation loss has not improved for this many rounds.
        ``None`` disables early stopping even if a validation set is given.
    validation_fraction:
        Fraction of training rows held out for early stopping when no
        explicit ``eval_set`` is passed to :meth:`fit`.
    max_bins:
        Histogram resolution.
    random_state:
        Seed for subsampling and the validation split.
    """

    def __init__(
        self,
        objective="squared_error",
        n_estimators=200,
        learning_rate=0.1,
        max_depth=6,
        min_samples_leaf=5,
        min_child_weight=1e-3,
        reg_lambda=1.0,
        subsample=1.0,
        colsample=1.0,
        early_stopping_rounds=10,
        validation_fraction=0.2,
        max_bins=64,
        random_state=None,
    ):
        self.objective = get_objective(objective)
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.min_child_weight = min_child_weight
        self.reg_lambda = reg_lambda
        self.subsample = subsample
        self.colsample = colsample
        self.early_stopping_rounds = early_stopping_rounds
        self.validation_fraction = validation_fraction
        self.max_bins = max_bins
        self.random_state = random_state

        self.trees_ = None  # list of rounds; each round: list per parameter
        self.init_raw_ = None
        self.binner_ = None
        self.best_iteration_ = None
        self.train_losses_ = None
        self.val_losses_ = None

    # ------------------------------------------------------------------
    def fit(self, X, y, eval_set=None):
        """Fit on ``(X, y)``.

        ``eval_set`` may be a ``(X_val, y_val)`` tuple; otherwise an
        internal split of ``validation_fraction`` rows is carved out when
        early stopping is enabled and there is enough data.
        """
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError("X must be 2-dimensional")
        if X.shape[0] != y.shape[0]:
            raise ValueError("X and y have mismatched lengths")
        if X.shape[0] == 0:
            raise ValueError("cannot fit on an empty dataset")
        rng = np.random.default_rng(self.random_state)

        X_val = y_val = None
        if eval_set is not None:
            X_val = np.asarray(eval_set[0], dtype=np.float64)
            y_val = np.asarray(eval_set[1], dtype=np.float64)
        elif (
            self.early_stopping_rounds is not None
            and self.validation_fraction
            and X.shape[0] >= 20
        ):
            n_val = max(1, int(X.shape[0] * self.validation_fraction))
            perm = rng.permutation(X.shape[0])
            val_idx, train_idx = perm[:n_val], perm[n_val:]
            X_val, y_val = X[val_idx], y[val_idx]
            X, y = X[train_idx], y[train_idx]

        n, n_features = X.shape
        self.binner_ = Binner(max_bins=self.max_bins).fit(X)
        binned = self.binner_.transform(X)
        binned_val = self.binner_.transform(X_val) if X_val is not None else None

        obj = self.objective
        self.init_raw_ = obj.init_raw(y)
        raw = np.tile(self.init_raw_, (n, 1))
        raw_val = np.tile(self.init_raw_, (X_val.shape[0], 1)) if X_val is not None else None

        self.trees_ = []
        self.train_losses_ = []
        self.val_losses_ = []
        best_val = np.inf
        best_round = 0
        rounds_since_best = 0

        for _ in range(self.n_estimators):
            grad, hess = obj.grad_hess(y, raw)
            if self.subsample < 1.0:
                mask = rng.random(n) < self.subsample
                if not mask.any():
                    mask[rng.integers(n)] = True
                sample_w = mask.astype(np.float64)
            else:
                sample_w = None
            if self.colsample < 1.0:
                k = max(1, int(round(self.colsample * n_features)))
                feature_indices = np.sort(rng.choice(n_features, size=k, replace=False))
            else:
                feature_indices = None

            round_trees = []
            for p in range(obj.n_params):
                g = grad[:, p]
                h = hess[:, p]
                if sample_w is not None:
                    g = g * sample_w
                    h = h * sample_w
                tree = RegressionTree(
                    max_depth=self.max_depth,
                    min_samples_leaf=self.min_samples_leaf,
                    min_child_weight=self.min_child_weight,
                    reg_lambda=self.reg_lambda,
                )
                tree.fit(binned, g, h, self.binner_, feature_indices)
                update = tree.predict_binned(binned)
                raw[:, p] += self.learning_rate * update
                if raw_val is not None:
                    raw_val[:, p] += self.learning_rate * tree.predict_binned(binned_val)
                round_trees.append(tree)
            self.trees_.append(round_trees)
            self.train_losses_.append(obj.loss(y, raw))

            if raw_val is not None:
                val_loss = obj.loss(y_val, raw_val)
                self.val_losses_.append(val_loss)
                if val_loss < best_val - 1e-12:
                    best_val = val_loss
                    best_round = len(self.trees_)
                    rounds_since_best = 0
                else:
                    rounds_since_best += 1
                    if (
                        self.early_stopping_rounds is not None
                        and rounds_since_best >= self.early_stopping_rounds
                    ):
                        break

        if raw_val is not None and self.early_stopping_rounds is not None:
            self.best_iteration_ = max(1, best_round)
            self.trees_ = self.trees_[: self.best_iteration_]
        else:
            self.best_iteration_ = len(self.trees_)
        return self

    # ------------------------------------------------------------------
    def predict_raw(self, X):
        """Raw scores of shape ``(n, n_params)``."""
        if self.trees_ is None:
            raise RuntimeError("model is not fitted")
        X = np.asarray(X, dtype=np.float64)
        raw = np.tile(self.init_raw_, (X.shape[0], 1))
        for round_trees in self.trees_:
            for p, tree in enumerate(round_trees):
                raw[:, p] += self.learning_rate * tree.predict(X)
        return raw

    def predict(self, X):
        """Point prediction (mean parameter)."""
        mean, _ = self.objective.raw_to_prediction(self.predict_raw(X))
        return mean

    def predict_dist(self, X):
        """``(mean, variance)`` per sample.

        Point objectives return zero variance.
        """
        return self.objective.raw_to_prediction(self.predict_raw(X))

    # ------------------------------------------------------------------
    @property
    def n_trees(self):
        if self.trees_ is None:
            return 0
        return sum(len(r) for r in self.trees_)

    def byte_size(self):
        """Approximate in-memory model size (bytes)."""
        if self.trees_ is None:
            return 0
        return int(sum(t.byte_size() for round_trees in self.trees_ for t in round_trees))
