"""Bayesian ensemble of probabilistic GBMs with uncertainty decomposition.

Implements the ensemble scheme the paper adapts from Malinin et al. (2021)
("Uncertainty in Gradient Boosting via Ensembles", the paper's [31]) for
the Stage local model, Section 4.3:

- ``K`` gradient-boosting models are trained independently with a Gaussian
  log-likelihood loss, each producing ``(mu_k, sigma2_k)`` per query;
- the final prediction is ``y_hat = mean_k(mu_k)``            (paper Eq. 1);
- *model* uncertainty is ``mean_k((y_hat - mu_k)^2)``;
- *data* uncertainty is ``mean_k(sigma2_k)``;
- total prediction uncertainty is their sum                   (paper Eq. 2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .gbm import GradientBoostingModel
from .intervals import member_quantile_bounds

__all__ = ["EnsemblePrediction", "BayesianGBMEnsemble"]


@dataclass
class EnsemblePrediction:
    """Decomposed ensemble output for a batch of queries.

    ``interval_low``/``interval_high`` are the member-spread quantile
    bounds (:func:`~repro.ml.intervals.member_quantile_bounds`) at the
    pipeline-wide nominal confidence, in the same (log) space as
    ``mean`` — callers map them through the target transform alongside
    the mean.
    """

    mean: np.ndarray
    model_uncertainty: np.ndarray
    data_uncertainty: np.ndarray
    interval_low: np.ndarray = None
    interval_high: np.ndarray = None

    @property
    def total_uncertainty(self):
        return self.model_uncertainty + self.data_uncertainty

    @property
    def std(self):
        return np.sqrt(self.total_uncertainty)


class BayesianGBMEnsemble:
    """``K`` independently trained Gaussian-NLL GBMs (paper Section 4.3).

    Diversity between members comes from different random seeds, which
    randomize each member's internal validation split and row/column
    subsampling — the same source of diversity as retraining CatBoost with
    different seeds.

    Parameters
    ----------
    n_members:
        Ensemble size ``K`` (the paper uses 10).
    random_state:
        Base seed; member ``k`` uses ``random_state + k``.
    **gbm_kwargs:
        Forwarded to every :class:`~repro.ml.gbm.GradientBoostingModel`.
        The objective is forced to ``gaussian_nll``.
    """

    def __init__(self, n_members=10, random_state=0, **gbm_kwargs):
        if n_members < 1:
            raise ValueError("n_members must be >= 1")
        self.n_members = n_members
        self.random_state = random_state
        gbm_kwargs.pop("objective", None)
        gbm_kwargs.setdefault("subsample", 0.8)
        self.gbm_kwargs = gbm_kwargs
        self.members_ = None

    def fit(self, X, y):
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        self.members_ = []
        for k in range(self.n_members):
            model = GradientBoostingModel(
                objective="gaussian_nll",
                random_state=None
                if self.random_state is None
                else self.random_state + k,
                **self.gbm_kwargs,
            )
            model.fit(X, y)
            self.members_.append(model)
        return self

    def predict(self, X):
        """Return an :class:`EnsemblePrediction` for ``X``.

        The ensemble moments are accumulated member by member rather
        than via ``ndarray.mean(axis=0)``: numpy's axis reductions pick
        different summation orders for different shapes (pairwise for a
        single column, sequential otherwise), which would make batched
        predictions differ from per-row predictions in the last ulp.
        Member-order accumulation is batch-size-invariant, so a row
        predicted in any batch is bit-identical to predicting it alone —
        the replay harness depends on this to defer and batch inference.
        """
        if self.members_ is None:
            raise RuntimeError("ensemble is not fitted")
        X = np.asarray(X, dtype=np.float64)
        mus = np.empty((self.n_members, X.shape[0]))
        sigma2s = np.empty_like(mus)
        for k, model in enumerate(self.members_):
            mu, sigma2 = model.predict_dist(X)
            mus[k] = mu
            sigma2s[k] = sigma2
        mean = np.zeros(X.shape[0])
        data_unc = np.zeros(X.shape[0])
        for k in range(self.n_members):
            mean += mus[k]
            data_unc += sigma2s[k]
        mean /= self.n_members
        data_unc /= self.n_members
        model_unc = np.zeros(X.shape[0])
        for k in range(self.n_members):
            model_unc += (mean - mus[k]) ** 2
        model_unc /= self.n_members
        # member-spread quantile bounds: np.quantile sorts per column, so
        # the bounds share both invariants — permutation-stable across
        # member order and batch-size-invariant per row
        interval_low, interval_high = member_quantile_bounds(mus, sigma2s, mean=mean)
        return EnsemblePrediction(
            mean=mean,
            model_uncertainty=model_unc,
            data_uncertainty=data_unc,
            interval_low=interval_low,
            interval_high=interval_high,
        )

    def predict_mean(self, X):
        return self.predict(X).mean

    @property
    def is_fitted(self):
        return self.members_ is not None

    def byte_size(self):
        if self.members_ is None:
            return 0
        return int(sum(m.byte_size() for m in self.members_))
