"""Training objectives for the gradient boosting machine.

Each objective maps raw model scores (one or two parameters per sample) to
per-sample gradients and Hessians, mirroring how XGBoost/CatBoost drive tree
construction.  The Gaussian negative log-likelihood objective is the
two-parameter ``RMSEWithUncertainty``-style loss the paper uses for the
local model's ensemble members (Section 4.3): each member predicts a mean
and a variance, and the variance term is what the Bayesian ensemble reads
off as *data uncertainty*.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "Objective",
    "SquaredError",
    "AbsoluteError",
    "GaussianNLL",
    "get_objective",
]

# Floor applied to predicted variances so the NLL stays finite and the
# Newton steps stay bounded.
_MIN_LOG_VAR = -12.0
_MAX_LOG_VAR = 12.0


class Objective:
    """Base class for boosting objectives.

    An objective with ``n_params`` raw outputs per sample turns a raw score
    matrix of shape ``(n_samples, n_params)`` into gradients/Hessians of the
    same shape.  The GBM fits one tree per parameter per boosting round.
    """

    #: number of raw parameters the model outputs per sample
    n_params = 1
    #: human-readable identifier used by :func:`get_objective`
    name = "base"

    def init_raw(self, y):
        """Return the initial raw prediction (shape ``(n_params,)``)."""
        raise NotImplementedError

    def grad_hess(self, y, raw):
        """Return ``(grad, hess)`` arrays of shape ``(n, n_params)``."""
        raise NotImplementedError

    def loss(self, y, raw):
        """Mean loss value used for early stopping."""
        raise NotImplementedError

    def raw_to_prediction(self, raw):
        """Map raw scores to ``(mean, variance)``.

        Point objectives report zero variance; probabilistic objectives
        decode their variance parameter.
        """
        raise NotImplementedError


class SquaredError(Objective):
    """Classic L2 regression objective (one parameter: the mean)."""

    n_params = 1
    name = "squared_error"

    def init_raw(self, y):
        return np.array([float(np.mean(y))])

    def grad_hess(self, y, raw):
        grad = raw[:, 0] - y
        hess = np.ones_like(grad)
        return grad[:, None], hess[:, None]

    def loss(self, y, raw):
        return float(np.mean((raw[:, 0] - y) ** 2))

    def raw_to_prediction(self, raw):
        mean = raw[:, 0]
        return mean, np.zeros_like(mean)


class AbsoluteError(Objective):
    """L1 regression objective.

    This is the loss the prior AutoWLM predictor trains with (Section 5.1).
    The Hessian of `|r|` is zero almost everywhere, so, as XGBoost does, we
    substitute a unit Hessian which turns the Newton step into a plain
    gradient step on the leaf.
    """

    n_params = 1
    name = "absolute_error"

    def init_raw(self, y):
        return np.array([float(np.median(y))])

    def grad_hess(self, y, raw):
        grad = np.sign(raw[:, 0] - y)
        hess = np.ones_like(grad)
        return grad[:, None], hess[:, None]

    def loss(self, y, raw):
        return float(np.mean(np.abs(raw[:, 0] - y)))

    def raw_to_prediction(self, raw):
        mean = raw[:, 0]
        return mean, np.zeros_like(mean)


class GaussianNLL(Objective):
    """Gaussian negative log-likelihood with two parameters per sample.

    Raw parameters are ``(mu, log_var)``.  The NLL of one sample is::

        0.5 * log_var + 0.5 * (y - mu)^2 / exp(log_var)

    Gradients/Hessians (all positive Hessians, so Newton leaf values are
    well defined):

    - d/dmu       = (mu - y) / var          d2/dmu2       = 1 / var
    - d/dlog_var  = 0.5 - 0.5 (y-mu)^2/var  d2/dlog_var2  = 0.5 (y-mu)^2/var
    """

    n_params = 2
    name = "gaussian_nll"

    def init_raw(self, y):
        mu = float(np.mean(y))
        var = float(np.var(y)) + 1e-6
        return np.array([mu, np.clip(np.log(var), _MIN_LOG_VAR, _MAX_LOG_VAR)])

    def _var(self, raw):
        return np.exp(np.clip(raw[:, 1], _MIN_LOG_VAR, _MAX_LOG_VAR))

    def grad_hess(self, y, raw):
        mu = raw[:, 0]
        var = self._var(raw)
        resid = mu - y
        scaled_sq = resid**2 / var

        grad = np.empty((y.shape[0], 2))
        hess = np.empty_like(grad)
        grad[:, 0] = resid / var
        hess[:, 0] = 1.0 / var
        grad[:, 1] = 0.5 - 0.5 * scaled_sq
        # Floor the log-var Hessian: when the residual is ~0 the true
        # Hessian vanishes and the Newton step would explode.
        hess[:, 1] = np.maximum(0.5 * scaled_sq, 1e-2)
        return grad, hess

    def loss(self, y, raw):
        mu = raw[:, 0]
        var = self._var(raw)
        return float(np.mean(0.5 * np.log(var) + 0.5 * (y - mu) ** 2 / var))

    def raw_to_prediction(self, raw):
        return raw[:, 0].copy(), self._var(raw)


_OBJECTIVES = {
    SquaredError.name: SquaredError,
    AbsoluteError.name: AbsoluteError,
    GaussianNLL.name: GaussianNLL,
}


def get_objective(name):
    """Look up an objective by name (``str``) or pass through an instance."""
    if isinstance(name, Objective):
        return name
    try:
        return _OBJECTIVES[name]()
    except KeyError:
        raise ValueError(
            f"unknown objective {name!r}; expected one of {sorted(_OBJECTIVES)}"
        ) from None
