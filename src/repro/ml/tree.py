"""Histogram-based regression trees.

This is the tree learner underneath :mod:`repro.ml.gbm`.  Features are
quantile-binned once per boosting run (:class:`Binner`), and each tree finds
greedy splits over bin histograms of gradient/Hessian sums — the same
strategy as LightGBM/XGBoost's ``hist`` mode.  Trees are grown depth-wise
and stored in flat arrays so prediction is a tight vectorized loop.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Binner", "RegressionTree"]

_MAX_BINS_LIMIT = 255


class Binner:
    """Quantile feature binning shared by all trees in one boosting run.

    Parameters
    ----------
    max_bins:
        Upper bound on the number of bins per feature (including one
        implicit bin for values above the last edge).
    """

    def __init__(self, max_bins=64):
        if not 2 <= max_bins <= _MAX_BINS_LIMIT:
            raise ValueError(f"max_bins must be in [2, {_MAX_BINS_LIMIT}]")
        self.max_bins = max_bins
        self.bin_edges_ = None

    def fit(self, X):
        """Compute per-feature quantile bin edges."""
        X = np.asarray(X, dtype=np.float64)
        n_features = X.shape[1]
        self.bin_edges_ = []
        quantiles = np.linspace(0, 1, self.max_bins + 1)[1:-1]
        for j in range(n_features):
            col = X[:, j]
            col = col[np.isfinite(col)]
            if col.size == 0:
                edges = np.array([0.0])
            else:
                edges = np.unique(np.quantile(col, quantiles))
            self.bin_edges_.append(edges)
        return self

    def transform(self, X):
        """Map raw features to uint8 bin indices."""
        X = np.asarray(X, dtype=np.float64)
        if self.bin_edges_ is None:
            raise RuntimeError("Binner.transform called before fit")
        binned = np.empty(X.shape, dtype=np.uint8)
        for j, edges in enumerate(self.bin_edges_):
            binned[:, j] = np.searchsorted(edges, X[:, j], side="left")
        return binned

    def fit_transform(self, X):
        return self.fit(X).transform(X)

    def n_bins(self, feature):
        """Number of distinct bin indices feature ``feature`` can take."""
        return len(self.bin_edges_[feature]) + 1

    def threshold_value(self, feature, bin_index):
        """Raw-space threshold for a split at ``bin <= bin_index``."""
        return float(self.bin_edges_[feature][bin_index])


class _NodeBatch:
    """Work item while growing a tree: one node and its sample indices."""

    __slots__ = ("node_id", "indices", "depth", "grad_sum", "hess_sum")

    def __init__(self, node_id, indices, depth, grad_sum, hess_sum):
        self.node_id = node_id
        self.indices = indices
        self.depth = depth
        self.grad_sum = grad_sum
        self.hess_sum = hess_sum


class RegressionTree:
    """A single histogram-split regression tree fit to (grad, hess).

    The leaf value is the Newton step ``-G / (H + reg_lambda)``; the split
    gain is the standard XGBoost gain.  The tree records both the bin index
    and the raw threshold value, so prediction works on raw feature
    matrices without re-binning.

    Parameters
    ----------
    max_depth:
        Maximum tree depth (root = depth 0).
    min_samples_leaf:
        Minimum number of samples on each side of a split.
    min_child_weight:
        Minimum Hessian mass on each side of a split.
    reg_lambda:
        L2 regularization added to the Hessian in leaf values and gains.
    min_gain:
        Minimum split gain; nodes below this become leaves.
    """

    def __init__(
        self,
        max_depth=6,
        min_samples_leaf=5,
        min_child_weight=1e-3,
        reg_lambda=1.0,
        min_gain=1e-7,
    ):
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.min_child_weight = min_child_weight
        self.reg_lambda = reg_lambda
        self.min_gain = min_gain
        # flat node storage, filled by fit()
        self.feature_ = None
        self.threshold_ = None
        self.left_ = None
        self.right_ = None
        self.value_ = None
        self.is_leaf_ = None
        self.n_nodes_ = 0

    # ------------------------------------------------------------------
    # fitting
    # ------------------------------------------------------------------
    def fit(self, binned, grad, hess, binner, feature_indices=None):
        """Fit the tree on pre-binned data.

        Parameters
        ----------
        binned:
            uint8 matrix of bin indices, shape ``(n, n_features)``.
        grad, hess:
            Per-sample gradient and Hessian vectors.
        binner:
            The :class:`Binner` that produced ``binned`` (for thresholds).
        feature_indices:
            Optional subset of feature columns to consider (column
            subsampling), given as indices into ``binned``'s columns.
        """
        n_samples, n_features = binned.shape
        if feature_indices is None:
            feature_indices = np.arange(n_features)

        max_nodes = 2 ** (self.max_depth + 2)
        self.feature_ = np.full(max_nodes, -1, dtype=np.int32)
        self.threshold_ = np.zeros(max_nodes, dtype=np.float64)
        self._threshold_bin = np.zeros(max_nodes, dtype=np.int32)
        self.left_ = np.full(max_nodes, -1, dtype=np.int32)
        self.right_ = np.full(max_nodes, -1, dtype=np.int32)
        self.value_ = np.zeros(max_nodes, dtype=np.float64)
        self.is_leaf_ = np.ones(max_nodes, dtype=bool)
        self.n_nodes_ = 1

        root = _NodeBatch(0, np.arange(n_samples), 0, float(grad.sum()), float(hess.sum()))
        stack = [root]
        while stack:
            node = stack.pop()
            self.value_[node.node_id] = self._leaf_value(node.grad_sum, node.hess_sum)
            if node.depth >= self.max_depth or node.indices.size < 2 * self.min_samples_leaf:
                continue
            split = self._best_split(binned, grad, hess, node, binner, feature_indices)
            if split is None:
                continue
            feat, bin_idx, gain = split
            go_left = binned[node.indices, feat] <= bin_idx
            left_idx = node.indices[go_left]
            right_idx = node.indices[~go_left]
            if left_idx.size < self.min_samples_leaf or right_idx.size < self.min_samples_leaf:
                continue

            nid = node.node_id
            left_id = self.n_nodes_
            right_id = self.n_nodes_ + 1
            self.n_nodes_ += 2
            self.is_leaf_[nid] = False
            self.feature_[nid] = feat
            self._threshold_bin[nid] = bin_idx
            self.threshold_[nid] = binner.threshold_value(feat, bin_idx)
            self.left_[nid] = left_id
            self.right_[nid] = right_id

            gl = float(grad[left_idx].sum())
            hl = float(hess[left_idx].sum())
            stack.append(_NodeBatch(left_id, left_idx, node.depth + 1, gl, hl))
            stack.append(
                _NodeBatch(
                    right_id,
                    right_idx,
                    node.depth + 1,
                    node.grad_sum - gl,
                    node.hess_sum - hl,
                )
            )

        self._trim(binner)
        return self

    def _leaf_value(self, grad_sum, hess_sum):
        return -grad_sum / max(hess_sum + self.reg_lambda, 1e-12)

    def _score(self, g, h):
        denom = h + self.reg_lambda
        return g * g / np.maximum(denom, 1e-12)

    def _best_split(self, binned, grad, hess, node, binner, feature_indices):
        idx = node.indices
        g = grad[idx]
        h = hess[idx]
        parent_score = self._score(node.grad_sum, node.hess_sum)
        best = None
        best_gain = self.min_gain
        for feat in feature_indices:
            bins = binned[idx, feat].astype(np.int64)
            n_bins = binner.n_bins(feat)
            if n_bins < 2:
                continue
            g_hist = np.bincount(bins, weights=g, minlength=n_bins)
            h_hist = np.bincount(bins, weights=h, minlength=n_bins)
            c_hist = np.bincount(bins, minlength=n_bins)

            g_left = np.cumsum(g_hist)[:-1]
            h_left = np.cumsum(h_hist)[:-1]
            c_left = np.cumsum(c_hist)[:-1]
            g_right = node.grad_sum - g_left
            h_right = node.hess_sum - h_left
            c_right = idx.size - c_left

            valid = (
                (c_left >= self.min_samples_leaf)
                & (c_right >= self.min_samples_leaf)
                & (h_left >= self.min_child_weight)
                & (h_right >= self.min_child_weight)
            )
            if not valid.any():
                continue
            gains = np.where(
                valid,
                self._score(g_left, h_left)
                + self._score(g_right, h_right)
                - parent_score,
                -np.inf,
            )
            j = int(np.argmax(gains))
            if gains[j] > best_gain:
                best_gain = float(gains[j])
                best = (int(feat), j, best_gain)
        return best

    def _trim(self, binner):
        n = self.n_nodes_
        self.feature_ = self.feature_[:n]
        self.threshold_ = self.threshold_[:n]
        self._threshold_bin = self._threshold_bin[:n]
        self.left_ = self.left_[:n]
        self.right_ = self.right_[:n]
        self.value_ = self.value_[:n]
        self.is_leaf_ = self.is_leaf_[:n]

    # ------------------------------------------------------------------
    # prediction
    # ------------------------------------------------------------------
    def predict(self, X):
        """Predict leaf values for a raw (un-binned) feature matrix."""
        X = np.asarray(X, dtype=np.float64)
        n = X.shape[0]
        node_ids = np.zeros(n, dtype=np.int32)
        active = ~self.is_leaf_[node_ids]
        while active.any():
            rows = np.nonzero(active)[0]
            nids = node_ids[rows]
            feats = self.feature_[nids]
            thresh = self.threshold_[nids]
            go_left = X[rows, feats] <= thresh
            node_ids[rows[go_left]] = self.left_[nids[go_left]]
            node_ids[rows[~go_left]] = self.right_[nids[~go_left]]
            active = ~self.is_leaf_[node_ids]
        return self.value_[node_ids]

    def predict_binned(self, binned):
        """Predict leaf values for pre-binned data (training-time path)."""
        n = binned.shape[0]
        node_ids = np.zeros(n, dtype=np.int32)
        active = ~self.is_leaf_[node_ids]
        while active.any():
            rows = np.nonzero(active)[0]
            nids = node_ids[rows]
            feats = self.feature_[nids]
            thresh = self._threshold_bin[nids]
            go_left = binned[rows, feats] <= thresh
            node_ids[rows[go_left]] = self.left_[nids[go_left]]
            node_ids[rows[~go_left]] = self.right_[nids[~go_left]]
            active = ~self.is_leaf_[node_ids]
        return self.value_[node_ids]

    @property
    def n_leaves(self):
        return int(self.is_leaf_.sum())

    def byte_size(self):
        """Approximate in-memory size of the fitted tree (bytes)."""
        arrays = (
            self.feature_,
            self.threshold_,
            self._threshold_bin,
            self.left_,
            self.right_,
            self.value_,
            self.is_leaf_,
        )
        return int(sum(a.nbytes for a in arrays))
