"""Directed graph convolutional network over physical plan trees.

Numpy re-implementation of the paper's global model architecture
(Section 4.4 and Figure 5):

1. *node embedding* — an MLP maps each operator node's feature vector to a
   hidden representation;
2. *graph convolution message passing* — ``L`` directed conv layers; in
   each layer a node combines its own representation with the aggregated
   representations of its children (messages flow child -> parent, i.e.
   towards the plan root);
3. *exec-time prediction* — the root node's representation is concatenated
   with a *system feature vector* (instance type, node count, memory,
   concurrency, plan summary) and fed to an MLP head.

Graphs in a minibatch are block-stacked: node features are concatenated,
edges are index-shifted, and aggregation uses ``np.add.at`` scatter ops, so
one forward/backward pass handles the whole batch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from .nn import MLP, Adam, Dropout, Linear, ReLU, huber_loss

__all__ = ["PlanGraph", "GraphBatch", "DirectedGCN"]


def _row_stable_width(n: int) -> bool:
    """Whether an ``(m, k) @ (k, n)`` product has batch-invariant rows.

    Measured against the bundled BLAS (and pinned by a property test):
    each output row is a bitwise-reproducible function of its input row
    and the weights — independent of which other rows are stacked with
    it — exactly when the *output* width ``n`` is at least 4 and
    ``n % 8`` is not in ``{1, 2, 3}`` (the tail-column kernels those
    widths select accumulate in a stack-dependent order; ``n == 1`` is
    the gemv path, unstable for every stacking).  ``m`` and ``k`` never
    matter.  Widths failing this predicate must not be block-stacked
    when bit-identity to solo evaluation is required.
    """
    return n >= 4 and n % 8 not in (1, 2, 3)


@dataclass
class PlanGraph:
    """One plan tree prepared for the GCN.

    Attributes
    ----------
    node_features:
        ``(n_nodes, n_node_features)`` matrix; row 0 need not be the root.
    edges:
        ``(2, n_edges)`` int array of ``(child, parent)`` index pairs.
    root:
        Index of the root node.
    sys_features:
        1-D system feature vector (shared by all nodes of the plan).
    """

    node_features: np.ndarray
    edges: np.ndarray
    root: int
    sys_features: np.ndarray

    def __post_init__(self):
        self.node_features = np.asarray(self.node_features, dtype=np.float64)
        self.edges = np.asarray(self.edges, dtype=np.int64).reshape(2, -1)
        self.sys_features = np.asarray(self.sys_features, dtype=np.float64)
        n = self.node_features.shape[0]
        if self.edges.size and (self.edges.max() >= n or self.edges.min() < 0):
            raise ValueError("edge index out of range")
        if not 0 <= self.root < n:
            raise ValueError("root index out of range")


class GraphBatch:
    """Block-stacked minibatch of :class:`PlanGraph` objects.

    ``aggregation`` selects how children messages combine at the parent:
    ``"sum"`` (default; cost is additive over plan operators, matching the
    MSCN-style message passing of the zero-shot cost model) or ``"mean"``.
    """

    def __init__(self, graphs: List[PlanGraph], aggregation="sum"):
        if not graphs:
            raise ValueError("empty graph batch")
        if aggregation not in ("sum", "mean"):
            raise ValueError("aggregation must be 'sum' or 'mean'")
        feats, srcs, dsts, roots, sys_feats = [], [], [], [], []
        offset = 0
        for g in graphs:
            n = g.node_features.shape[0]
            feats.append(g.node_features)
            if g.edges.size:
                srcs.append(g.edges[0] + offset)
                dsts.append(g.edges[1] + offset)
            roots.append(g.root + offset)
            sys_feats.append(g.sys_features)
            offset += n
        self.node_features = np.concatenate(feats, axis=0)
        self.src = np.concatenate(srcs) if srcs else np.zeros(0, dtype=np.int64)
        self.dst = np.concatenate(dsts) if dsts else np.zeros(0, dtype=np.int64)
        self.roots = np.asarray(roots, dtype=np.int64)
        self.sys_features = np.vstack(sys_feats)
        self.n_nodes = offset
        if self.dst.size == 0:
            self.edge_weight = np.zeros(0, dtype=np.float64)
        elif aggregation == "mean":
            in_deg = np.bincount(self.dst, minlength=self.n_nodes).astype(np.float64)
            in_deg[in_deg == 0] = 1.0
            self.edge_weight = 1.0 / in_deg[self.dst]
        else:
            self.edge_weight = np.ones(self.dst.shape[0], dtype=np.float64)

    def __len__(self):
        return self.roots.shape[0]


class _GraphConvLayer:
    """One directed message-passing layer.

    ``H' = relu(H @ W_self + aggregate_children(H) @ W_msg + b)`` with an
    additive residual connection when dimensions match.
    """

    def __init__(self, in_dim, out_dim, rng, dropout=0.0):
        self.self_lin = Linear(in_dim, out_dim, rng)
        self.msg_lin = Linear(in_dim, out_dim, rng)
        self.act = ReLU()
        self.dropout = Dropout(dropout, rng)
        self.residual = in_dim == out_dim
        self._cache = None

    def forward(self, H, batch: GraphBatch, training=False):
        M = np.zeros_like(H)
        if batch.src.size:
            np.add.at(M, batch.dst, H[batch.src] * batch.edge_weight[:, None])
        out = self.self_lin.forward(H) + self.msg_lin.forward(M)
        out = self.act.forward(out)
        out = self.dropout.forward(out, training)
        if self.residual:
            out = out + H
        self._cache = (H.shape, batch)
        return out

    def backward(self, dout):
        shape, batch = self._cache
        dH = dout.copy() if self.residual else np.zeros(shape)
        dpre = self.dropout.backward(dout)
        dpre = self.act.backward(dpre)
        d_from_self = self.self_lin.backward(dpre)
        dM = self.msg_lin.backward(dpre)
        dH = dH + d_from_self
        if batch.src.size:
            np.add.at(dH, batch.src, dM[batch.dst] * batch.edge_weight[:, None])
        return dH

    def parameters(self):
        return self.self_lin.parameters() + self.msg_lin.parameters()


class DirectedGCN:
    """The full global-model network: embed -> L conv layers -> head.

    Parameters
    ----------
    n_node_features:
        Width of each node's raw feature vector.
    n_sys_features:
        Width of the per-plan system feature vector.
    hidden_dim:
        Hidden representation width (paper: 512; scaled down by default).
    n_conv_layers:
        Number of message-passing layers (paper: 8).
    dropout:
        Dropout rate applied inside embedding/conv/head (paper: 0.2).
    random_state:
        Seed for initialization and dropout masks.
    """

    def __init__(
        self,
        n_node_features,
        n_sys_features,
        hidden_dim=64,
        n_conv_layers=4,
        dropout=0.2,
        aggregation="sum",
        random_state=0,
    ):
        rng = np.random.default_rng(random_state)
        self.rng = rng
        self.n_node_features = n_node_features
        self.n_sys_features = n_sys_features
        self.hidden_dim = hidden_dim
        self.aggregation = aggregation
        self.embed = MLP(
            [n_node_features, hidden_dim, hidden_dim],
            rng,
            dropout=dropout,
            output_activation=True,
        )
        self.convs = [
            _GraphConvLayer(hidden_dim, hidden_dim, rng, dropout=dropout)
            for _ in range(n_conv_layers)
        ]
        self.head = MLP(
            [hidden_dim + n_sys_features, hidden_dim, 1],
            rng,
            dropout=dropout,
        )
        self._cache = None

    # ------------------------------------------------------------------
    def parameters(self):
        params = list(self.embed.parameters())
        for conv in self.convs:
            params.extend(conv.parameters())
        params.extend(self.head.parameters())
        return params

    def forward(self, batch: GraphBatch, training=False):
        """Predict one value per graph in the batch (shape ``(B,)``)."""
        H = self.embed.forward(batch.node_features, training)
        for conv in self.convs:
            H = conv.forward(H, batch, training)
        roots = H[batch.roots]
        z = np.concatenate([roots, batch.sys_features], axis=1)
        out = self.head.forward(z, training)
        self._cache = (batch, H.shape)
        return out[:, 0]

    def backward(self, dpred):
        """Backprop ``dpred`` of shape ``(B,)`` through the network."""
        batch, h_shape = self._cache
        dz = self.head.backward(dpred[:, None])
        droots = dz[:, : self.hidden_dim]
        dH = np.zeros(h_shape)
        np.add.at(dH, batch.roots, droots)
        for conv in reversed(self.convs):
            dH = conv.backward(dH)
        self.embed.backward(dH)

    # ------------------------------------------------------------------
    def fit(
        self,
        graphs: List[PlanGraph],
        targets,
        epochs=30,
        batch_size=32,
        lr=1e-3,
        weight_decay=1e-5,
        validation_fraction=0.15,
        early_stopping_epochs=5,
        shuffle=True,
        verbose=False,
    ):
        """Train with Adam + Huber loss on (already transformed) targets.

        Returns the per-epoch ``(train_loss, val_loss)`` history.  Callers
        are expected to pass log-transformed exec-times; the heavy tail of
        raw latencies would otherwise dominate the loss.
        """
        targets = np.asarray(targets, dtype=np.float64)
        if len(graphs) != targets.shape[0]:
            raise ValueError("graphs and targets length mismatch")
        n = len(graphs)
        idx = self.rng.permutation(n) if shuffle else np.arange(n)
        n_val = int(n * validation_fraction)
        val_idx, train_idx = idx[:n_val], idx[n_val:]
        if train_idx.size == 0:
            raise ValueError("no training graphs after validation split")

        optimizer = Adam(self.parameters(), lr=lr, weight_decay=weight_decay)
        history = []
        best_val = np.inf
        best_params = None
        epochs_since_best = 0

        for _ in range(epochs):
            order = self.rng.permutation(train_idx.size)
            epoch_loss = 0.0
            n_batches = 0
            for start in range(0, train_idx.size, batch_size):
                rows = train_idx[order[start : start + batch_size]]
                batch = GraphBatch([graphs[i] for i in rows], aggregation=self.aggregation)
                pred = self.forward(batch, training=True)
                loss, dpred = huber_loss(pred, targets[rows])
                optimizer.zero_grad()
                self.backward(dpred)
                optimizer.step()
                epoch_loss += loss
                n_batches += 1
            train_loss = epoch_loss / max(1, n_batches)

            if val_idx.size:
                val_pred = self.predict_graphs([graphs[i] for i in val_idx])
                val_loss, _ = huber_loss(val_pred, targets[val_idx])
            else:
                val_loss = train_loss
            history.append((train_loss, val_loss))
            if verbose:
                print(f"epoch {len(history)}: train={train_loss:.4f} val={val_loss:.4f}")

            if val_loss < best_val - 1e-9:
                best_val = val_loss
                best_params = [p.value.copy() for p in self.parameters()]
                epochs_since_best = 0
            else:
                epochs_since_best += 1
                if epochs_since_best >= early_stopping_epochs:
                    break

        if best_params is not None:
            for p, v in zip(self.parameters(), best_params):
                p.value = v
        return history

    def predict_graphs(self, graphs: List[PlanGraph], batch_size=256):
        """Inference over a list of graphs (no dropout)."""
        preds = np.empty(len(graphs))
        for start in range(0, len(graphs), batch_size):
            chunk = graphs[start : start + batch_size]
            batch = GraphBatch(chunk, aggregation=self.aggregation)
            preds[start : start + len(chunk)] = self.forward(batch, training=False)
        return preds

    def _forward_solo(self, graph: PlanGraph) -> float:
        batch = GraphBatch([graph], aggregation=self.aggregation)
        return float(self.forward(batch, training=False)[0])

    def predict_graphs_stable(self, graphs: List[PlanGraph]) -> np.ndarray:
        """Batched inference **bit-identical** to one-graph-at-a-time
        :meth:`forward` calls, in any batch size or order.

        Plain :meth:`predict_graphs` is not: a ``(1, k)`` input takes
        BLAS's gemv path while a stacked ``(m, k)`` input takes gemm, and
        the two accumulate in different orders.  But gemm output rows
        *are* bitwise-reproducible functions of their input row whenever
        the output width satisfies :func:`_row_stable_width` — so this
        path:

        - block-stacks only graphs with >= 2 nodes through the embedding
          and conv layers (their node-feature matmuls then have the same
          gemm shape class as a solo forward; ``np.add.at`` aggregation
          is sequential per destination node and graphs never share
          edges, so scatter order within a graph matches solo order);
        - evaluates the prediction head per graph on a ``(1, k)`` row
          view, exactly the shape a solo forward feeds it (the head ends
          in a width-1 output, row-unstable under stacking for *every*
          batch size);
        - evaluates single-node graphs solo (their embedding would
          otherwise move from gemv to gemm).

        Models whose hidden width fails the stability predicate (or with
        a degenerate node-feature width) fall back to all-solo
        evaluation: always correct, just not batched.
        """
        preds = np.empty(len(graphs))
        if not _row_stable_width(self.hidden_dim) or self.n_node_features < 2:
            for i, g in enumerate(graphs):
                preds[i] = self._forward_solo(g)
            return preds
        multi = []
        for i, g in enumerate(graphs):
            if g.node_features.shape[0] >= 2:
                multi.append(i)
            else:
                preds[i] = self._forward_solo(g)
        if multi:
            batch = GraphBatch(
                [graphs[i] for i in multi], aggregation=self.aggregation
            )
            H = self.embed.forward(batch.node_features, False)
            for conv in self.convs:
                H = conv.forward(H, batch, False)
            z = np.concatenate([H[batch.roots], batch.sys_features], axis=1)
            for row, i in enumerate(multi):
                preds[i] = self.head.forward(z[row : row + 1], False)[0, 0]
        return preds

    def byte_size(self):
        """Approximate in-memory size of all parameters (bytes)."""
        return int(sum(p.value.nbytes for p in self.parameters()))
