"""Minimal neural-network building blocks (numpy, manual backprop).

The paper's global model is a PyTorch GCN; this module provides the layers
(:class:`Linear`, :class:`ReLU`, :class:`Dropout`, :class:`MLP`) and the
:class:`Adam` optimizer that :mod:`repro.ml.gcn` composes into the same
architecture.  Everything keeps explicit forward caches so backward passes
are plain chain-rule code.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Parameter", "Linear", "ReLU", "Dropout", "MLP", "Adam", "mse_loss", "huber_loss"]


class Parameter:
    """A trainable tensor with an accumulated gradient."""

    __slots__ = ("value", "grad")

    def __init__(self, value):
        self.value = np.asarray(value, dtype=np.float64)
        self.grad = np.zeros_like(self.value)

    def zero_grad(self):
        self.grad[...] = 0.0

    @property
    def shape(self):
        return self.value.shape


def _glorot(rng, fan_in, fan_out):
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=(fan_in, fan_out))


class Linear:
    """Affine layer ``y = x @ W + b``."""

    def __init__(self, in_dim, out_dim, rng):
        self.W = Parameter(_glorot(rng, in_dim, out_dim))
        self.b = Parameter(np.zeros(out_dim))
        self._x = None

    def forward(self, x):
        self._x = x
        return x @ self.W.value + self.b.value

    def backward(self, dout):
        self.W.grad += self._x.T @ dout
        self.b.grad += dout.sum(axis=0)
        return dout @ self.W.value.T

    def parameters(self):
        return [self.W, self.b]


class ReLU:
    """Rectified linear activation."""

    def __init__(self):
        self._mask = None

    def forward(self, x):
        self._mask = x > 0
        return x * self._mask

    def backward(self, dout):
        return dout * self._mask

    def parameters(self):
        return []


class Dropout:
    """Inverted dropout; identity when ``training`` is False."""

    def __init__(self, rate, rng):
        if not 0.0 <= rate < 1.0:
            raise ValueError("dropout rate must be in [0, 1)")
        self.rate = rate
        self.rng = rng
        self._mask = None

    def forward(self, x, training):
        if not training or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        self._mask = (self.rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, dout):
        if self._mask is None:
            return dout
        return dout * self._mask

    def parameters(self):
        return []


class MLP:
    """Stack of ``Linear -> ReLU -> Dropout`` blocks with a linear output.

    ``dims`` is the full dimension chain, e.g. ``[33, 64, 64, 1]``.
    """

    def __init__(self, dims, rng, dropout=0.0, output_activation=False):
        if len(dims) < 2:
            raise ValueError("MLP needs at least an input and output dim")
        self.layers = []
        for i in range(len(dims) - 1):
            self.layers.append(Linear(dims[i], dims[i + 1], rng))
            is_last = i == len(dims) - 2
            if not is_last or output_activation:
                self.layers.append(ReLU())
                if dropout > 0.0:
                    self.layers.append(Dropout(dropout, rng))

    def forward(self, x, training=False):
        for layer in self.layers:
            if isinstance(layer, Dropout):
                x = layer.forward(x, training)
            else:
                x = layer.forward(x)
        return x

    def backward(self, dout):
        for layer in reversed(self.layers):
            dout = layer.backward(dout)
        return dout

    def parameters(self):
        params = []
        for layer in self.layers:
            params.extend(layer.parameters())
        return params


class Adam:
    """Adam optimizer over a flat list of :class:`Parameter`."""

    def __init__(self, parameters, lr=1e-3, beta1=0.9, beta2=0.999, eps=1e-8, weight_decay=0.0):
        self.parameters = list(parameters)
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.value) for p in self.parameters]
        self._v = [np.zeros_like(p.value) for p in self.parameters]
        self._t = 0

    def zero_grad(self):
        for p in self.parameters:
            p.zero_grad()

    def step(self):
        self._t += 1
        b1, b2 = self.beta1, self.beta2
        for i, p in enumerate(self.parameters):
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.value
            self._m[i] = b1 * self._m[i] + (1 - b1) * g
            self._v[i] = b2 * self._v[i] + (1 - b2) * g * g
            m_hat = self._m[i] / (1 - b1**self._t)
            v_hat = self._v[i] / (1 - b2**self._t)
            p.value -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


def mse_loss(pred, target):
    """Mean squared error; returns ``(loss, dpred)``."""
    diff = pred - target
    loss = float(np.mean(diff**2))
    return loss, 2.0 * diff / diff.size


def huber_loss(pred, target, delta=1.0):
    """Huber loss; robust to the heavy-tailed exec-time targets."""
    diff = pred - target
    abs_diff = np.abs(diff)
    quadratic = abs_diff <= delta
    loss = float(np.mean(np.where(quadratic, 0.5 * diff**2, delta * (abs_diff - 0.5 * delta))))
    dpred = np.where(quadratic, diff, delta * np.sign(diff)) / diff.size
    return loss, dpred
