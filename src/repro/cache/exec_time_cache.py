"""The exec-time cache: stage 1 of the Stage predictor (paper Section 4.2).

Maps the hash of a query's flattened feature vector to the observed
execution times of identical past queries.  Prediction for a hit blends
robustness and freshness::

    prediction = alpha * running_mean + (1 - alpha) * last_observed

with ``alpha = 0.8`` in the Redshift fleet.  When the cache exceeds its
capacity it evicts the *least recently updated* entry — the entry whose
most recent observation is oldest — which the paper implements with a
sorted list of update dates.  We keep the same semantics with an ordered
dict (move-to-end on update), which is O(1) per operation.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING, List, Optional, Sequence

from repro.ml.intervals import NOMINAL_CONFIDENCE, welford_interval
from repro.plans.featurize import hash_feature_vector

from .welford import RunningStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.interfaces import Prediction

__all__ = ["ExecTimeCache"]

#: lazily bound Prediction/PredictionSource (repro.core.stage imports
#: repro.cache, so a module-level import here would cycle through
#: repro.core's package init)
_PREDICTION_TYPES: Optional[tuple] = None


def _prediction_types() -> tuple:
    global _PREDICTION_TYPES
    if _PREDICTION_TYPES is None:
        from repro.core.interfaces import Prediction, PredictionSource

        _PREDICTION_TYPES = (Prediction, PredictionSource)
    return _PREDICTION_TYPES


class ExecTimeCache:
    """Bounded mapping: feature-vector hash -> running exec-time stats.

    Parameters
    ----------
    capacity:
        Maximum number of distinct queries retained (paper: 2,000).
    alpha:
        Blend weight between the running mean (robustness) and the most
        recent observation (data freshness).  Paper: 0.8.
    mode:
        ``"blend"`` — the paper's ``alpha*mean + (1-alpha)*last`` rule;
        ``"ewma"`` — an exponentially weighted moving average, the
        time-series-style predictor the paper lists as future work.
    ewma_decay:
        Weight of the newest observation in ``"ewma"`` mode.
    archive_capacity:
        Bounded archive of evicted entries that :meth:`restore` (the
        forecast pre-warmer) may bring back, stats and all.  The
        default 0 keeps the classic drop-on-evict behavior — nothing
        about the cache changes unless a pre-warmer is wired up.
    """

    _MODES = ("blend", "ewma")

    def __init__(
        self, capacity=2000, alpha=0.8, mode="blend", ewma_decay=0.3, archive_capacity=0
    ):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if not 0.0 <= alpha <= 1.0:
            raise ValueError("alpha must be in [0, 1]")
        if mode not in self._MODES:
            raise ValueError(f"mode must be one of {self._MODES}")
        if not 0.0 < ewma_decay <= 1.0:
            raise ValueError("ewma_decay must be in (0, 1]")
        if archive_capacity < 0:
            raise ValueError("archive_capacity must be >= 0")
        self.capacity = capacity
        self.alpha = alpha
        self.mode = mode
        self.ewma_decay = ewma_decay
        self.archive_capacity = archive_capacity
        self._entries: "OrderedDict[str, RunningStats]" = OrderedDict()
        #: key -> the entry's full cache answer, rebuilt once per
        #: observe; the hit fast path returns this object with no
        #: arithmetic and no allocation (the Prediction is immutable
        #: after construction, so sharing it across lookups is safe)
        self._predictions: dict = {}
        #: evicted entries retained for :meth:`restore`, oldest-evicted
        #: first: key -> (RunningStats, Prediction)
        self._archive: "OrderedDict[str, tuple]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.restores = 0

    # ------------------------------------------------------------------
    @staticmethod
    def key_for(feature_vector) -> str:
        """Cache key of a feature vector (hash-value replacement)."""
        return hash_feature_vector(feature_vector)

    def __len__(self):
        return len(self._entries)

    def __contains__(self, key):
        return key in self._entries

    # ------------------------------------------------------------------
    def lookup(self, key) -> Optional[float]:
        """Predicted exec-time for ``key``, or ``None`` on a miss.

        Lookups do not change eviction order; only observations do (the
        eviction policy is least-recently-*updated*, not least-recently-
        used).
        """
        value = self.peek(key)
        if value is None:
            self.misses += 1
        else:
            self.hits += 1
        return value

    def peek(self, key) -> Optional[float]:
        """Predicted exec-time for ``key`` without touching accounting.

        Identical value to :meth:`lookup`, but neither ``hits`` nor
        ``misses`` move: use this for instrumentation (component
        collection, probes, debugging) so that ``hit_rate`` keeps meaning
        "fraction of *routed* predictions served by the cache" — exactly
        one counted lookup per query.
        """
        stats = self._entries.get(key)
        if stats is None:
            return None
        return self._point_of(stats)

    def _point_of(self, stats: RunningStats) -> float:
        if self.mode == "ewma":
            return stats.ewma
        return self.alpha * stats.mean + (1.0 - self.alpha) * stats.last

    def _build_prediction(self, stats: RunningStats) -> "Prediction":
        """The entry's full cache answer, from its current stats."""
        prediction_cls, source_cls = _prediction_types()
        point = self._point_of(stats)
        low, high = welford_interval(
            point, stats.count, stats.sample_variance, NOMINAL_CONFIDENCE
        )
        return prediction_cls(
            exec_time=point,
            source=source_cls.CACHE,
            interval_low=low,
            interval_high=high,
        )

    def peek_prediction(self, key) -> Optional["Prediction"]:
        """Full cache answer for ``key`` (no accounting), or ``None``.

        The point estimate is exactly :meth:`peek`; the interval is the
        Welford prediction interval of the entry's observations
        (:func:`~repro.ml.intervals.welford_interval` at the nominal
        confidence) — single-observation entries collapse to the point.
        The answer is *precomputed*: every observe rebuilds the entry's
        :class:`Prediction` once, so the hit path is a dict read — no
        per-lookup interval arithmetic or object churn.
        """
        return self._predictions.get(key)

    def lookup_prediction(self, key) -> Optional["Prediction"]:
        """Counted :meth:`peek_prediction` — the router's cache probe.

        Moves exactly the counter :meth:`lookup` would (one hit or one
        miss), so swapping a ``lookup`` call for ``lookup_prediction``
        never changes the accounting the parity suites compare.
        """
        prediction = self._predictions.get(key)
        if prediction is None:
            self.misses += 1
        else:
            self.hits += 1
        return prediction

    def lookup_predictions(self, keys: Sequence[str]) -> List[Optional["Prediction"]]:
        """Counted batch probe: one pass over ``keys``.

        Bit-identical results and counter movement to calling
        :meth:`lookup_prediction` once per key, with the per-call
        overhead paid once for the whole window — the vectorized
        fast path for the ~80% of serving traffic that hits the cache.
        """
        predictions = self._predictions
        out = [predictions.get(key) for key in keys]
        hits = sum(1 for p in out if p is not None)
        self.hits += hits
        self.misses += len(out) - hits
        return out

    def predict(self, feature_vector) -> Optional[float]:
        """Convenience: hash the vector and :meth:`lookup` it."""
        return self.lookup(self.key_for(feature_vector))

    def stats_for(self, key) -> Optional[RunningStats]:
        """The raw running stats of an entry (read-only use)."""
        return self._entries.get(key)

    # ------------------------------------------------------------------
    def observe(self, key, exec_time):
        """Record an observed execution time for ``key``.

        Creates the entry if absent; refreshes its update recency; evicts
        the least recently updated entry if over capacity.
        """
        if exec_time < 0:
            raise ValueError("exec_time must be >= 0")
        stats = self._entries.get(key)
        if stats is None:
            stats = RunningStats()
            self._entries[key] = stats
            # a fresh observation stream supersedes any archived copy:
            # without this, a later restore could resurrect stale stats
            # over the live entry's history
            self._archive.pop(key, None)
        else:
            self._entries.move_to_end(key)
        stats.update(exec_time, ewma_decay=self.ewma_decay)
        # precompute the full cache answer once per observe, so lookups
        # (the dominant operation by far) are pure dict reads
        self._predictions[key] = self._build_prediction(stats)
        self._evict_over_capacity()
        return stats

    def _evict_over_capacity(self) -> None:
        while len(self._entries) > self.capacity:
            evicted, stats = self._entries.popitem(last=False)
            prediction = self._predictions.pop(evicted, None)
            if self.archive_capacity > 0 and prediction is not None:
                self._archive[evicted] = (stats, prediction)
                self._archive.move_to_end(evicted)
                while len(self._archive) > self.archive_capacity:
                    self._archive.popitem(last=False)
            self.evictions += 1

    # ------------------------------------------------------------------
    def touch(self, key) -> bool:
        """Refresh an entry's update recency without an observation.

        The forecast pre-warmer's protection primitive: a touched entry
        counts as just-updated for eviction purposes, so forecast-hot
        templates survive bursts of one-shot traffic.  No counters move
        and no stats change.  Returns whether ``key`` was resident.
        """
        if key not in self._entries:
            return False
        self._entries.move_to_end(key)
        return True

    def restore(self, key) -> bool:
        """Bring an archived entry (stats and prediction) back into the
        cache at most-recent eviction priority.

        Returns ``True`` only when ``key`` came out of the archive; a
        resident key or an unknown key is a no-op.  Restoring over a
        full cache evicts (and, with an archive, re-archives) the least
        recently updated entry, exactly like an observe would.
        """
        if key in self._entries:
            return False
        item = self._archive.pop(key, None)
        if item is None:
            return False
        stats, prediction = item
        self._entries[key] = stats
        self._predictions[key] = prediction
        self.restores += 1
        self._evict_over_capacity()
        return True

    def observe_vector(self, feature_vector, exec_time):
        """Hash the vector and :meth:`observe` it; returns the key."""
        key = self.key_for(feature_vector)
        self.observe(key, exec_time)
        return key

    # ------------------------------------------------------------------
    @property
    def hit_rate(self):
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def byte_size(self):
        """Approximate in-memory size: 4 floats + key per entry
        (archived entries included — they are held memory too)."""
        # 16-byte digest string (32 hex chars ~ 49 bytes as a str object)
        # + 4 * 8 bytes of stats; we report the dominant terms.
        return (len(self._entries) + len(self._archive)) * (49 + 4 * 8)

    def clear(self):
        self._entries.clear()
        self._predictions.clear()
        self._archive.clear()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.restores = 0
