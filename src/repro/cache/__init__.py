"""Exec-time cache: stage 1 of the Stage predictor."""

from .welford import RunningStats
from .exec_time_cache import ExecTimeCache

__all__ = ["RunningStats", "ExecTimeCache"]
