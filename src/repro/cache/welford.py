"""Welford's online mean/variance algorithm (Welford 1962).

Cache Optimization 2 in paper Section 4.2: instead of keeping the full
list of past latencies per cached query, keep a running mean and variance
plus the most recent observation — four values per entry.
"""

from __future__ import annotations

__all__ = ["RunningStats"]


class RunningStats:
    """Numerically stable running mean / variance / last value.

    Stores the four scalars the paper describes — count, mean, the sum of
    squared deviations (``M2``), and the last observed value — plus an
    exponentially weighted moving average supporting the paper's
    future-work idea of time-series-style cache predictions (Section 4.2).
    """

    __slots__ = ("count", "mean", "_m2", "last", "ewma")

    def __init__(self):
        self.count = 0
        self.mean = 0.0
        self._m2 = 0.0
        self.last = 0.0
        self.ewma = 0.0

    def update(self, value, ewma_decay=0.3):
        """Fold one observation into the running statistics.

        ``ewma_decay`` is the weight of the new observation in the
        exponentially weighted average (only used by the cache's "ewma"
        prediction mode).
        """
        value = float(value)
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)
        self.ewma = (
            value
            if self.count == 1
            else (1.0 - ewma_decay) * self.ewma + ewma_decay * value
        )
        self.last = value
        return self

    @property
    def variance(self):
        """Population variance of the observations seen so far."""
        if self.count < 2:
            return 0.0
        return self._m2 / self.count

    @property
    def sample_variance(self):
        """Unbiased (n-1) variance."""
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    def __repr__(self):
        return (
            f"RunningStats(count={self.count}, mean={self.mean:.6g}, "
            f"var={self.variance:.6g}, last={self.last:.6g})"
        )
