"""Shared process-pool conventions for every parallel knob in the repo.

One rule, used by the fleet generator, the sweep engine and the trainer
alike: ``n_jobs=1`` means inline (no pool, no pickling), ``None`` or any
non-positive value means "all cores", and the worker count never
exceeds the number of tasks.

Every pool in the repo is created through :func:`pool_context`, so the
``REPRO_MP_START_METHOD`` environment variable can force a start method
(``fork``, ``spawn``, ``forkserver``) uniformly — CI runs the parity
suites under both ``fork`` and ``spawn`` to prove results are
start-method independent (workers are module-level functions that pickle
by reference, so they must be).
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Optional

__all__ = ["resolve_n_jobs", "runs_inline", "pool_context", "pool_map"]

#: environment variable forcing the multiprocessing start method
START_METHOD_ENV = "REPRO_MP_START_METHOD"


def resolve_n_jobs(n_jobs: Optional[int], n_tasks: int) -> int:
    """Effective worker count: ``None``/``<=0`` means "all cores"."""
    if n_jobs is None or n_jobs <= 0:
        n_jobs = os.cpu_count() or 1
    return max(1, min(n_jobs, n_tasks))


def runs_inline(n_jobs: Optional[int], n_tasks: int) -> bool:
    """Whether :func:`pool_map` will run inline for this workload.

    The single source of truth for the inline-vs-pool decision: callers
    that prepare different task payloads for the two paths (e.g. the
    fleet sweeper, which embeds its model only in inline settings) must
    consult this rather than re-deriving the predicate, so their
    payloads can never disagree with the path actually taken.
    """
    return resolve_n_jobs(n_jobs, n_tasks) == 1


def pool_context():
    """The multiprocessing context every pool in the repo is built from.

    Honors ``REPRO_MP_START_METHOD`` when set; otherwise the platform
    default (``fork`` on Linux, ``spawn`` on macOS/Windows).
    """
    method = os.environ.get(START_METHOD_ENV) or None
    return multiprocessing.get_context(method)


def pool_map(worker, tasks, n_jobs, initializer=None, initargs=()):
    """Order-preserving map, inline or over a process pool.

    The one pooling idiom behind every parallel knob: ``n_jobs=1`` (or a
    single task) runs inline — no pool, no pickling, and ``initializer``
    is NOT invoked (inline callers wire their state into the tasks
    directly).  ``worker`` must be a module-level function so it pickles
    by reference under any start method.
    """
    if runs_inline(n_jobs, len(tasks)):
        return [worker(task) for task in tasks]
    from concurrent.futures import ProcessPoolExecutor

    with ProcessPoolExecutor(
        max_workers=resolve_n_jobs(n_jobs, len(tasks)),
        mp_context=pool_context(),
        initializer=initializer,
        initargs=initargs,
    ) as pool:
        return list(pool.map(worker, tasks))
