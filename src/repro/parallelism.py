"""Shared process-pool conventions for every parallel knob in the repo.

One rule, used by the fleet generator and the sweep engine alike:
``n_jobs=1`` means inline (no pool, no pickling), ``None`` or any
non-positive value means "all cores", and the worker count never
exceeds the number of tasks.
"""

from __future__ import annotations

import os
from typing import Optional

__all__ = ["resolve_n_jobs"]


def resolve_n_jobs(n_jobs: Optional[int], n_tasks: int) -> int:
    """Effective worker count: ``None``/``<=0`` means "all cores"."""
    if n_jobs is None or n_jobs <= 0:
        n_jobs = os.cpu_count() or 1
    return max(1, min(n_jobs, n_tasks))
