"""The instance-optimized local model (paper Section 4.3).

A Bayesian ensemble of Gaussian-NLL gradient-boosting models trained on
the instance's own training pool.  Targets are regressed in ``log1p``
space (Redshift latencies span seven decades); the returned uncertainty
is therefore a *relative* (log-space) spread, which is exactly what the
Stage router needs to decide when to escalate to the global model.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.config import LocalModelConfig, TrainingPoolConfig
from repro.core.interfaces import Prediction, PredictionSource
from repro.ml.ensemble import BayesianGBMEnsemble
from repro.ml.preprocessing import LogTargetTransform

from .training_pool import TrainingPool

__all__ = ["FrozenLocalModel", "LocalModel"]


class FrozenLocalModel:
    """Read-only view of one trained ensemble (one retrain window).

    Between two retrains the ensemble is immutable, so predictions for
    any query that arrived inside that window can be deferred and served
    later in a single batched call — even after the live
    :class:`LocalModel` has retrained and replaced its ensemble.  The
    replay harness uses this to turn per-query component collection into
    one ensemble invocation per retrain window.
    """

    def __init__(
        self,
        ensemble: BayesianGBMEnsemble,
        transform: LogTargetTransform,
        generation: int,
    ):
        self.ensemble = ensemble
        self.transform = transform
        #: the ``n_retrains`` value this snapshot was taken at
        self.generation = generation

    def predict_batch(self, X: np.ndarray) -> List[Prediction]:
        """Predict a batch of feature rows in one ensemble call.

        Row ``i`` of the result is bit-identical to
        ``LocalModel.predict(X[i])`` against the same ensemble: member
        trees predict each row independently and the ensemble moments are
        per-column reductions, so batching changes no arithmetic.
        """
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        out = self.ensemble.predict(X)
        exec_times = self.transform.inverse(out.mean)
        # the member-spread quantile bounds ride through the same
        # (monotone) inverse transform as the mean; exec-times are
        # non-negative, so the lower bound is clamped at zero
        interval_low = np.maximum(self.transform.inverse(out.interval_low), 0.0)
        interval_high = self.transform.inverse(out.interval_high)
        return [
            Prediction(
                exec_time=float(exec_times[i]),
                variance=float(out.total_uncertainty[i]),
                source=PredictionSource.LOCAL,
                model_uncertainty=float(out.model_uncertainty[i]),
                data_uncertainty=float(out.data_uncertainty[i]),
                interval_low=float(interval_low[i]),
                interval_high=float(interval_high[i]),
            )
            for i in range(X.shape[0])
        ]


class LocalModel:
    """Online wrapper: pool management + periodic ensemble retraining."""

    def __init__(
        self,
        config: LocalModelConfig | None = None,
        pool_config: TrainingPoolConfig | None = None,
        random_state: int = 0,
    ):
        self.config = config or LocalModelConfig()
        self.pool = TrainingPool(pool_config)
        self.random_state = random_state
        self.transform = LogTargetTransform()
        self._ensemble: Optional[BayesianGBMEnsemble] = None
        self._samples_since_train = 0
        self.n_retrains = 0

    # ------------------------------------------------------------------
    @property
    def is_ready(self) -> bool:
        """True once an ensemble has been trained."""
        return self._ensemble is not None

    @property
    def retrain_due(self) -> bool:
        """Whether :meth:`add_example` would retrain right now.

        The deferral hook's probe: a caller holding retrains back
        (``allow_retrain=False``) checks this to know when a release
        (an explicit :meth:`retrain`) is owed.
        """
        if len(self.pool) < self.config.min_train_size:
            return False
        return not self.is_ready or self._samples_since_train >= self.config.retrain_interval

    def add_example(
        self,
        features: np.ndarray,
        exec_time: float,
        cache_hit: bool = False,
        allow_retrain: bool = True,
    ) -> None:
        """Record one executed query; may trigger a retrain.

        ``allow_retrain=False`` holds a due *warm* retrain back (the
        forecaster's trough-deferral path calls :meth:`retrain` itself
        later); the bootstrap train — the model has no ensemble yet — is
        never deferred, since until it runs every prediction falls
        through to the global/default tier.
        """
        if self.pool.add(features, exec_time, cache_hit=cache_hit):
            self._samples_since_train += 1
        cfg = self.config
        pool_size = len(self.pool)
        if pool_size < cfg.min_train_size:
            return
        if not self.is_ready:
            self.retrain()
            return
        if allow_retrain and self._samples_since_train >= cfg.retrain_interval:
            self.retrain()

    def retrain(self) -> None:
        """Fit a fresh ensemble on the current pool contents."""
        X, y = self.pool.dataset()
        if X.shape[0] < 2:
            return
        cfg = self.config
        ensemble = BayesianGBMEnsemble(
            n_members=cfg.n_members,
            random_state=self.random_state + self.n_retrains,
            n_estimators=cfg.n_estimators,
            max_depth=cfg.max_depth,
            learning_rate=cfg.learning_rate,
            validation_fraction=cfg.validation_fraction,
            early_stopping_rounds=cfg.early_stopping_rounds,
            subsample=cfg.subsample,
        )
        ensemble.fit(X, self.transform.transform(y))
        self._ensemble = ensemble
        self._samples_since_train = 0
        self.n_retrains += 1

    # ------------------------------------------------------------------
    def predict(self, features: np.ndarray) -> Prediction:
        """Predict exec-time with decomposed uncertainty and interval.

        The batch-size-1 case of :meth:`FrozenLocalModel.predict_batch`
        — one construction path, so the per-query and batched answers
        (point, variance decomposition *and* interval bounds) cannot
        drift.  Raises ``RuntimeError`` if called before the first
        retrain; use :attr:`is_ready` to guard.
        """
        if self._ensemble is None:
            raise RuntimeError("local model has no trained ensemble yet")
        return self.frozen().predict_batch(np.asarray(features)[None, :])[0]

    def predict_batch(self, X: np.ndarray) -> List[Prediction]:
        """Batched :meth:`predict`: one ensemble call for many rows.

        Raises ``RuntimeError`` before the first retrain, like
        :meth:`predict`.
        """
        frozen = self.frozen()
        if frozen is None:
            raise RuntimeError("local model has no trained ensemble yet")
        return frozen.predict_batch(X)

    def frozen(self) -> Optional[FrozenLocalModel]:
        """Snapshot of the current ensemble, or ``None`` if not ready.

        The snapshot stays valid (and keeps answering from the same
        ensemble) across later retrains of this model.
        """
        if self._ensemble is None:
            return None
        return FrozenLocalModel(self._ensemble, self.transform, self.n_retrains)

    def byte_size(self) -> int:
        if self._ensemble is None:
            return 0
        return self._ensemble.byte_size()
