"""The local model's training pool (paper Section 4.3).

Three properties the paper calls out, each enforced here:

1. **bounded** — a global cap with oldest-first eviction;
2. **deduplicated** — executions that hit the exec-time cache are *not*
   added (the cache will predict them anyway, and repeats would crowd
   out diversity);
3. **duration-diverse** — the pool is partitioned into exec-time buckets
   (0-10s, 10-60s, 60s+) with per-bucket caps so an ocean of short
   queries cannot evict the rare long ones.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Tuple

import numpy as np

from repro.core.config import TrainingPoolConfig

__all__ = ["TrainingPool"]


class TrainingPool:
    """Bounded, bucketed FIFO pool of ``(features, exec_time)`` examples."""

    def __init__(self, config: TrainingPoolConfig | None = None):
        self.config = config or TrainingPoolConfig()
        if self.config.max_size < 1:
            raise ValueError("pool max_size must be >= 1")
        shares = [s for _, s in self.config.bucket_shares]
        if abs(sum(shares) - 1.0) > 1e-6:
            raise ValueError("bucket shares must sum to 1")
        self._buckets: List[Deque[Tuple[np.ndarray, float]]] = []
        self._caps: List[int] = []
        remaining = self.config.max_size
        for i, (_, share) in enumerate(self.config.bucket_shares):
            cap = (
                remaining
                if i == len(self.config.bucket_shares) - 1
                else max(1, int(self.config.max_size * share))
            )
            cap = min(cap, remaining)
            self._caps.append(cap)
            self._buckets.append(deque(maxlen=cap))
            remaining -= cap
        self.added = 0
        self.skipped_duplicates = 0

    # ------------------------------------------------------------------
    def _bucket_index(self, exec_time: float) -> int:
        for i, (upper, _) in enumerate(self.config.bucket_shares):
            if exec_time < upper:
                return i
        return len(self.config.bucket_shares) - 1

    def add(self, features: np.ndarray, exec_time: float, cache_hit: bool = False) -> bool:
        """Maybe add one executed query; returns True if it was added.

        ``cache_hit`` marks queries the exec-time cache already knows —
        the dedup rule skips them.
        """
        if cache_hit:
            self.skipped_duplicates += 1
            return False
        if exec_time < 0:
            raise ValueError("exec_time must be >= 0")
        bucket = self._buckets[self._bucket_index(exec_time)]
        bucket.append((np.asarray(features, dtype=np.float64), float(exec_time)))
        self.added += 1
        return True

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return sum(len(b) for b in self._buckets)

    def bucket_sizes(self) -> List[int]:
        return [len(b) for b in self._buckets]

    def bucket_caps(self) -> List[int]:
        return list(self._caps)

    def dataset(self) -> Tuple[np.ndarray, np.ndarray]:
        """All pooled examples as ``(X, y)`` arrays."""
        rows, targets = [], []
        for bucket in self._buckets:
            for features, exec_time in bucket:
                rows.append(features)
                targets.append(exec_time)
        if not rows:
            return np.zeros((0, 0)), np.zeros(0)
        return np.vstack(rows), np.asarray(targets)
