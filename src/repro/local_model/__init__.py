"""Instance-optimized local model: training pool + Bayesian GBM ensemble."""

from .training_pool import TrainingPool
from .model import LocalModel

__all__ = ["TrainingPool", "LocalModel"]
