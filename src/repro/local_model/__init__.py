"""Instance-optimized local model: training pool + Bayesian GBM ensemble."""

from .training_pool import TrainingPool
from .model import FrozenLocalModel, LocalModel

__all__ = ["TrainingPool", "FrozenLocalModel", "LocalModel"]
