"""Physical plan trees, operator vocabulary and featurizations."""

from .operators import (
    N_OPERATOR_TYPES,
    OPERATOR_INDEX,
    OPERATOR_TYPES,
    OperatorClass,
    QUERY_TYPES,
    S3_FORMATS,
    is_scan_operator,
    operator_class,
)
from .plan import PhysicalPlan, PlanNode
from .featurize import FEATURE_DIM, featurize_plan, feature_names, hash_feature_vector
from .graph import NODE_FEATURE_DIM, node_feature_matrix, plan_to_graph

__all__ = [
    "OperatorClass",
    "OPERATOR_TYPES",
    "OPERATOR_INDEX",
    "N_OPERATOR_TYPES",
    "QUERY_TYPES",
    "S3_FORMATS",
    "is_scan_operator",
    "operator_class",
    "PhysicalPlan",
    "PlanNode",
    "FEATURE_DIM",
    "featurize_plan",
    "feature_names",
    "hash_feature_vector",
    "NODE_FEATURE_DIM",
    "node_feature_matrix",
    "plan_to_graph",
]
