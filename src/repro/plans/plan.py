"""Physical execution plan trees.

A :class:`PhysicalPlan` is what the Redshift optimizer hands the exec-time
predictor (paper Figure 3): a tree of :class:`PlanNode` operators, each
carrying the optimizer's estimated cost, estimated cardinality and tuple
width, plus — for scan leaves — the S3 table format and the table row
count (paper Figure 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional

from .operators import (
    OPERATOR_INDEX,
    QUERY_TYPE_INDEX,
    S3_FORMAT_INDEX,
    is_scan_operator,
)

__all__ = ["PlanNode", "PhysicalPlan"]


@dataclass
class PlanNode:
    """One physical operator in a plan tree.

    Attributes mirror the node features in paper Figure 5: operator type,
    estimated cost, estimated cardinality, tuple width, S3 format and
    table rows.  ``s3_format`` / ``table_rows`` are only meaningful for
    scan operators and must be ``"null"`` / ``None`` elsewhere.
    """

    op_type: str
    estimated_cost: float = 0.0
    estimated_cardinality: float = 0.0
    width: float = 0.0
    s3_format: str = "null"
    table_rows: Optional[float] = None
    table_name: Optional[str] = None
    children: List["PlanNode"] = field(default_factory=list)

    def __post_init__(self):
        if self.op_type not in OPERATOR_INDEX:
            raise ValueError(f"unknown operator type: {self.op_type!r}")
        if self.s3_format not in S3_FORMAT_INDEX:
            raise ValueError(f"unknown s3 format: {self.s3_format!r}")
        if self.estimated_cost < 0 or self.estimated_cardinality < 0:
            raise ValueError("cost/cardinality estimates must be >= 0")
        if not is_scan_operator(self.op_type):
            if self.s3_format != "null" or self.table_rows is not None:
                raise ValueError("s3_format/table_rows are only valid on scan operators")

    @property
    def is_scan(self):
        return is_scan_operator(self.op_type)

    def iter_subtree(self) -> Iterator["PlanNode"]:
        """Pre-order traversal of this node's subtree."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))


@dataclass
class PhysicalPlan:
    """A full query plan: a root operator plus query-level metadata."""

    root: PlanNode
    query_type: str = "select"

    def __post_init__(self):
        if self.query_type not in QUERY_TYPE_INDEX:
            raise ValueError(f"unknown query type: {self.query_type!r}")
        self._validate_tree()

    def _validate_tree(self):
        seen = set()
        for node in self.root.iter_subtree():
            if id(node) in seen:
                raise ValueError("plan tree contains a cycle or shared node")
            seen.add(id(node))

    # ------------------------------------------------------------------
    def nodes(self) -> List[PlanNode]:
        """All nodes in pre-order (root first)."""
        return list(self.root.iter_subtree())

    @property
    def n_nodes(self):
        return len(self.nodes())

    @property
    def depth(self):
        def _depth(node):
            if not node.children:
                return 1
            return 1 + max(_depth(c) for c in node.children)

        return _depth(self.root)

    @property
    def total_estimated_cost(self):
        return sum(n.estimated_cost for n in self.root.iter_subtree())

    @property
    def n_joins(self):
        from .operators import OperatorClass, operator_class

        return sum(
            1
            for n in self.root.iter_subtree()
            if operator_class(n.op_type) is OperatorClass.JOIN
        )

    def scan_nodes(self) -> List[PlanNode]:
        return [n for n in self.root.iter_subtree() if n.is_scan]

    # ------------------------------------------------------------------
    def edges(self):
        """``(child_index, parent_index)`` pairs over the pre-order index."""
        nodes = self.nodes()
        index = {id(n): i for i, n in enumerate(nodes)}
        pairs = []
        for n in nodes:
            for c in n.children:
                pairs.append((index[id(c)], index[id(n)]))
        return pairs

    def describe(self, max_depth=None):
        """Human-readable indented plan, EXPLAIN-style."""
        lines = []

        def _walk(node, depth):
            if max_depth is not None and depth > max_depth:
                return
            extra = ""
            if node.is_scan and node.table_name:
                extra = f" on {node.table_name} ({node.s3_format})"
            lines.append(
                f"{'  ' * depth}-> {node.op_type}{extra} "
                f"(cost={node.estimated_cost:.1f} "
                f"rows={node.estimated_cardinality:.0f} "
                f"width={node.width:.0f})"
            )
            for child in node.children:
                _walk(child, depth + 1)

        _walk(self.root, 0)
        return "\n".join(lines)
