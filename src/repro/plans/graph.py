"""Graph featurization of plans for the global GCN model.

Paper Section 4.4 / Figure 5: every node is featurized as its operator
type (90-bit one-hot), estimated cost, estimated cardinality, tuple width,
S3 table format and table row count (``Null`` for non-scan operators).
Edges point child -> parent, so messages flow towards the plan root.
"""

from __future__ import annotations

import numpy as np

from repro.ml.gcn import PlanGraph

from .operators import (
    N_OPERATOR_TYPES,
    OPERATOR_INDEX,
    S3_FORMATS,
    S3_FORMAT_INDEX,
)
from .plan import PhysicalPlan

__all__ = ["NODE_FEATURE_DIM", "node_feature_matrix", "plan_to_graph"]

# one-hot operators + log cost + log cardinality + log width
# + S3 format one-hot + log table rows + has-table flag
NODE_FEATURE_DIM = N_OPERATOR_TYPES + 3 + len(S3_FORMATS) + 2


def node_feature_matrix(plan: PhysicalPlan) -> np.ndarray:
    """``(n_nodes, NODE_FEATURE_DIM)`` matrix in the plan's pre-order."""
    nodes = plan.nodes()
    X = np.zeros((len(nodes), NODE_FEATURE_DIM))
    for i, node in enumerate(nodes):
        X[i, OPERATOR_INDEX[node.op_type]] = 1.0
        base = N_OPERATOR_TYPES
        X[i, base + 0] = np.log1p(node.estimated_cost)
        X[i, base + 1] = np.log1p(node.estimated_cardinality)
        X[i, base + 2] = np.log1p(node.width)
        X[i, base + 3 + S3_FORMAT_INDEX[node.s3_format]] = 1.0
        rows_base = base + 3 + len(S3_FORMATS)
        if node.table_rows is not None:
            X[i, rows_base] = np.log1p(node.table_rows)
            X[i, rows_base + 1] = 1.0
    return X


def plan_to_graph(plan: PhysicalPlan, sys_features) -> PlanGraph:
    """Build the :class:`~repro.ml.gcn.PlanGraph` input for the GCN.

    ``sys_features`` is the per-plan system vector (instance type, node
    count, memory, concurrency, plan summary — Section 4.4); it is built
    by :mod:`repro.global_model.featurization`.
    """
    edges = plan.edges()
    edge_arr = np.array(edges, dtype=np.int64).T if edges else np.zeros((2, 0), dtype=np.int64)
    return PlanGraph(
        node_features=node_feature_matrix(plan),
        edges=edge_arr,
        root=0,
        sys_features=np.asarray(sys_features, dtype=np.float64),
    )
