"""Flattened plan featurization: the 33-dimensional vector.

Section 4.2 of the paper: "we traverse the plan tree, collect operator
nodes of the same type, and sum up their estimated cost and cardinality.
We also add features such as query type ... and end up with an
n-dimensional vector representation" with n = 33.  This vector is shared
by the exec-time cache (hashed as the cache key), the local model and the
AutoWLM baseline.

Layout (33 dims):

- per operator class (7 classes x 3) — ``log1p(sum cost)``,
  ``log1p(sum cardinality)``, ``node count``                    -> 21
- query type one-hot (7 types)                                  -> 7
- plan summary — node count, depth, join count,
  ``log1p(total cost)``, ``log1p(max scan table rows)``         -> 5

Log transforms keep the 10^0..10^9 cost range well-conditioned for the
tree models without losing injectivity, so cache keying is unaffected.
"""

from __future__ import annotations

import hashlib

import numpy as np

from .operators import OperatorClass, QUERY_TYPES, QUERY_TYPE_INDEX, operator_class
from .plan import PhysicalPlan

__all__ = ["FEATURE_DIM", "featurize_plan", "feature_names", "hash_feature_vector"]

_CLASS_ORDER = list(OperatorClass)
FEATURE_DIM = 3 * len(_CLASS_ORDER) + len(QUERY_TYPES) + 5
assert FEATURE_DIM == 33, f"feature layout drifted to {FEATURE_DIM}"


def featurize_plan(plan: PhysicalPlan) -> np.ndarray:
    """Flatten a physical plan into the 33-dim vector (paper Section 4.2)."""
    vec = np.zeros(FEATURE_DIM)
    class_pos = {cls: i * 3 for i, cls in enumerate(_CLASS_ORDER)}

    max_table_rows = 0.0
    total_cost = 0.0
    n_nodes = 0
    for node in plan.root.iter_subtree():
        n_nodes += 1
        base = class_pos[operator_class(node.op_type)]
        vec[base + 0] += node.estimated_cost
        vec[base + 1] += node.estimated_cardinality
        vec[base + 2] += 1.0
        total_cost += node.estimated_cost
        if node.is_scan and node.table_rows:
            max_table_rows = max(max_table_rows, node.table_rows)

    # compress the cost/cardinality sums
    for i in range(len(_CLASS_ORDER)):
        vec[3 * i] = np.log1p(vec[3 * i])
        vec[3 * i + 1] = np.log1p(vec[3 * i + 1])

    qt_base = 3 * len(_CLASS_ORDER)
    vec[qt_base + QUERY_TYPE_INDEX[plan.query_type]] = 1.0

    summary = qt_base + len(QUERY_TYPES)
    vec[summary + 0] = float(n_nodes)
    vec[summary + 1] = float(plan.depth)
    vec[summary + 2] = float(plan.n_joins)
    vec[summary + 3] = np.log1p(total_cost)
    vec[summary + 4] = np.log1p(max_table_rows)
    return vec


def feature_names():
    """Column names of the 33-dim vector, for debugging/reporting."""
    names = []
    for cls in _CLASS_ORDER:
        names.extend(
            [
                f"{cls.value}_log_cost",
                f"{cls.value}_log_card",
                f"{cls.value}_count",
            ]
        )
    names.extend(f"qt_{qt}" for qt in QUERY_TYPES)
    names.extend(["n_nodes", "depth", "n_joins", "log_total_cost", "log_max_table_rows"])
    return names


def hash_feature_vector(vec) -> str:
    """Stable hash of a feature vector (cache Optimization 1, Section 4.2).

    The paper replaces the full vector key with its hash value, removing
    the vector-vector comparison; they observed zero collisions over the
    top-200 instances.  We use a 128-bit blake2b over the rounded bytes,
    making collisions vanishingly unlikely while keeping the key small.
    """
    rounded = np.round(np.asarray(vec, dtype=np.float64), 9)
    # normalize -0.0 to 0.0 so equal vectors always hash identically
    rounded = rounded + 0.0
    return hashlib.blake2b(rounded.tobytes(), digest_size=16).hexdigest()
