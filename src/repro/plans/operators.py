"""Physical operator vocabulary.

The paper reports that Redshift plans contain **90 unique operator types**
(Section 4.4), which the global model one-hot encodes.  Redshift never
publishes the full list, so we reconstruct a 90-entry vocabulary from the
operators named in the paper (sequential scan, hash, materialize,
distributed hash join, aggregate, order by, ...), the Redshift EXPLAIN
documentation (XN-prefixed PostgreSQL-derived operators plus distribution
operators), and generic variants to fill the space.  What matters for the
reproduction is the *cardinality* of the vocabulary and the grouping into
operator classes used by the 33-dim flattened featurization.
"""

from __future__ import annotations

from enum import Enum

__all__ = [
    "OperatorClass",
    "OPERATOR_TYPES",
    "OPERATOR_INDEX",
    "OPERATOR_CLASS",
    "S3_FORMATS",
    "S3_FORMAT_INDEX",
    "N_OPERATOR_TYPES",
    "QUERY_TYPES",
    "QUERY_TYPE_INDEX",
    "is_scan_operator",
    "operator_class",
]


class OperatorClass(Enum):
    """Coarse operator families used by the flattened 33-dim featurization.

    The AutoWLM-style vector sums estimated cost/cardinality per family
    rather than per concrete operator, which is how a 90-type vocabulary
    compresses into a 33-wide vector.
    """

    SCAN = "scan"
    JOIN = "join"
    AGGREGATE = "aggregate"
    SORT = "sort"
    NETWORK = "network"
    MATERIALIZE = "materialize"
    OTHER = "other"


# ---------------------------------------------------------------------------
# The 90-operator vocabulary.  Grouped by family for readability; order is
# stable and defines the one-hot index of each operator.
# ---------------------------------------------------------------------------
_SCAN_OPS = [
    "seq_scan",
    "seq_scan_compressed",
    "s3_seq_scan",
    "s3_partition_scan",
    "spectrum_scan",
    "index_scan",
    "range_scan",
    "tid_scan",
    "subquery_scan",
    "function_scan",
    "values_scan",
    "cte_scan",
    "worktable_scan",
    "sample_scan",
]
_JOIN_OPS = [
    "hash_join",
    "distributed_hash_join",
    "broadcast_hash_join",
    "hash_left_join",
    "hash_right_join",
    "hash_full_join",
    "hash_semi_join",
    "hash_anti_join",
    "merge_join",
    "distributed_merge_join",
    "merge_left_join",
    "merge_full_join",
    "nested_loop_join",
    "nested_loop_left_join",
    "cross_join",
    "spatial_join",
]
_AGG_OPS = [
    "aggregate",
    "hash_aggregate",
    "grouped_aggregate",
    "partial_aggregate",
    "final_aggregate",
    "distinct_aggregate",
    "window_aggregate",
    "grouping_sets_aggregate",
    "stream_aggregate",
]
_SORT_OPS = [
    "sort",
    "order_by",
    "top_n_sort",
    "merge_sort",
    "partial_sort",
    "external_sort",
    "limit",
    "offset_limit",
]
_NETWORK_OPS = [
    "distribute",
    "broadcast",
    "redistribute",
    "ds_dist_none",
    "ds_dist_all_none",
    "ds_dist_inner",
    "ds_dist_outer",
    "ds_dist_both",
    "ds_bcast_inner",
    "ds_dist_all_inner",
    "network_send",
    "network_receive",
    "gather",
    "gather_merge",
]
_MATERIALIZE_OPS = [
    "hash",
    "materialize",
    "spool",
    "temp_table_write",
    "temp_table_read",
    "result_cache_write",
    "window_buffer",
    "save_result",
]
_OTHER_OPS = [
    "unique",
    "append",
    "merge_append",
    "setop_union",
    "setop_intersect",
    "setop_except",
    "subplan",
    "init_plan",
    "project",
    "filter",
    "window",
    "partition_window",
    "insert",
    "delete",
    "update",
    "copy_from_s3",
    "unload_to_s3",
    "vacuum_op",
    "analyze_op",
    "result",
    "return_op",
]

OPERATOR_TYPES = tuple(
    _SCAN_OPS
    + _JOIN_OPS
    + _AGG_OPS
    + _SORT_OPS
    + _NETWORK_OPS
    + _MATERIALIZE_OPS
    + _OTHER_OPS
)
N_OPERATOR_TYPES = len(OPERATOR_TYPES)
assert N_OPERATOR_TYPES == 90, f"vocabulary drifted to {N_OPERATOR_TYPES}"

OPERATOR_INDEX = {name: i for i, name in enumerate(OPERATOR_TYPES)}

OPERATOR_CLASS = {}
for _name in _SCAN_OPS:
    OPERATOR_CLASS[_name] = OperatorClass.SCAN
for _name in _JOIN_OPS:
    OPERATOR_CLASS[_name] = OperatorClass.JOIN
for _name in _AGG_OPS:
    OPERATOR_CLASS[_name] = OperatorClass.AGGREGATE
for _name in _SORT_OPS:
    OPERATOR_CLASS[_name] = OperatorClass.SORT
for _name in _NETWORK_OPS:
    OPERATOR_CLASS[_name] = OperatorClass.NETWORK
for _name in _MATERIALIZE_OPS:
    OPERATOR_CLASS[_name] = OperatorClass.MATERIALIZE
for _name in _OTHER_OPS:
    OPERATOR_CLASS[_name] = OperatorClass.OTHER

# S3 table formats named in the paper (Figure 5): Parquet, OpenCSV, Text,
# or Local when the table is Redshift-resident.  "null" marks non-scan
# operators that do not touch a base table.
S3_FORMATS = ("local", "parquet", "opencsv", "text", "null")
S3_FORMAT_INDEX = {name: i for i, name in enumerate(S3_FORMATS)}

# Query types included in the flattened feature vector (Section 4.2 names
# SELECT and DELETE as examples).
QUERY_TYPES = ("select", "insert", "update", "delete", "copy", "unload", "ctas")
QUERY_TYPE_INDEX = {name: i for i, name in enumerate(QUERY_TYPES)}


def operator_class(op_type):
    """Return the :class:`OperatorClass` of an operator type name."""
    try:
        return OPERATOR_CLASS[op_type]
    except KeyError:
        raise ValueError(f"unknown operator type: {op_type!r}") from None


def is_scan_operator(op_type):
    """True when the operator reads a base table (gets S3/table features)."""
    return operator_class(op_type) is OperatorClass.SCAN
