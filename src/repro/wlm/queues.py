"""Query queues used by the workload-manager simulator.

Two queue disciplines from Redshift's workload manager (Saxena et al.,
the paper's [50]):

- the **short queue** is FIFO: short queries are expected to clear fast,
  so ordering them is not worth the bookkeeping;
- the **long queue** is shortest-predicted-job-first: the predicted
  exec-time *is* the priority ("short queries execute first", paper
  Section 2.1), which is exactly why prediction quality moves end-to-end
  latency.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Optional

__all__ = ["FIFOQueue", "ShortestJobFirstQueue"]


class FIFOQueue:
    """First-in-first-out queue of query ids."""

    def __init__(self):
        self._items = deque()

    def push(self, query_id: int, priority: float = 0.0) -> None:
        self._items.append(query_id)

    def pop(self) -> Optional[int]:
        if not self._items:
            return None
        return self._items.popleft()

    def __len__(self):
        return len(self._items)


class ShortestJobFirstQueue:
    """Priority queue ordered by predicted exec-time, FIFO on ties."""

    def __init__(self):
        self._heap = []
        self._seq = 0

    def push(self, query_id: int, priority: float) -> None:
        heapq.heappush(self._heap, (priority, self._seq, query_id))
        self._seq += 1

    def pop(self) -> Optional[int]:
        if not self._heap:
            return None
        return heapq.heappop(self._heap)[2]

    def __len__(self):
        return len(self._heap)
