"""Event-driven workload-manager simulator (paper Section 5.2).

Replays a logged workload under a given set of exec-time predictions and
computes each query's latency (wait + execution).  Mirrors the paper's
evaluation methodology exactly:

- execution times are taken from the log and are *not* affected by
  scheduling (predictions only move wait time);
- the admission controller routes queries with predicted exec-time below
  a threshold to a dedicated FIFO **short queue** (Redshift's short query
  acceleration); everything else goes to a **long queue** ordered by
  predicted exec-time (shortest first);
- each queue owns a fixed number of execution slots.

The failure modes the paper describes fall out naturally: a long query
mispredicted as short blocks the short slots (head-of-line blocking),
and a short query mispredicted as long waits behind genuinely long work.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from .queues import FIFOQueue, ShortestJobFirstQueue

__all__ = ["WLMConfig", "QueryOutcome", "SimulationResult", "simulate_wlm"]


@dataclass(frozen=True)
class WLMConfig:
    """Workload-manager knobs."""

    #: slots reserved for the short-query queue
    short_slots: int = 2
    #: slots for the main (long) queue
    long_slots: int = 4
    #: predicted exec-time below which a query is routed short
    short_threshold_s: float = 5.0
    #: short-query-acceleration timeout: a query that runs in the short
    #: queue longer than this is killed and re-queued long (its work is
    #: lost), bounding the head-of-line blocking a misprediction causes —
    #: Redshift's SQA behaves the same way.  ``None`` disables demotion.
    sqa_timeout_s: float | None = 15.0
    #: concurrency-scaling slots (paper Section 2.1: overflow queries can
    #: be "sent to a concurrency scaling cluster").  Burst slots serve the
    #: long queue only when every main long slot is busy.  0 disables.
    burst_slots: int = 0
    #: spin-up delay before a query starts on the burst cluster
    burst_startup_s: float = 30.0

    def __post_init__(self):
        if self.short_slots < 1 or self.long_slots < 1:
            raise ValueError("slot counts must be >= 1")
        if self.short_threshold_s <= 0:
            raise ValueError("short_threshold_s must be positive")
        if self.sqa_timeout_s is not None and self.sqa_timeout_s <= 0:
            raise ValueError("sqa_timeout_s must be positive or None")
        if self.burst_slots < 0:
            raise ValueError("burst_slots must be >= 0")
        if self.burst_startup_s < 0:
            raise ValueError("burst_startup_s must be >= 0")


@dataclass
class QueryOutcome:
    """Per-query accounting after simulation."""

    query_id: int
    arrival: float
    exec_time: float
    predicted: float
    queue: str  # "short" | "long"
    start: float
    finish: float
    #: True when the query overran the SQA timeout in the short queue and
    #: was demoted to the long queue (restarting from scratch)
    demoted: bool = False

    @property
    def wait(self) -> float:
        return self.start - self.arrival

    @property
    def latency(self) -> float:
        return self.finish - self.arrival


@dataclass
class SimulationResult:
    """All outcomes plus convenience aggregates."""

    outcomes: List[QueryOutcome]

    def latencies(self) -> np.ndarray:
        return np.array([o.latency for o in self.outcomes])

    def waits(self) -> np.ndarray:
        return np.array([o.wait for o in self.outcomes])

    @property
    def mean_latency(self) -> float:
        return float(self.latencies().mean())

    @property
    def median_latency(self) -> float:
        return float(np.percentile(self.latencies(), 50))

    def tail_latency(self, percentile: float = 90.0) -> float:
        return float(np.percentile(self.latencies(), percentile))


# event types: completions must release slots before same-time arrivals queue
_COMPLETION = 0
_ARRIVAL = 1


def simulate_wlm(
    arrivals: Sequence[float],
    exec_times: Sequence[float],
    predictions: Sequence[float],
    config: WLMConfig | None = None,
) -> SimulationResult:
    """Simulate the WLM over one instance's workload.

    Parameters
    ----------
    arrivals, exec_times, predictions:
        Parallel arrays: when each query arrived, how long it actually
        ran (from the log), and what the predictor estimated at admission.
    """
    config = config or WLMConfig()
    arrivals = np.asarray(arrivals, dtype=np.float64)
    exec_times = np.asarray(exec_times, dtype=np.float64)
    predictions = np.asarray(predictions, dtype=np.float64)
    if not (arrivals.shape == exec_times.shape == predictions.shape):
        raise ValueError("arrivals/exec_times/predictions shape mismatch")
    if (exec_times < 0).any():
        raise ValueError("exec_times must be >= 0")
    n = arrivals.shape[0]
    if n == 0:
        return SimulationResult(outcomes=[])

    order = np.argsort(arrivals, kind="stable")
    short_queue = FIFOQueue()
    long_queue = ShortestJobFirstQueue()
    free_short = config.short_slots
    free_long = config.long_slots
    free_burst = config.burst_slots

    outcomes: dict[int, QueryOutcome] = {}
    events = []  # (time, type, seq, payload)
    seq = 0
    for qid in order:
        events.append((float(arrivals[qid]), _ARRIVAL, seq, int(qid)))
        seq += 1
    heapq.heapify(events)

    def dispatch(now: float) -> None:
        nonlocal free_short, free_long, free_burst, seq
        while free_short > 0 and len(short_queue):
            qid = short_queue.pop()
            free_short -= 1
            _start(qid, now, "short")
        while free_long > 0 and len(long_queue):
            qid = long_queue.pop()
            free_long -= 1
            _start(qid, now, "long")
        # overflow to the concurrency-scaling cluster: only once every
        # main long slot is occupied
        while free_burst > 0 and len(long_queue):
            qid = long_queue.pop()
            free_burst -= 1
            _start(qid, now, "burst")

    def _start(qid: int, now: float, queue: str) -> None:
        nonlocal seq
        out = outcomes[qid]
        if np.isnan(out.start):
            out.start = now
        timeout = config.sqa_timeout_s
        if queue == "short" and timeout is not None and out.exec_time > timeout:
            # SQA demotion: the short attempt is aborted at the timeout
            # and the query restarts from the long queue later.
            heapq.heappush(
                events, (now + timeout, _COMPLETION, seq, (qid, "demote"))
            )
        else:
            startup = config.burst_startup_s if queue == "burst" else 0.0
            out.finish = now + startup + out.exec_time
            out.queue = queue
            heapq.heappush(events, (out.finish, _COMPLETION, seq, (qid, queue)))
        seq += 1

    while events:
        now, etype, _, payload = heapq.heappop(events)
        if etype == _ARRIVAL:
            qid = payload
            outcomes[qid] = QueryOutcome(
                query_id=qid,
                arrival=float(arrivals[qid]),
                exec_time=float(exec_times[qid]),
                predicted=float(predictions[qid]),
                queue="",
                start=np.nan,
                finish=np.nan,
            )
            if predictions[qid] < config.short_threshold_s:
                short_queue.push(qid)
            else:
                long_queue.push(qid, float(predictions[qid]))
        else:
            qid_or_none, queue = payload
            if queue == "demote":
                free_short += 1
                out = outcomes[qid_or_none]
                out.demoted = True
                long_queue.push(
                    qid_or_none,
                    max(
                        float(predictions[qid_or_none]),
                        config.short_threshold_s,
                    ),
                )
            elif queue == "short":
                free_short += 1
            elif queue == "burst":
                free_burst += 1
            else:
                free_long += 1
        dispatch(now)

    result = [outcomes[qid] for qid in sorted(outcomes)]
    return SimulationResult(outcomes=result)
