"""Workload-manager simulator: the paper's end-to-end evaluation substrate."""

from .queues import FIFOQueue, ShortestJobFirstQueue
from .simulator import QueryOutcome, SimulationResult, WLMConfig, simulate_wlm

__all__ = [
    "FIFOQueue",
    "ShortestJobFirstQueue",
    "WLMConfig",
    "QueryOutcome",
    "SimulationResult",
    "simulate_wlm",
]
