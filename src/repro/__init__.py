"""repro — reproduction of "Stage: Query Execution Time Prediction in
Amazon Redshift" (Wu et al., SIGMOD 2024).

Public API quick map:

- :mod:`repro.core` — ``StagePredictor``, ``AutoWLMPredictor``,
  ``OptimalPredictor``, metrics, configuration profiles;
- :mod:`repro.cache` — the exec-time cache;
- :mod:`repro.local_model` / :mod:`repro.global_model` — the two learned
  stages;
- :mod:`repro.plans` — physical plan trees and featurizations;
- :mod:`repro.workload` — the synthetic Redshift-fleet generator;
- :mod:`repro.wlm` — the workload-manager simulator (end-to-end eval);
- :mod:`repro.harness` — replay evaluation and the paper's experiments;
- :mod:`repro.service` — the online serving layer (micro-batching
  ``PredictionService``, model registry, serving benchmark);
- :mod:`repro.scenarios` — the declarative stress-scenario suite
  (``python -m repro.scenarios`` replays the registered matrix).
"""

from .core import (
    AutoWLMPredictor,
    OptimalPredictor,
    Prediction,
    PredictionSource,
    StageConfig,
    StagePredictor,
    fast_profile,
    paper_profile,
)
from .cache import ExecTimeCache
from .local_model import LocalModel, TrainingPool
from .global_model import GlobalModel, GlobalModelTrainer
from .workload import FleetConfig, FleetGenerator, QueryRecord, Trace

__version__ = "1.0.0"

__all__ = [
    "StagePredictor",
    "AutoWLMPredictor",
    "OptimalPredictor",
    "Prediction",
    "PredictionSource",
    "StageConfig",
    "fast_profile",
    "paper_profile",
    "ExecTimeCache",
    "LocalModel",
    "TrainingPool",
    "GlobalModel",
    "GlobalModelTrainer",
    "FleetConfig",
    "FleetGenerator",
    "QueryRecord",
    "Trace",
    "__version__",
]
