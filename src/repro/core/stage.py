"""The Stage predictor: cache -> local model -> global model.

The paper's core contribution (Section 4).  Routing for a query ``Q``:

1. flatten ``Q``'s physical plan to the 33-dim vector and hash it; on an
   exec-time-cache hit, return the cached blend (near-zero latency);
2. otherwise ask the instance-optimized local model; if the prediction is
   *short* (below ``short_circuit_seconds``) or *certain* (log-space std
   below ``uncertainty_threshold``), return it;
3. otherwise fall back to the fleet-trained global model (expensive but
   robust exactly where the local model is weak).

After execution, the observed time updates the cache, and — only when the
query *missed* the cache (dedup rule) — the local training pool.
"""

from __future__ import annotations

from typing import Optional

from repro.cache import ExecTimeCache
from repro.global_model.model import GlobalModel
from repro.local_model.model import LocalModel
from repro.workload.instance import InstanceProfile
from repro.workload.query import QueryRecord

from .config import StageConfig
from .interfaces import Prediction, PredictionSource, Predictor, RunningMedian

__all__ = ["StagePredictor"]


class StagePredictor(Predictor):
    """Hierarchical exec-time predictor for one instance.

    Parameters
    ----------
    instance:
        The cluster this predictor serves (provides the system features
        the global model consumes).
    global_model:
        The shared fleet-trained model, or ``None`` to run cache+local
        only (the configuration currently deployed in Redshift, per
        Section 5.2).
    config:
        Thresholds and sub-model settings.
    """

    name = "stage"

    def __init__(
        self,
        instance: InstanceProfile,
        global_model: Optional[GlobalModel] = None,
        config: StageConfig | None = None,
        random_state: int = 0,
    ):
        self.config = config or StageConfig()
        self.instance = instance
        self.cache = ExecTimeCache(
            capacity=self.config.cache.capacity, alpha=self.config.cache.alpha
        )
        self.local = LocalModel(
            config=self.config.local,
            pool_config=self.config.pool,
            random_state=random_state,
        )
        self.global_model = global_model
        self._default = RunningMedian()
        self.source_counts = {
            PredictionSource.CACHE: 0,
            PredictionSource.LOCAL: 0,
            PredictionSource.GLOBAL: 0,
            PredictionSource.DEFAULT: 0,
        }

    # ------------------------------------------------------------------
    def predict(self, record: QueryRecord) -> Prediction:
        cfg = self.config
        # stage 1: exec-time cache
        cached = self.cache.lookup(self.cache.key_for(record.features))
        if cached is not None:
            self.source_counts[PredictionSource.CACHE] += 1
            return Prediction(
                exec_time=cached, source=PredictionSource.CACHE
            )

        # stage 2: local model ("short or certain" -> trust it)
        local_pred = None
        if self.local.is_ready:
            local_pred = self.local.predict(record.features)
            is_short = local_pred.exec_time < cfg.short_circuit_seconds
            is_certain = local_pred.std < cfg.uncertainty_threshold
            if is_short or is_certain or self.global_model is None:
                self.source_counts[PredictionSource.LOCAL] += 1
                return local_pred

        # stage 3: global model (local is uncertain or not ready)
        if self.global_model is not None:
            self.source_counts[PredictionSource.GLOBAL] += 1
            return self.global_model.predict(
                record.plan, self.instance, n_concurrent=0.0
            )

        # cold start with no global model: running-median default
        self.source_counts[PredictionSource.DEFAULT] += 1
        return Prediction(
            exec_time=self._default.value, source=PredictionSource.DEFAULT
        )

    # ------------------------------------------------------------------
    def observe(self, record: QueryRecord) -> None:
        key = self.cache.key_for(record.features)
        was_hit = key in self.cache
        # dedup rule (Section 4.3): only cache misses enter the pool
        self.local.add_example(
            record.features, record.exec_time, cache_hit=was_hit
        )
        self.cache.observe(key, record.exec_time)
        self._default.update(record.exec_time)

    # ------------------------------------------------------------------
    @property
    def global_use_fraction(self) -> float:
        """Fraction of predictions served by the global model."""
        total = sum(self.source_counts.values())
        if total == 0:
            return 0.0
        return self.source_counts[PredictionSource.GLOBAL] / total

    def byte_size(self) -> int:
        """Footprint of cache + local model.

        The global model is excluded, as in the paper's Figure 9: it is
        shared fleet-wide (deployed as a serverless function), not held
        per instance.
        """
        return self.cache.byte_size() + self.local.byte_size()
