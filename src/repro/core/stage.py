"""The Stage predictor: cache -> local model -> global model.

The paper's core contribution (Section 4).  Routing for a query ``Q``:

1. flatten ``Q``'s physical plan to the 33-dim vector and hash it; on an
   exec-time-cache hit, return the cached blend (near-zero latency);
2. otherwise ask the instance-optimized local model; if the prediction is
   *short* (below ``short_circuit_seconds``) or *certain* (log-space std
   below ``uncertainty_threshold``), return it;
3. otherwise fall back to the fleet-trained global model (expensive but
   robust exactly where the local model is weak).

After execution, the observed time updates the cache, and — only when the
query *missed* the cache (dedup rule) — the local training pool.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.cache import ExecTimeCache
from repro.global_model.model import GlobalModel
from repro.local_model.model import LocalModel
from repro.workload.instance import InstanceProfile
from repro.workload.query import QueryRecord

from .config import StageConfig
from .interfaces import Prediction, PredictionSource, Predictor, RunningMedian

__all__ = ["RoutedComponents", "StagePredictor"]


@dataclass
class RoutedComponents:
    """One routed prediction plus the component answers the router saw.

    Produced by :meth:`StagePredictor.predict_with_components`: exactly
    the same routing (and the same cache/counter accounting — one counted
    cache lookup, at most one local-ensemble inference) as
    :meth:`StagePredictor.predict`, but the intermediate answers are
    surfaced instead of discarded.  This is what lets the replay harness
    collect per-component arrays without re-invoking any model.
    """

    #: the answer Stage actually routed to
    prediction: Prediction
    #: the cache's blended value, or ``None`` on a cache miss
    cache_value: Optional[float]
    #: the local ensemble's answer where the router consulted it
    #: (i.e. on every cache miss with a ready local model); ``None``
    #: on cache hits and before the first local retrain
    local: Optional[Prediction]
    #: whether the local model had a trained ensemble at prediction time
    local_ready: bool
    #: ``LocalModel.n_retrains`` at prediction time — identifies the
    #: retrain window a deferred (batched) local inference must target
    local_generation: int


class StagePredictor(Predictor):
    """Hierarchical exec-time predictor for one instance.

    Parameters
    ----------
    instance:
        The cluster this predictor serves (provides the system features
        the global model consumes).
    global_model:
        The shared fleet-trained model, or ``None`` to run cache+local
        only (the configuration currently deployed in Redshift, per
        Section 5.2).
    config:
        Thresholds and sub-model settings.
    """

    name = "stage"

    def __init__(
        self,
        instance: InstanceProfile,
        global_model: Optional[GlobalModel] = None,
        config: StageConfig | None = None,
        random_state: int = 0,
    ):
        self.config = config or StageConfig()
        self.instance = instance
        self.cache = ExecTimeCache(
            capacity=self.config.cache.capacity, alpha=self.config.cache.alpha
        )
        self.local = LocalModel(
            config=self.config.local,
            pool_config=self.config.pool,
            random_state=random_state,
        )
        self.global_model = global_model
        self._default = RunningMedian()
        self.source_counts = {
            PredictionSource.CACHE: 0,
            PredictionSource.LOCAL: 0,
            PredictionSource.GLOBAL: 0,
            PredictionSource.DEFAULT: 0,
        }

    # ------------------------------------------------------------------
    def predict(self, record: QueryRecord) -> Prediction:
        return self.predict_with_components(record).prediction

    def predict_with_components(self, record: QueryRecord) -> RoutedComponents:
        """Route ``record`` and expose every component answer seen.

        This is the one routing implementation; :meth:`predict` is a
        thin wrapper over it.  Counter semantics are guaranteed: exactly
        one counted cache lookup per call, and the local ensemble runs at
        most once (only on cache misses once it is ready) — component
        collection must *not* add lookups or inferences on top.
        """
        cfg = self.config
        local_ready = self.local.is_ready
        local_generation = self.local.n_retrains

        # stage 1: exec-time cache
        cached = self.cache.lookup(self.cache.key_for(record.features))
        if cached is not None:
            self.source_counts[PredictionSource.CACHE] += 1
            return RoutedComponents(
                prediction=Prediction(
                    exec_time=cached, source=PredictionSource.CACHE
                ),
                cache_value=cached,
                local=None,
                local_ready=local_ready,
                local_generation=local_generation,
            )

        # stage 2: local model ("short or certain" -> trust it)
        local_pred = None
        if local_ready:
            local_pred = self.local.predict(record.features)
            is_short = local_pred.exec_time < cfg.short_circuit_seconds
            is_certain = local_pred.std < cfg.uncertainty_threshold
            if is_short or is_certain or self.global_model is None:
                self.source_counts[PredictionSource.LOCAL] += 1
                return RoutedComponents(
                    prediction=local_pred,
                    cache_value=None,
                    local=local_pred,
                    local_ready=True,
                    local_generation=local_generation,
                )

        # stage 3: global model (local is uncertain or not ready)
        if self.global_model is not None:
            self.source_counts[PredictionSource.GLOBAL] += 1
            return RoutedComponents(
                prediction=self.global_model.predict(
                    record.plan, self.instance, n_concurrent=0.0
                ),
                cache_value=None,
                local=local_pred,
                local_ready=local_ready,
                local_generation=local_generation,
            )

        # cold start with no global model: running-median default
        self.source_counts[PredictionSource.DEFAULT] += 1
        return RoutedComponents(
            prediction=Prediction(
                exec_time=self._default.value, source=PredictionSource.DEFAULT
            ),
            cache_value=None,
            local=None,
            local_ready=local_ready,
            local_generation=local_generation,
        )

    # ------------------------------------------------------------------
    def observe(self, record: QueryRecord) -> None:
        key = self.cache.key_for(record.features)
        was_hit = key in self.cache
        # dedup rule (Section 4.3): only cache misses enter the pool
        self.local.add_example(
            record.features, record.exec_time, cache_hit=was_hit
        )
        self.cache.observe(key, record.exec_time)
        self._default.update(record.exec_time)

    # ------------------------------------------------------------------
    @property
    def global_use_fraction(self) -> float:
        """Fraction of predictions served by the global model."""
        total = sum(self.source_counts.values())
        if total == 0:
            return 0.0
        return self.source_counts[PredictionSource.GLOBAL] / total

    def byte_size(self) -> int:
        """Footprint of cache + local model.

        The global model is excluded, as in the paper's Figure 9: it is
        shared fleet-wide (deployed as a serverless function), not held
        per instance.
        """
        return self.cache.byte_size() + self.local.byte_size()
