"""The Stage predictor: cache -> local model -> global model.

The paper's core contribution (Section 4).  Routing for a query ``Q``:

1. flatten ``Q``'s physical plan to the 33-dim vector and hash it; on an
   exec-time-cache hit, return the cached blend (near-zero latency);
2. otherwise ask the instance-optimized local model; if the prediction is
   *short* (below ``short_circuit_seconds``) or *certain* (log-space std
   below ``uncertainty_threshold``), return it;
3. otherwise fall back to the fleet-trained global model (expensive but
   robust exactly where the local model is weak).

After execution, the observed time updates the cache, and — only when the
query *missed* the cache (dedup rule) — the local training pool.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.cache import ExecTimeCache
from repro.forecast import WorkloadForecast
from repro.global_model.model import GlobalModel
from repro.local_model.model import LocalModel
from repro.ml.intervals import new_width_bins, width_bin_index
from repro.workload.instance import InstanceProfile
from repro.workload.query import QueryRecord
from repro.workload.seeding import derive_seed

from .config import StageConfig
from .interfaces import Prediction, PredictionSource, Predictor, RunningMedian

__all__ = ["BatchRouter", "RoutedComponents", "RoutedSlot", "StagePredictor"]


@dataclass
class RoutedComponents:
    """One routed prediction plus the component answers the router saw.

    Produced by :meth:`StagePredictor.predict_with_components`: exactly
    the same routing (and the same cache/counter accounting — one counted
    cache lookup, at most one local-ensemble inference) as
    :meth:`StagePredictor.predict`, but the intermediate answers are
    surfaced instead of discarded.  This is what lets the replay harness
    collect per-component arrays without re-invoking any model.
    """

    #: the answer Stage actually routed to
    prediction: Prediction
    #: the cache's full answer (blended point + Welford interval), or
    #: ``None`` on a cache miss; on a hit this is the very object routed
    #: as ``prediction``
    cache: Optional[Prediction]
    #: the local ensemble's answer where the router consulted it
    #: (i.e. on every cache miss with a ready local model); ``None``
    #: on cache hits and before the first local retrain
    local: Optional[Prediction]
    #: whether the local model had a trained ensemble at prediction time
    local_ready: bool
    #: ``LocalModel.n_retrains`` at prediction time — identifies the
    #: retrain window a deferred (batched) local inference must target
    local_generation: int


class StagePredictor(Predictor):
    """Hierarchical exec-time predictor for one instance.

    Parameters
    ----------
    instance:
        The cluster this predictor serves (provides the system features
        the global model consumes).
    global_model:
        The shared fleet-trained model, or ``None`` to run cache+local
        only (the configuration currently deployed in Redshift, per
        Section 5.2).
    config:
        Thresholds and sub-model settings.
    """

    name = "stage"

    def __init__(
        self,
        instance: InstanceProfile,
        global_model: Optional[GlobalModel] = None,
        config: StageConfig | None = None,
        random_state: int = 0,
    ):
        self.config = config or StageConfig()
        self.instance = instance
        forecast_config = self.config.forecast
        self.cache = ExecTimeCache(
            capacity=self.config.cache.capacity,
            alpha=self.config.cache.alpha,
            archive_capacity=(
                forecast_config.archive_capacity if forecast_config is not None else 0
            ),
        )
        # workload forecasting (default-off): state accumulates from the
        # sequenced op stream's arrival times and cache keys in observe,
        # so everything it drives — pre-warms, retrain deferrals, the
        # rebalancer's load signal — is bit-identical on every backend
        if forecast_config is not None:
            self.forecast: Optional[WorkloadForecast] = WorkloadForecast(
                forecast_config, seed=derive_seed(instance.seed, "forecast")
            )
        else:
            self.forecast = None
        #: hold warm local retrains for forecast troughs; the service's
        #: ``defer_retrains_to_troughs`` knob flips this after build
        self.defer_retrains = bool(
            forecast_config is not None and forecast_config.defer_retrains
        )
        self._forecast_bin: Optional[int] = None
        #: absolute bin a held retrain first became due in (bounds the
        #: deferral: ``max_retrain_defer_bins`` later it runs regardless)
        self._retrain_due_bin: Optional[int] = None
        self.n_prewarm_touches = 0
        self.n_prewarm_restores = 0
        self.n_retrain_deferrals = 0
        self.n_trough_retrains = 0
        self.local = LocalModel(
            config=self.config.local,
            pool_config=self.config.pool,
            random_state=random_state,
        )
        self.global_model = global_model
        self._default = RunningMedian()
        #: reusable single-query router (lazily built) so the hot
        #: predict path pays no per-call router construction
        self._inline_router = None
        self.source_counts = {
            PredictionSource.CACHE: 0,
            PredictionSource.LOCAL: 0,
            PredictionSource.GLOBAL: 0,
            PredictionSource.DEFAULT: 0,
        }
        #: fixed-bin histogram of routed interval widths (seconds); the
        #: integer counts merge across shards by elementwise addition,
        #: so fleet-level width percentiles are reduction-order-free
        self.interval_width_bins = new_width_bins()

    def _count_routed(self, prediction: Prediction) -> None:
        """Account one routed answer: source counter + width histogram.

        The single accounting choke point — every route (inline, batched,
        served) lands here exactly once per routed prediction.
        """
        self.source_counts[prediction.source] += 1
        self.interval_width_bins[width_bin_index(prediction.interval_width)] += 1

    # ------------------------------------------------------------------
    def predict(self, record: QueryRecord) -> Prediction:
        return self.predict_with_components(record).prediction

    def predict_with_components(self, record: QueryRecord) -> RoutedComponents:
        """Route ``record`` and expose every component answer seen.

        The degenerate (batch size 1) case of :class:`BatchRouter` — the
        one routing implementation, shared with the replay harness and
        the online serving layer so the paths cannot drift.  Counter
        semantics are guaranteed: exactly one counted cache lookup per
        call, and the local ensemble runs at most once (only on cache
        misses once it is ready) — component collection must *not* add
        lookups or inferences on top.
        """
        router = self._inline_router
        if router is None:
            router = self._inline_router = BatchRouter(self)
        slot = router.route(record)
        router.flush()
        return slot.components

    # ------------------------------------------------------------------
    def observe(self, record: QueryRecord) -> None:
        key = self.cache.key_for(record.features)
        was_hit = key in self.cache
        deferring = False
        if self.forecast is not None:
            self._forecast_step(record.arrival_time, key)
            deferring = self.defer_retrains and self.local.is_ready
        # dedup rule (Section 4.3): only cache misses enter the pool
        self.local.add_example(
            record.features,
            record.exec_time,
            cache_hit=was_hit,
            allow_retrain=not deferring,
        )
        if deferring:
            self._maybe_release_retrain(record.arrival_time)
        self.cache.observe(key, record.exec_time)
        self._default.update(record.exec_time)

    def _forecast_step(self, time_s: float, key: str) -> None:
        """Advance forecast state by one arrival; pre-warm on a new bin.

        Pre-warming runs *before* the current arrival enters history, so
        the hot-key set is a function of strictly-prior observations —
        identical whether ops arrive one at a time or in serving
        batches.  Observes execute in arrival order on every backend, so
        every pre-warm lands at the same op-stream position fleet-wide.
        """
        forecast = self.forecast
        bin_index = forecast.bin_index(time_s)
        crossed = self._forecast_bin is not None and bin_index > self._forecast_bin
        if self._forecast_bin is None or bin_index > self._forecast_bin:
            self._forecast_bin = bin_index
        if crossed and self.config.forecast.prewarm:
            for hot in forecast.hot_keys(time_s):
                if self.cache.touch(hot):
                    self.n_prewarm_touches += 1
                elif self.cache.restore(hot):
                    self.n_prewarm_restores += 1
        forecast.observe(time_s, key)

    def _maybe_release_retrain(self, time_s: float) -> None:
        """Run a held warm retrain in a forecast trough (or when the
        deferral bound expires)."""
        if not self.local.retrain_due:
            self._retrain_due_bin = None
            return
        bin_index = self.forecast.bin_index(time_s)
        if self._retrain_due_bin is None:
            self._retrain_due_bin = bin_index
        overdue = (
            bin_index - self._retrain_due_bin
            >= self.config.forecast.max_retrain_defer_bins
        )
        if overdue or self.forecast.is_trough(time_s):
            self.local.retrain()
            self.n_trough_retrains += 1
            self._retrain_due_bin = None
        else:
            self.n_retrain_deferrals += 1

    def forecast_load(self) -> float:
        """The forecast near-term load signal (0.0 with forecasting off
        or a cold forecaster) — what ``ControlConfig.load_source=
        "forecast"`` balances the fleet on."""
        if self.forecast is None:
            return 0.0
        return self.forecast.forecast_load()

    # ------------------------------------------------------------------
    @property
    def global_use_fraction(self) -> float:
        """Fraction of predictions served by the global model."""
        total = sum(self.source_counts.values())
        if total == 0:
            return 0.0
        return self.source_counts[PredictionSource.GLOBAL] / total

    def byte_size(self) -> int:
        """Footprint of cache + local model.

        The global model is excluded, as in the paper's Figure 9: it is
        shared fleet-wide (deployed as a serverless function), not held
        per instance.
        """
        return self.cache.byte_size() + self.local.byte_size()


class RoutedSlot:
    """Placeholder for one routed prediction.

    ``components`` is filled either immediately (cache hit, cold-start
    global/default routes) or at the router's next :meth:`BatchRouter.flush`
    (routes that need the local ensemble).
    """

    __slots__ = ("components",)

    def __init__(self, components: Optional[RoutedComponents] = None):
        self.components = components

    @property
    def ready(self) -> bool:
        return self.components is not None


@dataclass
class _PendingEntry:
    """One deferred local-ensemble inference inside the open window."""

    slot: RoutedSlot
    record: QueryRecord
    #: True when the router itself needs the answer to finish routing;
    #: False for component-collection-only inference on cache hits
    routed: bool


class BatchRouter:
    """Incremental batch routing over one :class:`StagePredictor`.

    The single batch-path implementation shared by the replay harness
    (``component_inference="batched"`` and ``via_service`` modes) and the
    online :class:`~repro.service.PredictionService` — both consume this
    class, so the offline and serving paths cannot drift.

    Contract: interleaving :meth:`route` and :meth:`observe` calls in
    arrival order produces, after the final :meth:`flush`, results
    **bit-identical** to the sequential
    ``predict_with_components``/``observe`` loop — for any flush points.
    This holds because the only work the router defers is local-ensemble
    inference, and the ensemble is frozen between retrains:

    - cache lookups, observes (and the retrains they trigger) and the
      cold-start routes run inline, in arrival order, with identical
      counter accounting;
    - a query routed while the local model is ready joins the *pending
      window* — the deferred inferences against one frozen ensemble
      generation.  The window is answered by one batched ensemble call
      (bit-identical per row to per-query calls) at the next flush, which
      happens no later than the next generation change;
    - the "short or certain" rule and the global-model fallback complete
      at flush time; the global model is frozen, and its batched forward
      (:meth:`~repro.global_model.GlobalModel.predict_many`, built on the
      order-stable :meth:`~repro.ml.gcn.DirectedGCN.predict_graphs_stable`)
      is bit-identical to per-query evaluation, so deferral — and the
      window's batch boundaries — change no arithmetic there either.
    """

    def __init__(self, stage: StagePredictor, collect_cache_hit_local: bool = False):
        self.stage = stage
        #: also run the (frozen) local ensemble on cache hits, filling
        #: ``components.local`` for them at flush time — used by replay
        #: component collection; never affects routing or accounting
        self.collect_cache_hit_local = collect_cache_hit_local
        self._frozen = None
        self._pending: List[_PendingEntry] = []

    # ------------------------------------------------------------------
    @property
    def n_deferred(self) -> int:
        """Deferred *routed* predictions waiting on the next flush."""
        return sum(1 for entry in self._pending if entry.routed)

    @property
    def has_pending(self) -> bool:
        return bool(self._pending)

    # ------------------------------------------------------------------
    def route(self, record: QueryRecord) -> RoutedSlot:
        """Route one query; may defer local inference to the next flush.

        Returns a :class:`RoutedSlot` that is ready immediately for cache
        hits and cold-start routes, and completes at the next
        :meth:`flush` when the local ensemble is consulted.
        """
        stage = self.stage
        local_ready = stage.local.is_ready
        local_generation = stage.local.n_retrains

        # stage 1: exec-time cache
        cached = stage.cache.lookup_prediction(
            stage.cache.key_for(record.features)
        )
        if cached is not None:
            stage._count_routed(cached)
            slot = RoutedSlot(
                RoutedComponents(
                    prediction=cached,
                    cache=cached,
                    local=None,
                    local_ready=local_ready,
                    local_generation=local_generation,
                )
            )
            if self.collect_cache_hit_local and local_ready:
                self._defer(slot, record, routed=False)
            return slot

        # stage 2/3 with a ready local model: defer to the window batch
        if local_ready:
            slot = RoutedSlot()
            self._defer(slot, record, routed=True)
            return slot

        return self._route_cold(record, local_ready, local_generation)

    def _route_cold(
        self, record: QueryRecord, local_ready: bool, local_generation: int
    ) -> RoutedSlot:
        """Stage 3 / default for a cache miss with no ready local model."""
        stage = self.stage
        if stage.global_model is not None:
            prediction = stage.global_model.predict(
                record.plan, stage.instance, n_concurrent=0.0
            )
        else:
            # cold start with no global model: running-median default
            prediction = Prediction(
                exec_time=stage._default.value,
                source=PredictionSource.DEFAULT,
            )
        stage._count_routed(prediction)
        return RoutedSlot(
            RoutedComponents(
                prediction=prediction,
                cache=None,
                local=None,
                local_ready=local_ready,
                local_generation=local_generation,
            )
        )

    def route_batch(self, records: List[QueryRecord]) -> List[RoutedSlot]:
        """Route a window of queries in one pass — the serving fast path.

        Bit-identical (results *and* cache/counter accounting) to
        calling :meth:`route` once per record in order, which is valid
        exactly because no observe intervenes inside the window: the
        cache, the local ensemble's readiness/generation and the
        running-median default are all constant across the batch, so the
        per-record loop's repeated state reads are hoisted and the cache
        probe collapses into one counted
        :meth:`~repro.cache.ExecTimeCache.lookup_predictions` pass over
        precomputed answers.  ~80% of fleet traffic is cache hits, so
        this removes most of the per-op routing cost.
        """
        stage = self.stage
        cache = stage.cache
        local_ready = stage.local.is_ready
        local_generation = stage.local.n_retrains
        collect = self.collect_cache_hit_local and local_ready
        batch_global = stage.global_model is not None
        cached = cache.lookup_predictions(
            [cache.key_for(record.features) for record in records]
        )
        slots: List[RoutedSlot] = []
        cold_global: List[int] = []
        for idx, (record, hit) in enumerate(zip(records, cached)):
            if hit is not None:
                stage._count_routed(hit)
                slot = RoutedSlot(
                    RoutedComponents(
                        prediction=hit,
                        cache=hit,
                        local=None,
                        local_ready=local_ready,
                        local_generation=local_generation,
                    )
                )
                if collect:
                    self._defer(slot, record, routed=False)
            elif local_ready:
                slot = RoutedSlot()
                self._defer(slot, record, routed=True)
            elif batch_global:
                # cold global route: completed below with one batched
                # order-stable forward over the window's cold misses
                slot = RoutedSlot()
                cold_global.append(idx)
            else:
                slot = self._route_cold(record, local_ready, local_generation)
            slots.append(slot)
        if cold_global:
            predictions = self._global_many(
                [records[i].plan for i in cold_global]
            )
            for idx, prediction in zip(cold_global, predictions):
                stage._count_routed(prediction)
                slots[idx].components = RoutedComponents(
                    prediction=prediction,
                    cache=None,
                    local=None,
                    local_ready=local_ready,
                    local_generation=local_generation,
                )
        return slots

    def _global_many(self, plans: List) -> List[Prediction]:
        """Batched global-model fallback, in window order.

        Uses the model's bit-identical batched forward when it has one
        (:meth:`~repro.global_model.GlobalModel.predict_many`); global
        stand-ins that only implement ``predict`` get the equivalent
        per-plan loop.
        """
        stage = self.stage
        many = getattr(stage.global_model, "predict_many", None)
        if many is not None:
            return many(plans, stage.instance, n_concurrent=0.0)
        return [
            stage.global_model.predict(plan, stage.instance, n_concurrent=0.0)
            for plan in plans
        ]

    def observe(self, record: QueryRecord) -> None:
        """Apply one execution outcome, in arrival order.

        A retrain triggered here never disturbs the pending window: the
        window holds a frozen snapshot of the pre-retrain ensemble.
        """
        self.stage.observe(record)

    # ------------------------------------------------------------------
    def _defer(self, slot: RoutedSlot, record: QueryRecord, routed: bool) -> None:
        generation = self.stage.local.n_retrains
        if self._frozen is not None and self._frozen.generation != generation:
            self.flush()
        if self._frozen is None:
            self._frozen = self.stage.local.frozen()
        self._pending.append(_PendingEntry(slot=slot, record=record, routed=routed))

    def flush(self) -> None:
        """Serve the pending window with one batched ensemble call.

        Completes every deferred slot.  Flushing early (e.g. a serving
        micro-batch boundary) is always safe: the window's ensemble is
        frozen and per-row batched inference is bit-identical to
        per-query inference, so flush points never change results.
        """
        if self._frozen is None:
            return
        stage = self.stage
        cfg = stage.config
        pending, self._pending = self._pending, []
        frozen, self._frozen = self._frozen, None
        features = np.vstack([entry.record.features for entry in pending])
        batch = frozen.predict_batch(features)
        #: entries routed to the global model, resolved below with one
        #: batched order-stable forward in window order (bit-identical
        #: to the per-entry ``predict`` loop it replaces)
        fallback: List[int] = []
        for i, (entry, local_pred) in enumerate(zip(pending, batch)):
            if not entry.routed:
                # cache hit: prediction was already answered from the
                # cache; only the component answer is filled in
                entry.slot.components.local = local_pred
                continue
            is_short = local_pred.exec_time < cfg.short_circuit_seconds
            if cfg.route_on_interval_width:
                # calibrated-uncertainty variant of the "certain" half:
                # relative width of the nominal-confidence interval
                rel_width = local_pred.interval_width / (
                    1.0 + local_pred.exec_time
                )
                is_certain = rel_width < cfg.interval_width_threshold
            else:
                is_certain = local_pred.std < cfg.uncertainty_threshold
            if is_short or is_certain or stage.global_model is None:
                prediction = local_pred
            else:
                fallback.append(i)
                continue
            stage._count_routed(prediction)
            entry.slot.components = RoutedComponents(
                prediction=prediction,
                cache=None,
                local=local_pred,
                local_ready=True,
                local_generation=frozen.generation,
            )
        if fallback:
            predictions = self._global_many(
                [pending[i].record.plan for i in fallback]
            )
            for i, prediction in zip(fallback, predictions):
                stage._count_routed(prediction)
                pending[i].slot.components = RoutedComponents(
                    prediction=prediction,
                    cache=None,
                    local=batch[i],
                    local_ready=True,
                    local_generation=frozen.generation,
                )
