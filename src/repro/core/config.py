"""Configuration dataclasses for every Stage component.

Defaults follow the paper's hyper-parameters (Section 5.1): cache size
2,000 and alpha 0.8; local model = 10 GBMs x 200 estimators x depth 6
with a 20% early-stopping validation split; global model = directed GCN
with 8 conv layers (hidden width scaled down from 512 for CPU training).

``fast_profile()`` shrinks everything for tests and quick experiments;
``paper_profile()`` restores the published settings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

# ScenarioConfig lives with the workload layer it mutates (the fleet
# generator consumes it), but it is part of the configuration surface:
# re-exported here next to every other component config.
from repro.workload.scenario import ScenarioConfig

__all__ = [
    "CacheConfig",
    "ControlConfig",
    "ForecastConfig",
    "TrainingPoolConfig",
    "LocalModelConfig",
    "GatewayConfig",
    "GlobalModelConfig",
    "ReplayBackend",
    "ScenarioConfig",
    "ServiceConfig",
    "StageConfig",
    "WireConfig",
    "fast_profile",
    "paper_profile",
]


@dataclass(frozen=True)
class CacheConfig:
    """Exec-time cache settings (paper Section 4.2)."""

    capacity: int = 2000
    alpha: float = 0.8


@dataclass(frozen=True)
class TrainingPoolConfig:
    """Local training pool settings (paper Section 4.3).

    The pool is bounded, deduplicated against the cache, and partitioned
    into exec-time buckets with per-bucket caps to preserve duration
    diversity.
    """

    max_size: int = 2000
    #: (upper bound seconds, share of max_size); the paper's example
    #: buckets are 0-10s, 10-60s and 60s+
    bucket_shares: tuple = ((10.0, 0.6), (60.0, 0.25), (float("inf"), 0.15))


@dataclass(frozen=True)
class LocalModelConfig:
    """Bayesian GBM ensemble settings (paper Sections 4.3, 5.1)."""

    n_members: int = 10
    n_estimators: int = 200
    max_depth: int = 6
    learning_rate: float = 0.1
    validation_fraction: float = 0.2
    early_stopping_rounds: int = 10
    subsample: float = 0.8
    #: minimum pool size before the local model is considered usable
    min_train_size: int = 40
    #: retrain after this many new pool additions
    retrain_interval: int = 250


@dataclass(frozen=True)
class GlobalModelConfig:
    """Global GCN settings (paper Sections 4.4, 5.1)."""

    hidden_dim: int = 64
    n_conv_layers: int = 8
    dropout: float = 0.2
    epochs: int = 25
    batch_size: int = 64
    learning_rate: float = 1e-3
    weight_decay: float = 1e-5
    #: cap on training queries sampled from each training instance
    max_queries_per_instance: int = 400
    random_state: int = 0
    #: worker processes for dataset construction (dedup + subsample +
    #: graph featurization); 1 = inline, ``<=0`` = all cores.  Any value
    #: builds a bit-identical dataset (per-trace seeding + ordered
    #: moment merging make sharding invisible).  Used when calling
    #: ``GlobalModelTrainer`` directly; ``run_sweep`` overrides it with
    #: the sweep-wide ``SweepConfig.n_jobs``, which governs every
    #: parallel stage of a sweep.
    n_jobs: int = 1


@dataclass(frozen=True)
class ForecastConfig:
    """Workload-forecasting (:mod:`repro.forecast`) settings.

    The forecaster folds each instance's arrival stream onto a seasonal
    cycle of ``bucket_minutes``-wide time bins and tracks which cache
    keys recur per bin, then drives three proactive consumers: cache
    pre-warming (:class:`~repro.core.stage.StagePredictor` refreshes or
    restores forecast-hot entries at every bin boundary), retrain
    scheduling (warm local retrains wait for a forecast load trough),
    and forecast-driven rebalancing
    (``ControlConfig.load_source="forecast"``).

    Determinism: every forecast input is the op stream itself — arrival
    times and cache keys carried by the sequenced records, never
    wall-clock — so forecast state, and everything it triggers, is a
    pure function of each instance's op stream.  The bit-parity
    contract (any ``n_jobs``, any backend tier, fork or spawn) holds
    for every forecast-on path.  Offline fits subsample oversized
    histories with a ``derive_seed(instance_seed, "forecast", ...)``
    stream, like every other seeded stage.
    """

    #: width of one forecast time bin (minutes)
    bucket_minutes: float = 30.0
    #: seasonal fold period (days); daily cycles by default
    period_days: float = 1.0
    #: pre-warm budget: forecast-hot cache keys refreshed per bin
    top_templates: int = 16
    #: a key must recur at least this often to count as forecast-hot
    #: (one-shot ad-hoc queries are never worth pre-warming)
    min_key_count: int = 2
    #: a key is due when its predicted next arrival lands within this
    #: many bins of the bin being pre-warmed
    due_lookahead_bins: int = 2
    #: a key idle longer than this multiple of its mean inter-arrival
    #: gap (plus one bin of slack) is retired from the hot-key forecast
    alive_gap_multiple: float = 4.0
    #: pre-warm the cache at bin boundaries (touch + archive restore)
    prewarm: bool = True
    #: evicted-entry archive the pre-warmer may restore from (0 = keep
    #: the cache's default drop-on-evict behavior)
    archive_capacity: int = 512
    #: defer warm local retrains into forecast load troughs (the
    #: bootstrap train is never deferred); default-off so committed
    #: results cannot drift
    defer_retrains: bool = False
    #: a bin is a trough when its forecast rate is at most this
    #: fraction of the mean per-bin rate
    trough_fraction: float = 0.75
    #: a due retrain held this many bins runs even without a trough
    max_retrain_defer_bins: int = 8
    #: observations before trough calls are trusted (cold forecasters
    #: never defer)
    min_history: int = 20
    #: bins of lookahead summed into the rebalancer's forecast load
    horizon_bins: int = 4
    #: offline fits subsample histories larger than this (seeded)
    max_fit_events: int = 100_000
    #: distinct cache keys tracked before the mix forecaster prunes
    max_keys_tracked: int = 4096

    def __post_init__(self):
        if self.bucket_minutes <= 0:
            raise ValueError("bucket_minutes must be > 0")
        if self.period_days <= 0:
            raise ValueError("period_days must be > 0")
        if self.top_templates < 0:
            raise ValueError("top_templates must be >= 0")
        if self.min_key_count < 1:
            raise ValueError("min_key_count must be >= 1")
        if self.due_lookahead_bins < 1:
            raise ValueError("due_lookahead_bins must be >= 1")
        if self.alive_gap_multiple <= 0:
            raise ValueError("alive_gap_multiple must be > 0")
        if self.archive_capacity < 0:
            raise ValueError("archive_capacity must be >= 0")
        if not 0 <= self.trough_fraction <= 1:
            raise ValueError("trough_fraction must be in [0, 1]")
        if self.max_retrain_defer_bins < 1:
            raise ValueError("max_retrain_defer_bins must be >= 1")
        if self.min_history < 0:
            raise ValueError("min_history must be >= 0")
        if self.horizon_bins < 1:
            raise ValueError("horizon_bins must be >= 1")
        if self.max_fit_events < 1:
            raise ValueError("max_fit_events must be >= 1")
        if self.max_keys_tracked < 1:
            raise ValueError("max_keys_tracked must be >= 1")


@dataclass(frozen=True)
class StageConfig:
    """Routing thresholds and sub-model configs (paper Section 4.1)."""

    cache: CacheConfig = field(default_factory=CacheConfig)
    pool: TrainingPoolConfig = field(default_factory=TrainingPoolConfig)
    local: LocalModelConfig = field(default_factory=LocalModelConfig)
    #: local predictions below this many seconds are trusted outright
    #: ("short or certain" rule) — the paper trusts short predictions
    short_circuit_seconds: float = 2.0
    #: log-space std above which the local model counts as *uncertain*;
    #: at 1.5 the global model serves a few percent of queries, matching
    #: the paper's "rarely used (3% of the time)" operating point
    uncertainty_threshold: float = 1.5
    #: when True, the "certain" half of the short-or-certain rule uses
    #: the local prediction's calibrated interval instead of its raw
    #: std: a query is certain iff ``interval_width / (1 + exec_time)``
    #: is below ``interval_width_threshold``.  Default-off so committed
    #: results cannot drift; flip it to route on calibrated uncertainty.
    route_on_interval_width: bool = False
    #: relative-interval-width certainty threshold (only consulted when
    #: ``route_on_interval_width`` is set)
    interval_width_threshold: float = 2.0
    #: workload forecasting (:mod:`repro.forecast`): ``None`` (the
    #: default, so committed results cannot drift) disables it; a
    #: :class:`ForecastConfig` turns on per-instance forecasting and
    #: proactive cache pre-warming
    forecast: Optional[ForecastConfig] = None


@dataclass(frozen=True)
class ServiceConfig:
    """Online :class:`~repro.service.PredictionService` settings.

    The service collects concurrent ``predict`` calls into micro-batches:
    cache hits are answered immediately, while queries that need the
    local ensemble are deferred and served by one batched ensemble call
    once ``max_batch_size`` of them are pending or the sequenced op
    stream stalls with nothing left to pull.  ``max_batch_latency_ms``
    only bounds how long a batch may hold for a sequence gap with later
    ops already queued behind it.  Batch boundaries never change any
    prediction bit (the ensemble is frozen between retrains), so these
    are pure latency/throughput knobs.
    """

    #: deferred (model-bound) predictions served per batched model call
    max_batch_size: int = 32
    #: how long a batch may hold for a sequence gap to fill when later
    #: ops are already queued behind it (ms)
    max_batch_latency_ms: float = 2.0
    #: also compute local-ensemble answers for cache hits (component
    #: collection, used by the replay harness's ``via_service`` mode)
    collect_components: bool = False
    #: default timeout for :meth:`PredictionService.drain` (seconds)
    drain_timeout_s: float = 120.0
    #: defer warm local retrains (and ANALYZE-style maintenance, via
    #: :meth:`PredictionService.maintenance_window`) into forecast load
    #: troughs.  Requires a forecast-enabled ``StageConfig``
    #: (``StageConfig.forecast``); default-off so committed results
    #: cannot drift
    defer_retrains_to_troughs: bool = False

    def __post_init__(self):
        if self.max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if self.max_batch_latency_ms < 0:
            raise ValueError("max_batch_latency_ms must be >= 0")
        if self.drain_timeout_s <= 0:
            raise ValueError("drain_timeout_s must be > 0")


@dataclass(frozen=True)
class GatewayConfig:
    """Fleet-gateway (:class:`~repro.service.FleetGateway`) settings.

    The gateway shards many per-instance services across ``n_shards``
    worker processes.  Shard assignment is a pure function of the
    instance id, and the determinism contract makes every knob here a
    pure capacity/latency dial: results depend only on each instance's
    sequenced op stream — never on shard count, queue bounds, client
    threading or enqueue timing.
    """

    #: shard worker processes; each owns its instances' predictor state
    n_shards: int = 2
    #: bound of each shard's request queue — the backpressure budget
    queue_size: int = 256
    #: how long an enqueue may wait on a full shard queue before raising
    enqueue_timeout_s: float = 30.0
    #: default timeout for whole-fleet drain/close/snapshot barriers
    drain_timeout_s: float = 120.0
    #: how long :meth:`~repro.service.FleetGateway.close` may wait to
    #: hand each live shard its shutdown op before giving up and
    #: terminating it.  Always bounded by the close deadline as well:
    #: the effective per-shard budget is
    #: ``min(shutdown_enqueue_timeout_s, time left before the deadline)``
    shutdown_enqueue_timeout_s: float = 1.0
    #: machine-readable retry hint carried by
    #: :class:`~repro.service.GatewayBackpressureError` (and surfaced in
    #: the wire protocol's RETRY_AFTER frames) when a shard queue sheds
    #: an op — how long a well-behaved client should back off
    retry_after_s: float = 0.5
    #: per-instance micro-batching knobs, forwarded to every shard's
    #: :class:`~repro.service.PredictionService` instances
    service: ServiceConfig = field(default_factory=ServiceConfig)

    def __post_init__(self):
        if self.n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        if self.queue_size < 1:
            raise ValueError("queue_size must be >= 1")
        if self.enqueue_timeout_s <= 0:
            raise ValueError("enqueue_timeout_s must be > 0")
        if self.drain_timeout_s <= 0:
            raise ValueError("drain_timeout_s must be > 0")
        if self.shutdown_enqueue_timeout_s <= 0:
            raise ValueError("shutdown_enqueue_timeout_s must be > 0")
        if self.retry_after_s <= 0:
            raise ValueError("retry_after_s must be > 0")


@dataclass(frozen=True)
class WireConfig:
    """Wire front-door (:class:`~repro.service.WireServer`) settings.

    The wire layer is an asyncio TCP server speaking a length-prefixed
    binary frame protocol in front of a
    :class:`~repro.service.FleetGateway`.  Sequence numbers are assigned
    at session ingress (frame arrival order), so the determinism
    contract extends over the socket and every knob here is a pure
    capacity/robustness dial — none affects a prediction bit.
    """

    host: str = "127.0.0.1"
    #: TCP port to bind; 0 binds an ephemeral port (the bound address is
    #: returned by ``WireServer.start()``)
    port: int = 0
    #: a session with no inbound frame for this long is closed — unless
    #: it still has ops in flight (a client waiting on responses is
    #: never idle)
    idle_timeout_s: float = 300.0
    #: hard cap on a single frame body; oversized length prefixes are
    #: rejected with a structured error before any allocation
    max_frame_bytes: int = 64 * 1024 * 1024
    #: worker threads that perform gateway submissions, so a
    #: backpressure-blocked enqueue never stalls the event loop
    submit_workers: int = 8
    #: a session whose socket send buffer stays full for this long (a
    #: client that stopped reading its responses) is reaped: it gets a
    #: best-effort structured rid-0 ERROR frame and a hard disconnect,
    #: so one slow reader can never wedge the server's write path
    write_timeout_s: float = 30.0

    def __post_init__(self):
        if not self.host:
            raise ValueError("host must be non-empty")
        if not 0 <= self.port <= 65535:
            raise ValueError("port must be in [0, 65535]")
        if self.idle_timeout_s <= 0:
            raise ValueError("idle_timeout_s must be > 0")
        if self.max_frame_bytes < 1024:
            raise ValueError("max_frame_bytes must be >= 1024")
        if self.submit_workers < 1:
            raise ValueError("submit_workers must be >= 1")
        if self.write_timeout_s <= 0:
            raise ValueError("write_timeout_s must be > 0")


@dataclass(frozen=True)
class ControlConfig:
    """Fleet control-plane (:class:`~repro.service.FleetController`)
    settings.

    The controller watches :meth:`~repro.service.FleetGateway.stats`
    (per-shard live queue depth plus cumulative per-instance op totals)
    and plans instance migrations that even out shard load.  Because a
    migration only moves *where* an instance's sequenced op stream
    executes — never the stream itself — every knob here is a pure
    placement/latency dial: no plan changes a prediction bit.
    """

    #: a shard pair is balanced when the load gap between the hottest
    #: and coldest shard is within this fraction of the mean shard load
    imbalance_tolerance: float = 0.25
    #: migrations planned (and executed) per control cycle
    max_migrations_per_cycle: int = 1
    #: seconds between control cycles of the background watcher
    cycle_interval_s: float = 5.0
    #: do nothing until the fleet has seen at least this many ops —
    #: avoids thrashing on an idle or barely-warm fleet
    min_total_ops: int = 1
    #: live queue depth counts this many op-units of load per queued op
    #: (queued work is *current* pressure; cumulative totals are history)
    queue_depth_weight: float = 10.0
    #: per-migration timeout handed to
    #: :meth:`~repro.service.FleetGateway.migrate_instance`
    migration_timeout_s: float = 120.0
    #: per-instance load signal the planner balances on:
    #: ``"trailing"`` — cumulative op totals (history); ``"forecast"`` —
    #: each instance's forecast near-term load (``forecast_load`` in its
    #: stage stats), falling back to trailing totals when no instance
    #: reports a forecast (forecasting off or still cold)
    load_source: str = "trailing"

    def __post_init__(self):
        if self.load_source not in ("trailing", "forecast"):
            raise ValueError(
                f'load_source must be "trailing" or "forecast", got {self.load_source!r}'
            )
        if self.imbalance_tolerance < 0:
            raise ValueError("imbalance_tolerance must be >= 0")
        if self.max_migrations_per_cycle < 1:
            raise ValueError("max_migrations_per_cycle must be >= 1")
        if self.cycle_interval_s <= 0:
            raise ValueError("cycle_interval_s must be > 0")
        if self.min_total_ops < 0:
            raise ValueError("min_total_ops must be >= 0")
        if self.queue_depth_weight < 0:
            raise ValueError("queue_depth_weight must be >= 0")
        if self.migration_timeout_s <= 0:
            raise ValueError("migration_timeout_s must be > 0")


#: serving tiers a replay can route through (``ReplayBackend.mode``)
_REPLAY_MODES = ("direct", "service", "gateway", "socket")


@dataclass(frozen=True)
class ReplayBackend:
    """Which serving tier a replay routes through, with its knobs.

    One picklable value replaces the ``via_service`` / ``via_gateway`` /
    ``via_socket`` booleans and their per-tier config kwargs that used
    to accumulate on every replay signature.  The determinism contract
    makes the choice invisible in results: every mode replays the same
    sequenced op stream, so arrays and accounting are bit-identical
    across modes (and the parity suites assert exactly that).
    """

    #: one of ``"direct"`` (in-process, no service layer),
    #: ``"service"`` (micro-batching :class:`PredictionService`),
    #: ``"gateway"`` (multi-process :class:`FleetGateway`) or
    #: ``"socket"`` (TCP :class:`WireServer` front door)
    mode: str = "direct"
    #: concurrent replay clients per instance (ignored by ``direct``)
    clients: int = 1
    #: micro-batching knobs (``service`` mode; also reachable through
    #: ``gateway.service`` for the sharded modes)
    service: ServiceConfig = field(default_factory=ServiceConfig)
    #: fleet sharding knobs (``gateway`` and ``socket`` modes)
    gateway: GatewayConfig = field(default_factory=GatewayConfig)
    #: TCP front-door knobs (``socket`` mode)
    wire: WireConfig = field(default_factory=WireConfig)

    def __post_init__(self):
        if self.mode not in _REPLAY_MODES:
            raise ValueError(
                f"mode must be one of {_REPLAY_MODES}, got {self.mode!r}"
            )
        if self.clients < 1:
            raise ValueError("clients must be >= 1")


def fast_profile() -> StageConfig:
    """Small models for unit tests and quick experiments."""
    return StageConfig(
        cache=CacheConfig(capacity=500),
        pool=TrainingPoolConfig(max_size=600),
        local=LocalModelConfig(
            n_members=4,
            n_estimators=30,
            max_depth=3,
            min_train_size=30,
            retrain_interval=150,
        ),
    )


def paper_profile() -> StageConfig:
    """The published hyper-parameters (slow on CPU; for completeness)."""
    return StageConfig()
