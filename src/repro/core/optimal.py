"""The oracle predictor: feeds the true exec-time to downstream tasks.

Used in the end-to-end evaluation (paper Figure 6/7) as the upper bound
"Optimal": the workload manager is given the observed execution time of
every query, representing the best any exec-time predictor could do.
"""

from __future__ import annotations

from repro.workload.query import QueryRecord

from .interfaces import Prediction, PredictionSource, Predictor

__all__ = ["OptimalPredictor"]


class OptimalPredictor(Predictor):
    """Returns the query's actual execution time (evaluation-only)."""

    name = "optimal"

    def predict(self, record: QueryRecord) -> Prediction:
        return Prediction(
            exec_time=record.exec_time,
            variance=0.0,
            source=PredictionSource.OPTIMAL,
        )

    def observe(self, record: QueryRecord) -> None:  # nothing to learn
        return None
