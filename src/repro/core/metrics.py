"""Accuracy and uncertainty-quality metrics from the paper's evaluation.

- absolute error: MAE, P50-AE, P90-AE (Tables 1, 3-6, Figure 8);
- Q-error: ``max(pred/true, true/pred)`` (Table 2, Moerkotte et al.);
- bucketed breakdowns over the paper's exec-time ranges;
- PRR (prediction-rejection ratio): rank agreement between predicted
  uncertainty and realized error (Figures 10-11, Malinin et al.).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.workload.trace import EXEC_TIME_BUCKETS

__all__ = [
    "absolute_errors",
    "q_errors",
    "ErrorSummary",
    "summarize_errors",
    "bucketed_summary",
    "prr_score",
    "prr_curves",
]


def absolute_errors(true, pred) -> np.ndarray:
    """``|true - pred|`` elementwise (seconds)."""
    true = np.asarray(true, dtype=np.float64)
    pred = np.asarray(pred, dtype=np.float64)
    if true.shape != pred.shape:
        raise ValueError("true and pred must have the same shape")
    return np.abs(true - pred)


def q_errors(true, pred, floor: float = 1e-3) -> np.ndarray:
    """Q-error: ``max(pred/true, true/pred)``, both floored at ``floor``.

    The floor (1 ms by default) prevents sub-millisecond noise from
    producing astronomical ratios; the minimum possible value is 1.
    """
    true = np.maximum(np.asarray(true, dtype=np.float64), floor)
    pred = np.maximum(np.asarray(pred, dtype=np.float64), floor)
    return np.maximum(pred / true, true / pred)


@dataclass
class ErrorSummary:
    """Mean / median / 90th-percentile of an error vector."""

    n: int
    mean: float
    p50: float
    p90: float

    @classmethod
    def from_errors(cls, errors: np.ndarray) -> "ErrorSummary":
        errors = np.asarray(errors, dtype=np.float64)
        if errors.size == 0:
            return cls(n=0, mean=float("nan"), p50=float("nan"), p90=float("nan"))
        return cls(
            n=int(errors.size),
            mean=float(np.mean(errors)),
            p50=float(np.percentile(errors, 50)),
            p90=float(np.percentile(errors, 90)),
        )


def summarize_errors(true, pred, metric: str = "absolute") -> ErrorSummary:
    """Summary of absolute or Q-error between ``true`` and ``pred``."""
    if metric == "absolute":
        return ErrorSummary.from_errors(absolute_errors(true, pred))
    if metric == "q":
        return ErrorSummary.from_errors(q_errors(true, pred))
    raise ValueError(f"unknown metric {metric!r}")


def bucketed_summary(true, pred, metric: str = "absolute") -> Dict[str, ErrorSummary]:
    """Per-exec-time-bucket summaries plus an ``Overall`` row.

    Buckets are keyed by the *true* exec-time, as in the paper's tables.
    """
    true = np.asarray(true, dtype=np.float64)
    pred = np.asarray(pred, dtype=np.float64)
    out = {"Overall": summarize_errors(true, pred, metric)}
    for lo, hi, label in EXEC_TIME_BUCKETS:
        mask = (true >= lo) & (true < hi)
        out[label] = summarize_errors(true[mask], pred[mask], metric)
    return out


# ---------------------------------------------------------------------------
# Prediction-rejection ratio (PRR)
# ---------------------------------------------------------------------------
def _cumulative_error_curve(errors: np.ndarray, order: np.ndarray) -> np.ndarray:
    """Cumulative error fraction after rejecting queries in ``order``."""
    total = errors.sum()
    if total <= 0:
        return np.linspace(0, 1, errors.size + 1)
    curve = np.concatenate([[0.0], np.cumsum(errors[order]) / total])
    return curve


def prr_curves(errors, uncertainties):
    """``(fractions, oracle, by_uncertainty, random)`` curves (Figure 10).

    Each curve gives the fraction of total absolute error covered after
    rejecting the first ``k`` queries under the respective ranking.
    """
    errors = np.asarray(errors, dtype=np.float64)
    uncertainties = np.asarray(uncertainties, dtype=np.float64)
    if errors.shape != uncertainties.shape:
        raise ValueError("errors and uncertainties must have the same shape")
    if errors.size == 0:
        raise ValueError("PRR needs at least one sample")
    n = errors.size
    fractions = np.linspace(0, 1, n + 1)
    oracle = _cumulative_error_curve(errors, np.argsort(-errors))
    by_unc = _cumulative_error_curve(errors, np.argsort(-uncertainties))
    random = fractions.copy()
    return fractions, oracle, by_unc, random


def prr_score(errors, uncertainties) -> float:
    """AUC ratio between the uncertainty ranking and the oracle ranking.

    1.0 means uncertainty ranks errors perfectly; 0.0 means it is no
    better than random; negative values mean anti-correlation.
    """
    fractions, oracle, by_unc, random = prr_curves(errors, uncertainties)
    auc_oracle = np.trapezoid(oracle - random, fractions)
    auc_unc = np.trapezoid(by_unc - random, fractions)
    if auc_oracle <= 1e-12:
        return 0.0
    return float(auc_unc / auc_oracle)
