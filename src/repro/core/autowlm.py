"""The AutoWLM predictor: Redshift's prior exec-time model (baseline).

Per the paper (Sections 2.1, 5.1): a single lightweight gradient-boosted
tree model per instance, trained online on the instance's executed
queries with an absolute-error loss, producing point estimates with no
real uncertainty.  Identical tree hyper-parameters to the Stage local
model's members — the only differences are (1) one model instead of ten
and (2) L1 loss instead of the Gaussian log-likelihood.

Unlike the Stage pool, the AutoWLM training set is *not* deduplicated
against a cache and not duration-bucketed: it keeps the most recent
executions, repeats and all — one of the weaknesses Stage fixes.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.ml.gbm import GradientBoostingModel
from repro.ml.preprocessing import LogTargetTransform
from repro.workload.query import QueryRecord

from .config import LocalModelConfig
from .interfaces import Prediction, PredictionSource, Predictor, RunningMedian

__all__ = ["AutoWLMPredictor"]


class AutoWLMPredictor(Predictor):
    """Single-GBM baseline with a naive recent-history training set."""

    name = "autowlm"

    def __init__(
        self,
        config: LocalModelConfig | None = None,
        history_size: int = 2000,
        random_state: int = 0,
    ):
        self.config = config or LocalModelConfig()
        self.history = deque(maxlen=history_size)
        self.random_state = random_state
        self.transform = LogTargetTransform()
        self._model = None
        self._default = RunningMedian()
        self._samples_since_train = 0
        self.n_retrains = 0

    # ------------------------------------------------------------------
    def predict(self, record: QueryRecord) -> Prediction:
        if self._model is None:
            return Prediction(
                exec_time=self._default.value,
                source=PredictionSource.DEFAULT,
            )
        log_pred = self._model.predict(record.features[None, :])[0]
        return Prediction(
            exec_time=float(self.transform.inverse(np.array([log_pred]))[0]),
            source=PredictionSource.AUTOWLM,
        )

    def observe(self, record: QueryRecord) -> None:
        self.history.append((record.features, record.exec_time))
        self._default.update(record.exec_time)
        self._samples_since_train += 1
        cfg = self.config
        if len(self.history) < cfg.min_train_size:
            return
        if self._model is None or self._samples_since_train >= cfg.retrain_interval:
            self.retrain()

    def retrain(self) -> None:
        X = np.vstack([f for f, _ in self.history])
        y = np.array([t for _, t in self.history])
        cfg = self.config
        model = GradientBoostingModel(
            objective="absolute_error",
            n_estimators=cfg.n_estimators,
            max_depth=cfg.max_depth,
            learning_rate=cfg.learning_rate,
            validation_fraction=cfg.validation_fraction,
            early_stopping_rounds=cfg.early_stopping_rounds,
            random_state=self.random_state + self.n_retrains,
        )
        model.fit(X, self.transform.transform(y))
        self._model = model
        self._samples_since_train = 0
        self.n_retrains += 1

    def byte_size(self) -> int:
        return 0 if self._model is None else self._model.byte_size()
