"""Core predictors: Stage, AutoWLM baseline, oracle, metrics, configs."""

from .interfaces import Prediction, PredictionSource, Predictor, RunningMedian
from .config import (
    CacheConfig,
    GlobalModelConfig,
    LocalModelConfig,
    ServiceConfig,
    StageConfig,
    TrainingPoolConfig,
    fast_profile,
    paper_profile,
)
from .metrics import (
    ErrorSummary,
    absolute_errors,
    bucketed_summary,
    prr_curves,
    prr_score,
    q_errors,
    summarize_errors,
)
from .autowlm import AutoWLMPredictor
from .optimal import OptimalPredictor
from .stage import BatchRouter, RoutedComponents, RoutedSlot, StagePredictor

__all__ = [
    "Prediction",
    "PredictionSource",
    "Predictor",
    "RunningMedian",
    "CacheConfig",
    "TrainingPoolConfig",
    "LocalModelConfig",
    "GlobalModelConfig",
    "ServiceConfig",
    "StageConfig",
    "fast_profile",
    "paper_profile",
    "ErrorSummary",
    "absolute_errors",
    "q_errors",
    "summarize_errors",
    "bucketed_summary",
    "prr_score",
    "prr_curves",
    "AutoWLMPredictor",
    "OptimalPredictor",
    "BatchRouter",
    "RoutedComponents",
    "RoutedSlot",
    "StagePredictor",
]
