"""Predictor interfaces shared by Stage, AutoWLM and the oracle.

Every exec-time predictor follows the online protocol of the paper's
deployment: for each arriving query it must :meth:`~Predictor.predict`
*before* seeing the outcome, and is then shown the observed execution
time via :meth:`~Predictor.observe`.  The replay harness enforces this
ordering, so no predictor can leak future information.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional

from repro.workload.query import QueryRecord

__all__ = ["PredictionSource", "Prediction", "Predictor", "RunningMedian"]


class PredictionSource:
    """Which stage of the hierarchy produced a prediction."""

    CACHE = "cache"
    LOCAL = "local"
    GLOBAL = "global"
    AUTOWLM = "autowlm"
    OPTIMAL = "optimal"
    DEFAULT = "default"  # cold start, before any model is trainable


@dataclass
class Prediction:
    """One exec-time prediction with its confidence information.

    Attributes
    ----------
    exec_time:
        Predicted execution time in seconds.
    variance:
        Prediction variance in *log space* (the models regress
        ``log1p(seconds)``); 0 for point predictors.  Downstream code uses
        it as a relative confidence measure, mirroring the paper's
        uncertainty-based routing.
    source:
        Which model produced the estimate (:class:`PredictionSource`).
    model_uncertainty / data_uncertainty:
        The decomposition of ``variance`` for ensemble predictions.
    interval_low / interval_high:
        The source's calibrated interval at the pipeline-wide nominal
        confidence (:data:`repro.ml.intervals.NOMINAL_CONFIDENCE`), in
        seconds: Welford-derived for cache hits, member-spread quantile
        bounds for the local ensemble, residual-variance for the global
        model.  Sources without spread information collapse to the point
        estimate (unset bounds default to ``exec_time``).  Carried
        end-to-end — replay arrays, service futures and gateway
        responses all preserve the pair bit-for-bit.
    """

    exec_time: float
    variance: float = 0.0
    source: str = PredictionSource.DEFAULT
    model_uncertainty: float = 0.0
    data_uncertainty: float = 0.0
    interval_low: Optional[float] = None
    interval_high: Optional[float] = None

    def __post_init__(self):
        if self.interval_low is None:
            self.interval_low = self.exec_time
        if self.interval_high is None:
            self.interval_high = self.exec_time

    @property
    def std(self) -> float:
        return self.variance**0.5

    @property
    def interval_width(self) -> float:
        """Width of the nominal-confidence interval, in seconds."""
        return self.interval_high - self.interval_low

    def interval(self, confidence: float = 0.9) -> tuple:
        """Confidence interval for the exec-time, in seconds.

        The paper motivates intervals for downstream tasks (automatic
        materialized views, cluster scaling need "a confidence interval
        to ensure good worst-case behavior", Section 2.1).  Models here
        regress ``log1p(seconds)`` with Gaussian uncertainty, so the
        interval is lognormal: ``expm1(mu +- z * sigma)``.  Point
        predictions (zero variance) collapse to the estimate itself.
        """
        if not 0.0 < confidence < 1.0:
            raise ValueError("confidence must be in (0, 1)")
        if self.variance <= 0.0:
            return (self.exec_time, self.exec_time)
        from scipy.stats import norm

        import numpy as np

        z = float(norm.ppf(0.5 + confidence / 2.0))
        mu = np.log1p(max(self.exec_time, 0.0))
        spread = z * self.std
        low = float(np.expm1(max(mu - spread, 0.0)))
        high = float(np.expm1(min(mu + spread, 50.0)))
        return (low, high)


class Predictor(abc.ABC):
    """Online exec-time predictor protocol."""

    #: short name used in reports
    name: str = "predictor"

    @abc.abstractmethod
    def predict(self, record: QueryRecord) -> Prediction:
        """Predict the exec-time of ``record`` before it executes."""

    @abc.abstractmethod
    def observe(self, record: QueryRecord) -> None:
        """Feed back the observed execution time after the query ran."""

    def byte_size(self) -> int:
        """Approximate in-memory footprint (bytes); 0 if unknown."""
        return 0


class RunningMedian:
    """Streaming median estimate for the cold-start default prediction.

    Uses the P² -style stochastic approximation: cheap, O(1) memory, and
    good enough for "we have seen almost nothing yet" defaults.
    """

    def __init__(self, initial: float = 1.0, step: float = 0.05):
        self.value = float(initial)
        self.step = step
        self.count = 0

    def update(self, x: float) -> None:
        self.count += 1
        if self.count == 1:
            self.value = float(x)
            return
        delta = self.step * max(abs(self.value), 1e-3)
        if x > self.value:
            self.value += delta
        elif x < self.value:
            self.value -= delta
