"""One runner per paper table/figure.

Each benchmark under ``benchmarks/`` exercises one runner and writes its
rendered output to ``results/`` — those two directories are the
per-experiment index.

The heart is :func:`run_sweep`: train a global model on a training fleet,
then replay every evaluation instance through Stage and AutoWLM.  All
accuracy tables, the WLM end-to-end comparison and the PRR analysis are
pure post-processing over the sweep's :class:`InstanceReplay` arrays.
Trace generation, global-model dataset construction (sharded
:class:`~repro.global_model.trainer.GlobalModelTrainer`) and replays
(:class:`~repro.harness.parallel.FleetSweeper`, which ships the global
model to each worker once via the pool initializer) all fan out over
process pools when ``n_jobs > 1``; results are bit-identical to the
sequential path for any ``n_jobs``.

Every replay is uncertainty-aware: alongside the point arrays,
:class:`InstanceReplay` carries calibrated interval bounds per source
(``stage_interval_low/high`` plus per-component cache/local/global
columns — Welford intervals for cache hits, member-spread quantile
bounds for the ensemble, a residual-variance head for the global
model), all under the same bit-parity contract as the points.  The
empirical coverage of those intervals is scored by
``python -m repro.scenarios calibration``
(``results/calibration_scorecard.txt``).

The serving-side twin of this offline harness is ``repro.service``:
``replay_instance(via_service=True)`` replays an instance *through* the
online :class:`~repro.service.PredictionService` (micro-batch scheduler
and all) with bit-identical results, and ``python -m repro.service``
benchmarks that serving layer.

Run everything and print paper-style tables with::

    python -m repro.harness.experiments [--scale small|medium]
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.core.config import (
    GlobalModelConfig,
    StageConfig,
    fast_profile,
)
from repro.core.metrics import (
    absolute_errors,
    bucketed_summary,
    prr_curves,
    prr_score,
)
from repro.global_model.model import GlobalModel
from repro.global_model.trainer import GlobalModelTrainer
from repro.wlm.simulator import WLMConfig, simulate_wlm
from repro.workload.fleet import FleetConfig, FleetGenerator
from repro.workload.trace import (
    bucket_counts,
    fleet_exec_times,
    fleet_unique_daily_fractions,
)

from .parallel import FleetSweeper
from .replay import InstanceReplay
from .reporting import improvement, render_comparison_table, render_simple_table

__all__ = [
    "SweepConfig",
    "SweepResult",
    "run_sweep",
    "fleet_statistics",
    "end_to_end_comparison",
    "accuracy_table",
    "component_table",
    "prr_analysis",
    "inference_cost",
]


# ---------------------------------------------------------------------------
# the shared sweep
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class SweepConfig:
    """Scale knobs for one full evaluation sweep."""

    seed: int = 0
    n_eval_instances: int = 12
    n_train_instances: int = 8
    duration_days: float = 2.0
    volume_scale: float = 0.25
    stage: StageConfig = field(default_factory=fast_profile)
    global_model: GlobalModelConfig = field(
        default_factory=lambda: GlobalModelConfig(
            hidden_dim=48, n_conv_layers=4, epochs=15, max_queries_per_instance=250
        )
    )
    use_global: bool = True
    #: record every component's answer on every query (ablation tables)
    collect_components: bool = True
    #: how component-mode local answers are obtained ("batched" reuses
    #: the router + one ensemble call per retrain window; "per_query" is
    #: the bit-identical reference path)
    component_inference: str = "batched"
    #: worker processes for trace generation, global-model dataset
    #: construction and replay; 1 = sequential/inline, ``<=0`` = all cores
    n_jobs: int = 1


@dataclass
class SweepResult:
    """Everything downstream experiments need."""

    config: SweepConfig
    replays: List[InstanceReplay]
    global_model: Optional[GlobalModel]
    train_seconds: float
    replay_seconds: float

    # ------------------------------------------------------------------
    def pooled(self, attr: str) -> np.ndarray:
        """Concatenate one array attribute across all instance replays."""
        return np.concatenate([getattr(r, attr) for r in self.replays])

    def pooled_mask(self, mask_attr: str) -> np.ndarray:
        return np.concatenate([getattr(r, mask_attr) for r in self.replays])


def run_sweep(
    config: SweepConfig | None = None,
    verbose: bool = False,
    n_jobs: int | None = None,
) -> SweepResult:
    """Train the global model, then replay the evaluation fleet.

    ``n_jobs`` overrides ``config.n_jobs`` when given; any value yields
    arrays bit-identical to the sequential (``n_jobs=1``) path.
    """
    config = config or SweepConfig()
    if n_jobs is None:
        n_jobs = config.n_jobs
    fleet_cfg = FleetConfig(seed=config.seed, volume_scale=config.volume_scale)
    gen = FleetGenerator(fleet_cfg)

    global_model = None
    train_seconds = 0.0
    if config.use_global and config.n_train_instances > 0:
        # Training instances are disjoint from evaluation instances
        # (offset index range), as in the paper's Section 5.1.
        train_traces = gen.generate_fleet_traces(
            config.n_train_instances,
            config.duration_days,
            start_index=10_000,
            n_jobs=n_jobs,
        )
        t0 = time.time()
        global_model = GlobalModelTrainer(config.global_model).train(train_traces, n_jobs=n_jobs)
        train_seconds = time.time() - t0
        if verbose:
            n = sum(len(t) for t in train_traces)
            print(f"global model trained on {n} queries in {train_seconds:.1f}s")

    sweeper = FleetSweeper(
        fleet_config=fleet_cfg,
        stage_config=config.stage,
        global_model=global_model,
        random_state=config.seed,
        collect_components=config.collect_components,
        component_inference=config.component_inference,
        n_jobs=n_jobs,
    )
    t0 = time.time()
    replays = sweeper.replay_indices(range(config.n_eval_instances), config.duration_days)
    replay_seconds = time.time() - t0
    if verbose:
        for replay in replays:
            print(
                f"replayed {replay.instance_id}: {len(replay)} queries, "
                f"hit rate {replay.stage_stats['cache_hit_rate']:.2f}"
            )
    return SweepResult(
        config=config,
        replays=replays,
        global_model=global_model,
        train_seconds=train_seconds,
        replay_seconds=replay_seconds,
    )


# ---------------------------------------------------------------------------
# Figure 1: fleet statistics
# ---------------------------------------------------------------------------
def fleet_statistics(
    n_instances: int = 40,
    duration_days: float = 2.0,
    volume_scale: float = 0.25,
    seed: int = 0,
) -> Dict[str, object]:
    """Reproduce Figure 1a/1b statistics on a synthetic fleet."""
    gen = FleetGenerator(FleetConfig(seed=seed, volume_scale=volume_scale))
    traces = gen.generate_fleet_traces(n_instances, duration_days)
    unique_fractions = fleet_unique_daily_fractions(traces)
    exec_times = fleet_exec_times(traces)
    weights = np.array([len(t) for t in traces], dtype=np.float64)
    repeat_fraction = float(((1 - unique_fractions) * weights).sum() / weights.sum())
    return {
        "unique_fractions": unique_fractions,
        "exec_times": exec_times,
        "clusters_over_50pct_unique": float(np.mean(unique_fractions > 0.5)),
        "clusters_fully_unique": float(np.mean(unique_fractions > 0.95)),
        "fleet_repeat_fraction": repeat_fraction,
        "fraction_under_100ms": float(np.mean(exec_times < 0.1)),
        "bucket_counts": bucket_counts(exec_times),
        "latency_percentiles_ms": {
            p: float(np.percentile(exec_times * 1000, p))
            for p in (1, 25, 50, 75, 90, 99, 99.9)
        },
    }


# ---------------------------------------------------------------------------
# Figures 6 & 7: end-to-end WLM latency
# ---------------------------------------------------------------------------
def _compress_arrivals(
    arrival: np.ndarray,
    exec_times: np.ndarray,
    n_slots: int,
    target_utilization: float,
) -> np.ndarray:
    """Time-compress a trace so the cluster runs at a target utilization.

    The paper evaluates the top-100 *most-billed* (busiest) instances,
    where queueing is the norm; the synthetic fleet spans all activity
    levels.  Compressing arrival times (same queries, same exec-times,
    shorter wall-clock window) emulates a busy cluster without changing
    the prediction problem.
    """
    horizon = float(arrival.max() - arrival.min()) + 1.0
    utilization = float(exec_times.sum()) / (horizon * n_slots)
    if utilization <= 0:
        return arrival
    factor = max(1.0, target_utilization / utilization)
    start = float(arrival.min())
    return start + (arrival - start) / factor


def end_to_end_comparison(
    sweep: SweepResult,
    wlm_config: WLMConfig | None = None,
    target_utilization: float = 0.4,
) -> Dict[str, object]:
    """Simulate the WLM under Stage / AutoWLM / Optimal predictions.

    Returns pooled latency aggregates (Figure 6) and the per-instance
    mean-latency improvements over AutoWLM (Figure 7).  Arrivals are
    compressed per instance to ``target_utilization`` (see
    :func:`_compress_arrivals`); pass ``0`` to disable.
    """
    wlm_config = wlm_config or WLMConfig()
    pooled = {"stage": [], "autowlm": [], "optimal": []}
    per_instance = []
    for replay in sweep.replays:
        arrival = replay.arrival
        if target_utilization > 0:
            arrival = _compress_arrivals(
                arrival,
                replay.true,
                wlm_config.short_slots + wlm_config.long_slots,
                target_utilization,
            )
        runs = {}
        for name, preds in (
            ("stage", replay.stage_pred),
            ("autowlm", replay.autowlm_pred),
            ("optimal", replay.true),
        ):
            sim = simulate_wlm(arrival, replay.true, preds, wlm_config)
            runs[name] = sim.latencies()
            pooled[name].append(runs[name])
        per_instance.append(
            {
                "instance_id": replay.instance_id,
                "stage_improvement": improvement(
                    runs["stage"].mean(), runs["autowlm"].mean()
                ),
                "optimal_improvement": improvement(
                    runs["optimal"].mean(), runs["autowlm"].mean()
                ),
            }
        )

    pooled = {k: np.concatenate(v) for k, v in pooled.items()}
    aggregates = {}
    for name, lat in pooled.items():
        aggregates[name] = {
            "mean": float(lat.mean()),
            "median": float(np.percentile(lat, 50)),
            "p90": float(np.percentile(lat, 90)),
        }
    improvements = {
        name: {
            stat: improvement(aggregates[name][stat], aggregates["autowlm"][stat])
            for stat in ("mean", "median", "p90")
        }
        for name in ("stage", "optimal")
    }
    per_instance.sort(key=lambda d: d["optimal_improvement"])
    return {
        "aggregates": aggregates,
        "improvements": improvements,
        "per_instance": per_instance,
        "fraction_instances_regressed": float(
            np.mean([d["stage_improvement"] < 0 for d in per_instance])
        ),
    }


# ---------------------------------------------------------------------------
# Tables 1-2 and Figure 8: Stage vs AutoWLM accuracy
# ---------------------------------------------------------------------------
def accuracy_table(sweep: SweepResult, metric: str = "absolute") -> str:
    """Paper Table 1 (absolute error) or Table 2 (Q-error)."""
    true = sweep.pooled("true")
    left = bucketed_summary(true, sweep.pooled("stage_pred"), metric)
    right = bucketed_summary(true, sweep.pooled("autowlm_pred"), metric)
    label = "AE" if metric == "absolute" else "QE"
    number = "Table 1" if metric == "absolute" else "Table 2"
    return render_comparison_table(
        f"{number}: prediction accuracy "
        f"({'absolute error, s' if metric == 'absolute' else 'Q-error'})",
        "Stage",
        left,
        "AutoWLM",
        right,
        metric=label,
    )


# ---------------------------------------------------------------------------
# Tables 3-6: component ablations
# ---------------------------------------------------------------------------
_COMPONENT_TABLES = {
    # name: (mask builder, left column, right column, title)
    "table3": (
        "cache_hit_mask",
        "cache_pred",
        "autowlm_pred",
        "Table 3: exec-time cache vs AutoWLM on cache hits",
    ),
    "table4": (
        "local_miss_mask",
        "local_pred",
        "autowlm_pred",
        "Table 4: local model vs AutoWLM on cache misses",
    ),
    "table5": (
        "local_miss_mask",
        "global_pred",
        "local_pred",
        "Table 5: global vs local on cache misses",
    ),
    "table6": (
        "uncertain_mask",
        "global_pred",
        "local_pred",
        "Table 6: global vs local on *uncertain* queries",
    ),
}


def _component_mask(replay: InstanceReplay, which: str) -> np.ndarray:
    if which == "cache_hit_mask":
        return replay.cache_hit_mask
    if which == "local_miss_mask":
        return replay.cache_miss_mask & replay.local_ready_mask & replay.global_available_mask
    if which == "uncertain_mask":
        return replay.uncertain & replay.global_available_mask
    raise ValueError(which)


def component_table(sweep: SweepResult, table: str, metric: str = "absolute") -> str:
    """Render one of the ablation tables (``table3`` .. ``table6``)."""
    mask_name, left_attr, right_attr, title = _COMPONENT_TABLES[table]
    mask = np.concatenate([_component_mask(r, mask_name) for r in sweep.replays])
    true = sweep.pooled("true")[mask]
    left_names = {
        "cache_pred": "Cache",
        "local_pred": "Local",
        "global_pred": "Global",
        "autowlm_pred": "AutoWLM",
    }
    left = bucketed_summary(true, sweep.pooled(left_attr)[mask], metric)
    right = bucketed_summary(true, sweep.pooled(right_attr)[mask], metric)
    return render_comparison_table(
        title,
        left_names[left_attr],
        left,
        left_names[right_attr],
        right,
    )


def component_summaries(sweep: SweepResult, table: str):
    """The underlying summaries for assertions (left, right, n)."""
    mask_name, left_attr, right_attr, _ = _COMPONENT_TABLES[table]
    mask = np.concatenate([_component_mask(r, mask_name) for r in sweep.replays])
    true = sweep.pooled("true")[mask]
    left = bucketed_summary(true, sweep.pooled(left_attr)[mask])
    right = bucketed_summary(true, sweep.pooled(right_attr)[mask])
    return left, right, int(mask.sum())


# ---------------------------------------------------------------------------
# Figures 10-11: uncertainty quality (PRR)
# ---------------------------------------------------------------------------
def prr_analysis(sweep: SweepResult) -> Dict[str, object]:
    """Per-instance PRR of the local model's uncertainty (Figures 10-11)."""
    scores = []
    example = None
    for replay in sweep.replays:
        mask = replay.cache_miss_mask & replay.local_ready_mask
        if mask.sum() < 30:
            continue
        errors = absolute_errors(replay.true[mask], replay.local_pred[mask])
        unc = replay.local_std[mask]
        score = prr_score(errors, unc)
        scores.append((replay.instance_id, score))
        if example is None or abs(score - 0.9) < abs(example[1] - 0.9):
            example = (replay.instance_id, score, errors, unc)
    values = np.array([s for _, s in scores]) if scores else np.zeros(0)
    result: Dict[str, object] = {
        "scores": scores,
        "mean": float(values.mean()) if values.size else float("nan"),
        "median": float(np.median(values)) if values.size else float("nan"),
    }
    if example is not None:
        fractions, oracle, by_unc, random = prr_curves(example[2], example[3])
        result["example"] = {
            "instance_id": example[0],
            "prr": example[1],
            "curves": (fractions, oracle, by_unc, random),
        }
    return result


# ---------------------------------------------------------------------------
# Figure 9: inference latency and memory
# ---------------------------------------------------------------------------
def inference_cost(
    sweep: SweepResult, n_probe: int = 200, seed: int = 0
) -> Dict[str, Dict[str, float]]:
    """Measure per-predictor inference latency and memory on this machine.

    Re-runs a short replay on the first evaluation instance to obtain
    warmed-up predictors, then times each component on a fixed probe set.
    Absolute numbers are machine-dependent; the orderings (cache <<
    local < global) are what reproduce Figure 9.
    """
    from repro.core.autowlm import AutoWLMPredictor
    from repro.core.stage import StagePredictor

    config = sweep.config
    gen = FleetGenerator(FleetConfig(seed=config.seed, volume_scale=config.volume_scale))
    trace = gen.generate_trace(gen.sample_instance(0), config.duration_days)
    stage = StagePredictor(trace.instance, global_model=sweep.global_model, config=config.stage)
    autowlm = AutoWLMPredictor(config=config.stage.local)
    for record in trace:
        stage.predict(record)
        autowlm.predict(record)
        stage.observe(record)
        autowlm.observe(record)

    rng = np.random.default_rng(seed)
    idx = rng.choice(len(trace), size=min(n_probe, len(trace)), replace=False)
    probes = [trace[int(i)] for i in idx]

    def _time(fn) -> float:
        t0 = time.perf_counter()
        for record in probes:
            fn(record)
        return (time.perf_counter() - t0) / len(probes)

    results: Dict[str, Dict[str, float]] = {}
    results["cache"] = {
        "latency_s": _time(
            lambda r: stage.cache.lookup(stage.cache.key_for(r.features))
        ),
        "memory_bytes": float(stage.cache.byte_size()),
    }
    if stage.local.is_ready:
        results["local"] = {
            "latency_s": _time(lambda r: stage.local.predict(r.features)),
            "memory_bytes": float(stage.local.byte_size()),
        }
    if sweep.global_model is not None:
        results["global"] = {
            "latency_s": _time(
                lambda r: sweep.global_model.predict(r.plan, trace.instance)
            ),
            "memory_bytes": float(sweep.global_model.byte_size()),
        }
    results["stage"] = {
        "latency_s": _time(stage.predict),
        "memory_bytes": float(stage.byte_size()),
    }
    results["autowlm"] = {
        "latency_s": _time(autowlm.predict),
        "memory_bytes": float(autowlm.byte_size()),
    }
    return results


# ---------------------------------------------------------------------------
# command-line entry point: print every table/figure
# ---------------------------------------------------------------------------
def _print_all(scale: str = "small") -> None:  # pragma: no cover - CLI
    scales = {
        "small": SweepConfig(),
        "medium": SweepConfig(
            n_eval_instances=30,
            n_train_instances=20,
            duration_days=3.0,
            volume_scale=0.4,
        ),
    }
    sweep_cfg = scales[scale]
    print(f"== sweep scale: {scale} ==")

    stats = fleet_statistics()
    print("\n-- Figure 1a: daily-unique distribution --")
    print(
        f"clusters >50% unique: {stats['clusters_over_50pct_unique']:.0%}  "
        f"clusters with no repeats: {stats['clusters_fully_unique']:.0%}  "
        f"fleet repeat fraction: {stats['fleet_repeat_fraction']:.0%}"
    )
    print("\n-- Figure 1b: latency distribution --")
    print(f"fraction under 100ms: {stats['fraction_under_100ms']:.0%}")
    print("percentiles (ms):", {k: round(v, 1) for k, v in stats["latency_percentiles_ms"].items()})

    sweep = run_sweep(sweep_cfg, verbose=True)

    e2e = end_to_end_comparison(sweep)
    print("\n-- Figure 6: end-to-end latency improvement over AutoWLM --")
    rows = []
    for name in ("stage", "optimal"):
        imp = e2e["improvements"][name]
        rows.append([name, f"{imp['mean']:.1%}", f"{imp['median']:.1%}", f"{imp['p90']:.1%}"])
    print(render_simple_table("", ["predictor", "mean", "median", "p90(tail)"], rows))
    print(f"\n-- Figure 7: instances regressed: " f"{e2e['fraction_instances_regressed']:.0%} --")

    print("\n" + accuracy_table(sweep, "absolute"))
    print("\n" + accuracy_table(sweep, "q"))
    for table in ("table3", "table4", "table5", "table6"):
        print("\n" + component_table(sweep, table))

    prr = prr_analysis(sweep)
    print(f"\n-- Figure 11: PRR mean={prr['mean']:.2f} median={prr['median']:.2f} --")

    cost = inference_cost(sweep)
    print("\n-- Figure 9: inference cost --")
    rows = [
        [name, f"{v['latency_s'] * 1e6:.0f} us", f"{v['memory_bytes'] / 1024:.0f} KiB"]
        for name, v in cost.items()
    ]
    print(render_simple_table("", ["predictor", "latency", "memory"], rows))


if __name__ == "__main__":  # pragma: no cover
    import sys

    _print_all(sys.argv[1] if len(sys.argv) > 1 else "small")
