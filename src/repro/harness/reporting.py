"""Fixed-width table rendering matching the paper's result layout."""

from __future__ import annotations

from typing import Dict, Sequence

from repro.core.metrics import ErrorSummary
from repro.workload.trace import EXEC_TIME_BUCKETS

__all__ = ["render_comparison_table", "render_simple_table", "improvement"]

_BUCKET_ORDER = ["Overall"] + [label for _, __, label in EXEC_TIME_BUCKETS]


def improvement(candidate: float, baseline: float) -> float:
    """Relative improvement of ``candidate`` over ``baseline`` (fraction).

    Positive means the candidate is better (smaller).
    """
    if baseline == 0:
        return 0.0
    return (baseline - candidate) / baseline


def _fmt(x: float) -> str:
    if x != x:  # NaN
        return "-"
    if x >= 1000:
        return f"{x:.0f}"
    if x >= 10:
        return f"{x:.1f}"
    return f"{x:.2f}"


def render_comparison_table(
    title: str,
    left_name: str,
    left: Dict[str, ErrorSummary],
    right_name: str,
    right: Dict[str, ErrorSummary],
    metric: str = "AE",
) -> str:
    """Render a paper-style two-predictor bucket table (Tables 1-6)."""
    header = (
        f"{'Query Exec-time':<16} {'# Queries':>10} | "
        f"{left_name + ' M' + metric:>12} {'P50-' + metric:>8} {'P90-' + metric:>8} | "
        f"{right_name + ' M' + metric:>12} {'P50-' + metric:>8} {'P90-' + metric:>8}"
    )
    lines = [title, "=" * len(header), header, "-" * len(header)]
    for bucket in _BUCKET_ORDER:
        if bucket not in left:
            continue
        ls, rs = left[bucket], right[bucket]
        lines.append(
            f"{bucket:<16} {ls.n:>10} | "
            f"{_fmt(ls.mean):>12} {_fmt(ls.p50):>8} {_fmt(ls.p90):>8} | "
            f"{_fmt(rs.mean):>12} {_fmt(rs.p50):>8} {_fmt(rs.p90):>8}"
        )
    return "\n".join(lines)


def render_simple_table(title: str, headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Render a generic fixed-width table."""
    widths = [
        max(len(str(h)), *(len(_cell(r[i])) for r in rows)) if rows else len(str(h))
        for i, h in enumerate(headers)
    ]
    header = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    lines = [title, "=" * len(header), header, "-" * len(header)]
    for row in rows:
        lines.append("  ".join(_cell(c).ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _cell(c) -> str:
    if isinstance(c, float):
        return _fmt(c)
    return str(c)
