"""Replay evaluation harness and the paper's experiment runners."""

from .parallel import FleetSweeper, resolve_n_jobs
from .replay import COMPONENT_INFERENCE_MODES, InstanceReplay, replay_instance
from .reporting import improvement, render_comparison_table, render_simple_table
from .experiments import (
    SweepConfig,
    SweepResult,
    accuracy_table,
    component_summaries,
    component_table,
    end_to_end_comparison,
    fleet_statistics,
    inference_cost,
    prr_analysis,
    run_sweep,
)

__all__ = [
    "COMPONENT_INFERENCE_MODES",
    "FleetSweeper",
    "InstanceReplay",
    "replay_instance",
    "resolve_n_jobs",
    "improvement",
    "render_comparison_table",
    "render_simple_table",
    "SweepConfig",
    "SweepResult",
    "run_sweep",
    "fleet_statistics",
    "end_to_end_comparison",
    "accuracy_table",
    "component_table",
    "component_summaries",
    "prr_analysis",
    "inference_cost",
]
