"""Replay evaluation, exactly as deployed (paper Section 5.1).

Queries are replayed in arrival order: each predictor predicts *before*
seeing the outcome, then observes it.  Besides the Stage and AutoWLM
predictions, the replay records every component's answer on every query
(cache hit value, local mean/uncertainty, global estimate), which is what
the ablation tables (paper Tables 3-6) slice on afterwards.

Component collection never perturbs the predictors it is measuring:

- the cache answer is the router's own (single, counted) lookup, so
  ``hits + misses`` equals exactly one lookup per query whether or not
  components are collected;
- the local ensemble's answer is reused from the router wherever the
  router consulted it (every cache miss with a ready local model);
- for queries the router never routed locally (cache hits), inference is
  deferred and served by **one batched ensemble call per retrain
  window** (the ensemble is frozen between retrains, so deferral changes
  no arithmetic — results are bit-identical to per-query calls).

``component_inference="per_query"`` keeps the reference per-query
implementation (one extra ensemble inference per eligible query) for
parity tests and for benchmarking the cost of the batched path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.autowlm import AutoWLMPredictor
from repro.core.config import StageConfig
from repro.core.interfaces import PredictionSource
from repro.core.stage import StagePredictor
from repro.global_model.model import GlobalModel
from repro.workload.trace import Trace

__all__ = ["COMPONENT_INFERENCE_MODES", "InstanceReplay", "replay_instance"]


@dataclass
class InstanceReplay:
    """Per-query replay outputs for one instance (parallel arrays)."""

    instance_id: str
    true: np.ndarray
    arrival: np.ndarray
    kind: np.ndarray  # archetype labels
    stage_pred: np.ndarray
    stage_source: np.ndarray  # PredictionSource labels
    autowlm_pred: np.ndarray
    cache_pred: np.ndarray  # NaN on cache miss
    local_pred: np.ndarray  # NaN before the local model is ready
    local_std: np.ndarray  # log-space std; NaN when local_pred is NaN
    global_pred: np.ndarray  # NaN when no global model was supplied
    #: True where the routing rule would escalate to the global model
    #: (local ready, prediction long, uncertainty above threshold)
    uncertain: np.ndarray
    #: summary from the Stage predictor after the replay
    stage_stats: dict = field(default_factory=dict)

    def __len__(self):
        return self.true.shape[0]

    # ------------------------------------------------------------------
    @property
    def cache_hit_mask(self) -> np.ndarray:
        return ~np.isnan(self.cache_pred)

    @property
    def cache_miss_mask(self) -> np.ndarray:
        return np.isnan(self.cache_pred)

    @property
    def local_ready_mask(self) -> np.ndarray:
        return ~np.isnan(self.local_pred)

    @property
    def global_available_mask(self) -> np.ndarray:
        return ~np.isnan(self.global_pred)


#: valid ``component_inference`` modes for :func:`replay_instance`
COMPONENT_INFERENCE_MODES = ("batched", "per_query")


def replay_instance(
    trace: Trace,
    global_model: Optional[GlobalModel] = None,
    config: StageConfig | None = None,
    random_state: int = 0,
    collect_components: bool = True,
    component_inference: str = "batched",
) -> InstanceReplay:
    """Replay one instance's trace through Stage and AutoWLM.

    When ``collect_components`` is set, the local and global models are
    additionally recorded on *every* eligible query (not only when the
    router would have consulted them), so ablations can compare the
    components on identical query sets.

    ``component_inference`` selects how the extra local answers are
    obtained: ``"batched"`` (default) reuses the router's own inference
    on cache misses and serves cache hits with one batched ensemble call
    per retrain window; ``"per_query"`` is the bit-identical reference
    path that re-runs the ensemble per eligible query.
    """
    if component_inference not in COMPONENT_INFERENCE_MODES:
        raise ValueError(
            f"component_inference must be one of {COMPONENT_INFERENCE_MODES}"
        )
    config = config or StageConfig()
    stage = StagePredictor(
        trace.instance,
        global_model=global_model,
        config=config,
        random_state=random_state,
    )
    autowlm = AutoWLMPredictor(
        config=config.local, random_state=random_state
    )

    n = len(trace)
    true = np.empty(n)
    arrival = np.empty(n)
    kind = np.empty(n, dtype=object)
    stage_pred = np.empty(n)
    stage_source = np.empty(n, dtype=object)
    autowlm_pred = np.empty(n)
    cache_pred = np.full(n, np.nan)
    local_pred = np.full(n, np.nan)
    local_std = np.full(n, np.nan)
    global_pred = np.full(n, np.nan)
    uncertain = np.zeros(n, dtype=bool)

    def _is_uncertain(lp) -> bool:
        return (
            lp.exec_time >= config.short_circuit_seconds
            and lp.std >= config.uncertainty_threshold
        )

    # Deferred local inference for the current retrain window: the
    # ensemble only changes at a retrain and the window id never
    # decreases over the replay, so at most one window is pending at a
    # time.  It is answered by its frozen snapshot in one batched call
    # when the next window opens (or after the loop), which also bounds
    # how many stale ensembles stay alive to one.
    pending_frozen = None
    pending_indices: List[int] = []
    pending_features: list = []

    def _flush_pending():
        nonlocal pending_frozen
        if pending_frozen is None:
            return
        batch = pending_frozen.predict_batch(np.vstack(pending_features))
        for idx, lp in zip(pending_indices, batch):
            local_pred[idx] = lp.exec_time
            local_std[idx] = lp.std
            uncertain[idx] = _is_uncertain(lp)
        pending_frozen = None
        pending_indices.clear()
        pending_features.clear()

    for i, record in enumerate(trace):
        true[i] = record.exec_time
        arrival[i] = record.arrival_time
        kind[i] = record.kind

        routed = stage.predict_with_components(record)
        sp = routed.prediction
        stage_pred[i] = sp.exec_time
        stage_source[i] = sp.source

        ap = autowlm.predict(record)
        autowlm_pred[i] = ap.exec_time

        if collect_components:
            if component_inference == "per_query":
                # Reference path: probe the cache again — via the
                # non-mutating peek, so the router's lookup stays the
                # only counted one — and re-run the ensemble on every
                # local-ready query.
                cached = stage.cache.peek(stage.cache.key_for(record.features))
                if cached is not None:
                    cache_pred[i] = cached
                if stage.local.is_ready:
                    lp = stage.local.predict(record.features)
                    local_pred[i] = lp.exec_time
                    local_std[i] = lp.std
                    uncertain[i] = _is_uncertain(lp)
            else:
                if routed.cache_value is not None:
                    cache_pred[i] = routed.cache_value
                if routed.local is not None:
                    lp = routed.local
                    local_pred[i] = lp.exec_time
                    local_std[i] = lp.std
                    uncertain[i] = _is_uncertain(lp)
                elif routed.local_ready:
                    # Cache hit with a ready local model: the router
                    # never consulted the ensemble — defer to the
                    # window batch.
                    if (
                        pending_frozen is not None
                        and pending_frozen.generation
                        != routed.local_generation
                    ):
                        _flush_pending()
                    if pending_frozen is None:
                        pending_frozen = stage.local.frozen()
                    pending_indices.append(i)
                    pending_features.append(record.features)
        elif sp.source == PredictionSource.CACHE:
            cache_pred[i] = sp.exec_time

        stage.observe(record)
        autowlm.observe(record)

    _flush_pending()

    if collect_components and global_model is not None:
        # The global model is trained offline and frozen during replay, so
        # its per-query answers can be computed in one batch.
        from repro.global_model.featurization import record_to_graph

        graphs = [
            record_to_graph(r.plan, trace.instance) for r in trace
        ]
        global_pred[:] = global_model.predict_graphs(graphs)

    return InstanceReplay(
        instance_id=trace.instance.instance_id,
        true=true,
        arrival=arrival,
        kind=kind,
        stage_pred=stage_pred,
        stage_source=stage_source,
        autowlm_pred=autowlm_pred,
        cache_pred=cache_pred,
        local_pred=local_pred,
        local_std=local_std,
        global_pred=global_pred,
        uncertain=uncertain,
        stage_stats={
            "cache_hit_rate": stage.cache.hit_rate,
            "cache_hits": stage.cache.hits,
            "cache_misses": stage.cache.misses,
            "source_counts": dict(stage.source_counts),
            "global_use_fraction": stage.global_use_fraction,
            "n_local_retrains": stage.local.n_retrains,
            "byte_size": stage.byte_size(),
        },
    )
