"""Replay evaluation, exactly as deployed (paper Section 5.1).

Queries are replayed in arrival order: each predictor predicts *before*
seeing the outcome, then observes it.  Besides the Stage and AutoWLM
predictions, the replay records every component's answer on every query
(cache hit value, local mean/uncertainty, global estimate), which is what
the ablation tables (paper Tables 3-6) slice on afterwards.

Component collection never perturbs the predictors it is measuring:

- the cache answer is the router's own (single, counted) lookup, so
  ``hits + misses`` equals exactly one lookup per query whether or not
  components are collected;
- the local ensemble's answer is reused from the router wherever the
  router consulted it (every cache miss with a ready local model);
- for queries the router never routed locally (cache hits), inference is
  deferred and served by **one batched ensemble call per retrain
  window** (the ensemble is frozen between retrains, so deferral changes
  no arithmetic — results are bit-identical to per-query calls).

The batched path is :class:`~repro.core.stage.BatchRouter` — the same
engine the online :class:`~repro.service.PredictionService` schedules
micro-batches through.  ``via_service=True`` replays the trace *through*
a live service (concurrent clients, micro-batch scheduler and all) and
must reproduce the direct replay bit-for-bit; ``tests/test_service.py``
enforces that parity.

``component_inference="per_query"`` keeps the reference per-query
implementation (one extra ensemble inference per eligible query) for
parity tests and for benchmarking the cost of the batched path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.autowlm import AutoWLMPredictor
from repro.core.config import (
    GatewayConfig,
    ReplayBackend,
    ServiceConfig,
    StageConfig,
    WireConfig,
)
from repro.core.interfaces import PredictionSource
from repro.core.stage import BatchRouter, RoutedComponents, StagePredictor
from repro.global_model.model import GlobalModel
from repro.ml.intervals import width_percentile_from_bins
from repro.workload.trace import Trace

__all__ = [
    "COMPONENT_INFERENCE_MODES",
    "InstanceReplay",
    "assemble_replay",
    "replay_instance",
    "resolve_backend",
    "stage_stats_of",
]


@dataclass
class InstanceReplay:
    """Per-query replay outputs for one instance (parallel arrays)."""

    instance_id: str
    true: np.ndarray
    arrival: np.ndarray
    kind: np.ndarray  # archetype labels
    stage_pred: np.ndarray
    stage_source: np.ndarray  # PredictionSource labels
    autowlm_pred: np.ndarray
    cache_pred: np.ndarray  # NaN on cache miss
    local_pred: np.ndarray  # NaN before the local model is ready
    local_std: np.ndarray  # log-space std; NaN when local_pred is NaN
    global_pred: np.ndarray  # NaN when no global model was supplied
    #: True where the routing rule would escalate to the global model
    #: (local ready, prediction long, uncertainty above threshold)
    uncertain: np.ndarray
    #: calibrated interval bounds (seconds) for the routed prediction
    #: and each component column, NaN exactly where the corresponding
    #: point column is NaN; same parity contract as the point arrays
    stage_interval_low: np.ndarray = None
    stage_interval_high: np.ndarray = None
    cache_interval_low: np.ndarray = None
    cache_interval_high: np.ndarray = None
    local_interval_low: np.ndarray = None
    local_interval_high: np.ndarray = None
    global_interval_low: np.ndarray = None
    global_interval_high: np.ndarray = None
    #: summary from the Stage predictor after the replay
    stage_stats: dict = field(default_factory=dict)

    def __len__(self):
        return self.true.shape[0]

    # ------------------------------------------------------------------
    @property
    def cache_hit_mask(self) -> np.ndarray:
        return ~np.isnan(self.cache_pred)

    @property
    def cache_miss_mask(self) -> np.ndarray:
        return np.isnan(self.cache_pred)

    @property
    def local_ready_mask(self) -> np.ndarray:
        return ~np.isnan(self.local_pred)

    @property
    def global_available_mask(self) -> np.ndarray:
        return ~np.isnan(self.global_pred)


#: valid ``component_inference`` modes for :func:`replay_instance`
COMPONENT_INFERENCE_MODES = ("batched", "per_query")


def assemble_replay(
    trace: Trace,
    components: List[RoutedComponents],
    stage_stats: dict,
    config: StageConfig | None = None,
    global_model: Optional[GlobalModel] = None,
    random_state: int = 0,
    collect_components: bool = True,
) -> InstanceReplay:
    """Build an :class:`InstanceReplay` from per-query routed components.

    The one assembly path behind every replay mode — direct,
    ``via_service`` and the fleet gateway's ``via_gateway`` sweeps all
    produce a :class:`RoutedComponents` list plus the predictor's final
    accounting, and everything downstream (arrays, the independent
    AutoWLM baseline, the batched global-model column) is derived here,
    so the modes cannot drift in how results are reported.
    """
    config = config or StageConfig()
    n = len(trace)
    if len(components) != n:
        raise ValueError(f"expected {n} routed components, got {len(components)}")
    true = np.empty(n)
    arrival = np.empty(n)
    kind = np.empty(n, dtype=object)
    stage_pred = np.empty(n)
    stage_source = np.empty(n, dtype=object)
    autowlm_pred = np.empty(n)
    cache_pred = np.full(n, np.nan)
    local_pred = np.full(n, np.nan)
    local_std = np.full(n, np.nan)
    global_pred = np.full(n, np.nan)
    uncertain = np.zeros(n, dtype=bool)
    stage_interval_low = np.empty(n)
    stage_interval_high = np.empty(n)
    cache_interval_low = np.full(n, np.nan)
    cache_interval_high = np.full(n, np.nan)
    local_interval_low = np.full(n, np.nan)
    local_interval_high = np.full(n, np.nan)
    global_interval_low = np.full(n, np.nan)
    global_interval_high = np.full(n, np.nan)

    for i, record in enumerate(trace):
        true[i] = record.exec_time
        arrival[i] = record.arrival_time
        kind[i] = record.kind

    # The AutoWLM baseline shares no state with Stage, so its replay is
    # an independent loop regardless of how Stage predictions are routed.
    autowlm = AutoWLMPredictor(config=config.local, random_state=random_state)
    for i, record in enumerate(trace):
        autowlm_pred[i] = autowlm.predict(record).exec_time
        autowlm.observe(record)

    for i, routed in enumerate(components):
        sp = routed.prediction
        stage_pred[i] = sp.exec_time
        stage_source[i] = sp.source
        stage_interval_low[i] = sp.interval_low
        stage_interval_high[i] = sp.interval_high
        if collect_components:
            if routed.cache is not None:
                cache_pred[i] = routed.cache.exec_time
                cache_interval_low[i] = routed.cache.interval_low
                cache_interval_high[i] = routed.cache.interval_high
            if routed.local is not None:
                lp = routed.local
                local_pred[i] = lp.exec_time
                local_std[i] = lp.std
                local_interval_low[i] = lp.interval_low
                local_interval_high[i] = lp.interval_high
                uncertain[i] = (
                    lp.exec_time >= config.short_circuit_seconds
                    and lp.std >= config.uncertainty_threshold
                )
        elif sp.source == PredictionSource.CACHE:
            cache_pred[i] = sp.exec_time
            cache_interval_low[i] = sp.interval_low
            cache_interval_high[i] = sp.interval_high

    if collect_components and global_model is not None:
        # The global model is trained offline and frozen during replay, so
        # its per-query answers can be computed in one batch.
        from repro.global_model.featurization import record_to_graph

        graphs = [record_to_graph(r.plan, trace.instance) for r in trace]
        seconds, g_low, g_high = global_model.predict_graphs_with_interval(graphs)
        global_pred[:] = seconds
        global_interval_low[:] = g_low
        global_interval_high[:] = g_high

    return InstanceReplay(
        instance_id=trace.instance.instance_id,
        true=true,
        arrival=arrival,
        kind=kind,
        stage_pred=stage_pred,
        stage_source=stage_source,
        autowlm_pred=autowlm_pred,
        cache_pred=cache_pred,
        local_pred=local_pred,
        local_std=local_std,
        global_pred=global_pred,
        uncertain=uncertain,
        stage_interval_low=stage_interval_low,
        stage_interval_high=stage_interval_high,
        cache_interval_low=cache_interval_low,
        cache_interval_high=cache_interval_high,
        local_interval_low=local_interval_low,
        local_interval_high=local_interval_high,
        global_interval_low=global_interval_low,
        global_interval_high=global_interval_high,
        stage_stats=stage_stats,
    )


def stage_stats_of(stage: StagePredictor) -> dict:
    """The replay/serving accounting summary for one predictor.

    One definition shared by the replay harness and (shape-wise) the
    serving layer, so the parity suites can compare the dicts
    key-for-key.
    """
    return {
        "cache_hit_rate": stage.cache.hit_rate,
        "cache_hits": stage.cache.hits,
        "cache_misses": stage.cache.misses,
        "source_counts": dict(stage.source_counts),
        "global_use_fraction": stage.global_use_fraction,
        "n_local_retrains": stage.local.n_retrains,
        "byte_size": stage.byte_size(),
        # integer width-histogram counts (mergeable across shards by
        # elementwise addition) plus the derived width percentiles
        "interval_width_bins": tuple(stage.interval_width_bins),
        "interval_width_p50": width_percentile_from_bins(
            stage.interval_width_bins, 0.5
        ),
        "interval_width_p90": width_percentile_from_bins(
            stage.interval_width_bins, 0.9
        ),
        # workload-forecasting accounting (all zeros with forecasting
        # off, so dict shapes stay identical across configurations);
        # forecast_load is the rebalancer's per-instance signal when
        # ControlConfig.load_source="forecast"
        "forecast_load": stage.forecast_load(),
        "n_prewarm_touches": stage.n_prewarm_touches,
        "n_prewarm_restores": stage.n_prewarm_restores,
        "n_retrain_deferrals": stage.n_retrain_deferrals,
        "n_trough_retrains": stage.n_trough_retrains,
    }


def _routed_components_direct(
    trace: Trace,
    stage: StagePredictor,
    collect_components: bool,
) -> List[RoutedComponents]:
    """Fused predict+observe replay through the shared batch router."""
    router = BatchRouter(stage, collect_cache_hit_local=collect_components)
    slots = [None] * len(trace)
    for i, record in enumerate(trace):
        slots[i] = router.route(record)
        router.observe(record)
    router.flush()
    return [slot.components for slot in slots]


def resolve_backend(
    backend: Optional[ReplayBackend] = None,
    via_service: bool = False,
    via_socket: bool = False,
    via_gateway: bool = False,
    service_config: Optional[ServiceConfig] = None,
    service_clients: int = 1,
    gateway_config: Optional[GatewayConfig] = None,
    wire_config: Optional[WireConfig] = None,
) -> ReplayBackend:
    """Fold the deprecated ``via_*`` kwargs into one :class:`ReplayBackend`.

    The legacy booleans and per-tier config kwargs remain accepted as
    thin shims; passing ``backend`` together with any of them is an
    error (two sources of truth).  The mutual-exclusion rule between the
    ``via_*`` flags is enforced here with its historical message.
    """
    from dataclasses import replace

    modes = [
        name
        for name, flag in (
            ("via_service", via_service),
            ("via_gateway", via_gateway),
            ("via_socket", via_socket),
        )
        if flag
    ]
    if len(modes) > 1:
        raise ValueError(f"{' and '.join(modes)} are mutually exclusive")
    legacy = bool(
        modes
        or service_config is not None
        or gateway_config is not None
        or wire_config is not None
        or service_clients != 1
    )
    if backend is not None:
        if legacy:
            raise ValueError(
                "backend and the deprecated via_*/config replay kwargs "
                "are mutually exclusive"
            )
        return backend
    mode = modes[0][len("via_") :] if modes else "direct"
    resolved = ReplayBackend(mode=mode, clients=max(1, int(service_clients)))
    if service_config is not None:
        resolved = replace(resolved, service=service_config)
    if gateway_config is not None:
        resolved = replace(resolved, gateway=gateway_config)
    if wire_config is not None:
        resolved = replace(resolved, wire=wire_config)
    return resolved


def _backend_gateway_config(
    backend: ReplayBackend, collect_components: bool
) -> GatewayConfig:
    """The gateway config for the sharded modes, with the replay's
    component-collection flag folded into the per-shard service knobs.
    ``backend.service`` overrides the gateway's embedded service config
    only when it was explicitly customised, matching the old kwarg
    precedence (``service_config`` beat ``gateway_config.service``)."""
    from dataclasses import replace

    service = backend.service if backend.service != ServiceConfig() else backend.gateway.service
    return replace(
        backend.gateway,
        service=replace(service, collect_components=collect_components),
    )


def _routed_components_via_backend(
    trace: Trace,
    backend: ReplayBackend,
    stage_config: Optional[StageConfig],
    global_model: Optional[GlobalModel],
    random_state: int,
    collect_components: bool,
):
    """Replay the trace through the serving tier ``backend`` names.

    Every mode funnels into the one
    :func:`repro.service.replay_trace_via_client` driver behind a
    tier-appropriate :class:`~repro.service.PredictorClient` — a live
    :class:`~repro.service.PredictionService` (``"service"``), a sharded
    multi-process :class:`~repro.service.FleetGateway` (``"gateway"``),
    or ``backend.clients`` real TCP connections against a
    :class:`~repro.service.WireServer` (``"socket"``).  The determinism
    contract makes all of them reproduce the direct replay bit-for-bit.

    Returns ``(components, stage_stats)``.
    """
    from dataclasses import replace

    if backend.mode == "service":
        from repro.service import PredictionService

        service_config = replace(
            backend.service, collect_components=collect_components
        )
        service = PredictionService(
            trace.instance,
            global_model=global_model,
            stage_config=stage_config,
            service_config=service_config,
            random_state=random_state,
        )
        try:
            components = service.replay_components(trace, n_clients=backend.clients)
            service.drain()
            stats = stage_stats_of(service.stage)
        finally:
            # always stop the worker thread: a failed replay must not
            # leak a live scheduler (close also fails gap-stranded ops)
            service.close()
        return components, stats

    config = _backend_gateway_config(backend, collect_components)
    if backend.mode == "gateway":
        from repro.service.gateway import FleetGateway

        gateway = FleetGateway(
            config,
            stage_config=stage_config,
            global_model=global_model,
            random_state=random_state,
        )
        try:
            gateway.register_instance(trace.instance)
            components = gateway.replay_components(trace, n_clients=backend.clients)
            gateway.drain()
            stats = gateway.stats()["instances"][trace.instance.instance_id]["stage"]
        finally:
            gateway.close()
        return components, stats

    if backend.mode == "socket":
        from repro.service.gateway import FleetGateway
        from repro.service.wire import WireServer, _SocketReplayContext

        gateway = FleetGateway(
            config,
            stage_config=stage_config,
            global_model=global_model,
            random_state=random_state,
        )
        server = WireServer(gateway, backend.wire)
        with _SocketReplayContext(gateway, server) as ctx:
            ctx.register(trace.instance)
            components = ctx.replay(trace, n_connections=backend.clients)
            stats = ctx.instance_stats()[trace.instance.instance_id]["stage"]
        return components, stats

    raise ValueError(f"unknown replay backend mode {backend.mode!r}")


def replay_instance(
    trace: Trace,
    global_model: Optional[GlobalModel] = None,
    config: StageConfig | None = None,
    random_state: int = 0,
    collect_components: bool = True,
    component_inference: str = "batched",
    backend: ReplayBackend | None = None,
    via_service: bool = False,
    service_config: ServiceConfig | None = None,
    service_clients: int = 1,
    via_socket: bool = False,
    gateway_config: GatewayConfig | None = None,
    wire_config: WireConfig | None = None,
) -> InstanceReplay:
    """Replay one instance's trace through Stage and AutoWLM.

    When ``collect_components`` is set, the local and global models are
    additionally recorded on *every* eligible query (not only when the
    router would have consulted them), so ablations can compare the
    components on identical query sets.

    ``component_inference`` selects how the extra local answers are
    obtained: ``"batched"`` (default) reuses the router's own inference
    on cache misses and serves cache hits with one batched ensemble call
    per retrain window; ``"per_query"`` is the bit-identical reference
    path that re-runs the ensemble per eligible query.

    ``backend`` selects which serving tier the Stage predictions route
    through (:class:`~repro.core.config.ReplayBackend`): ``"direct"``
    (default — no service layer), ``"service"`` (an online
    :class:`~repro.service.PredictionService` with ``backend.clients``
    concurrent submitters), ``"gateway"`` (a sharded multi-process
    :class:`~repro.service.FleetGateway`) or ``"socket"`` (real TCP
    connections against a :class:`~repro.service.WireServer` fronting a
    gateway).  The determinism contract makes every mode bit-identical
    to the direct path — arrays *and* accounting — for any batch size,
    shard count or client/connection count.

    ``via_service`` / ``via_socket`` and the per-tier config kwargs are
    the deprecated spelling of ``backend``; they are folded into one via
    :func:`resolve_backend` and cannot be combined with it.
    """
    if component_inference not in COMPONENT_INFERENCE_MODES:
        raise ValueError(f"component_inference must be one of {COMPONENT_INFERENCE_MODES}")
    backend = resolve_backend(
        backend,
        via_service=via_service,
        via_socket=via_socket,
        service_config=service_config,
        service_clients=service_clients,
        gateway_config=gateway_config,
        wire_config=wire_config,
    )
    if backend.mode != "direct" and component_inference != "batched":
        raise ValueError(
            "service/gateway/socket replays route through the batched "
            'path; use component_inference="batched"'
        )
    config = config or StageConfig()

    if component_inference == "per_query":
        stage = StagePredictor(
            trace.instance,
            global_model=global_model,
            config=config,
            random_state=random_state,
        )
        # Reference path: per-query routing, probing the cache again —
        # via the non-mutating peek, so the router's lookup stays the
        # only counted one — and re-running the ensemble on every
        # local-ready query.
        components = []
        for record in trace:
            routed = stage.predict_with_components(record)
            if collect_components:
                routed = RoutedComponents(
                    prediction=routed.prediction,
                    cache=stage.cache.peek_prediction(
                        stage.cache.key_for(record.features)
                    ),
                    local=(
                        stage.local.predict(record.features) if stage.local.is_ready else None
                    ),
                    local_ready=stage.local.is_ready,
                    local_generation=stage.local.n_retrains,
                )
            stage.observe(record)
            components.append(routed)
        stats = stage_stats_of(stage)
    elif backend.mode != "direct":
        components, stats = _routed_components_via_backend(
            trace,
            backend,
            config,
            global_model,
            random_state,
            collect_components,
        )
    else:
        stage = StagePredictor(
            trace.instance,
            global_model=global_model,
            config=config,
            random_state=random_state,
        )
        components = _routed_components_direct(trace, stage, collect_components)
        stats = stage_stats_of(stage)

    return assemble_replay(
        trace,
        components,
        stats,
        config=config,
        global_model=global_model,
        random_state=random_state,
        collect_components=collect_components,
    )
