"""Sequential replay evaluation, exactly as deployed (paper Section 5.1).

Queries are replayed in arrival order: each predictor predicts *before*
seeing the outcome, then observes it.  Besides the Stage and AutoWLM
predictions, the replay records every component's answer on every query
(cache hit value, local mean/uncertainty, global estimate), which is what
the ablation tables (paper Tables 3-6) slice on afterwards.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.autowlm import AutoWLMPredictor
from repro.core.config import StageConfig
from repro.core.interfaces import PredictionSource
from repro.core.stage import StagePredictor
from repro.global_model.model import GlobalModel
from repro.workload.trace import Trace

__all__ = ["InstanceReplay", "replay_instance"]


@dataclass
class InstanceReplay:
    """Per-query replay outputs for one instance (parallel arrays)."""

    instance_id: str
    true: np.ndarray
    arrival: np.ndarray
    kind: np.ndarray  # archetype labels
    stage_pred: np.ndarray
    stage_source: np.ndarray  # PredictionSource labels
    autowlm_pred: np.ndarray
    cache_pred: np.ndarray  # NaN on cache miss
    local_pred: np.ndarray  # NaN before the local model is ready
    local_std: np.ndarray  # log-space std; NaN when local_pred is NaN
    global_pred: np.ndarray  # NaN when no global model was supplied
    #: True where the routing rule would escalate to the global model
    #: (local ready, prediction long, uncertainty above threshold)
    uncertain: np.ndarray
    #: summary from the Stage predictor after the replay
    stage_stats: dict = field(default_factory=dict)

    def __len__(self):
        return self.true.shape[0]

    # ------------------------------------------------------------------
    @property
    def cache_hit_mask(self) -> np.ndarray:
        return ~np.isnan(self.cache_pred)

    @property
    def cache_miss_mask(self) -> np.ndarray:
        return np.isnan(self.cache_pred)

    @property
    def local_ready_mask(self) -> np.ndarray:
        return ~np.isnan(self.local_pred)

    @property
    def global_available_mask(self) -> np.ndarray:
        return ~np.isnan(self.global_pred)


def replay_instance(
    trace: Trace,
    global_model: Optional[GlobalModel] = None,
    config: StageConfig | None = None,
    random_state: int = 0,
    collect_components: bool = True,
) -> InstanceReplay:
    """Replay one instance's trace through Stage and AutoWLM.

    When ``collect_components`` is set, the local and global models are
    additionally queried on *every* eligible query (not only when the
    router would have consulted them), so ablations can compare the
    components on identical query sets.
    """
    config = config or StageConfig()
    stage = StagePredictor(
        trace.instance,
        global_model=global_model,
        config=config,
        random_state=random_state,
    )
    autowlm = AutoWLMPredictor(
        config=config.local, random_state=random_state
    )

    n = len(trace)
    true = np.empty(n)
    arrival = np.empty(n)
    kind = np.empty(n, dtype=object)
    stage_pred = np.empty(n)
    stage_source = np.empty(n, dtype=object)
    autowlm_pred = np.empty(n)
    cache_pred = np.full(n, np.nan)
    local_pred = np.full(n, np.nan)
    local_std = np.full(n, np.nan)
    global_pred = np.full(n, np.nan)
    uncertain = np.zeros(n, dtype=bool)

    for i, record in enumerate(trace):
        true[i] = record.exec_time
        arrival[i] = record.arrival_time
        kind[i] = record.kind

        sp = stage.predict(record)
        stage_pred[i] = sp.exec_time
        stage_source[i] = sp.source

        ap = autowlm.predict(record)
        autowlm_pred[i] = ap.exec_time

        if collect_components:
            cached = stage.cache.lookup(stage.cache.key_for(record.features))
            if cached is not None:
                cache_pred[i] = cached
            if stage.local.is_ready:
                lp = stage.local.predict(record.features)
                local_pred[i] = lp.exec_time
                local_std[i] = lp.std
                uncertain[i] = (
                    lp.exec_time >= config.short_circuit_seconds
                    and lp.std >= config.uncertainty_threshold
                )
        elif sp.source == PredictionSource.CACHE:
            cache_pred[i] = sp.exec_time

        stage.observe(record)
        autowlm.observe(record)

    if collect_components and global_model is not None:
        # The global model is trained offline and frozen during replay, so
        # its per-query answers can be computed in one batch.
        from repro.global_model.featurization import record_to_graph

        graphs = [
            record_to_graph(r.plan, trace.instance) for r in trace
        ]
        global_pred[:] = global_model.predict_graphs(graphs)

    return InstanceReplay(
        instance_id=trace.instance.instance_id,
        true=true,
        arrival=arrival,
        kind=kind,
        stage_pred=stage_pred,
        stage_source=stage_source,
        autowlm_pred=autowlm_pred,
        cache_pred=cache_pred,
        local_pred=local_pred,
        local_std=local_std,
        global_pred=global_pred,
        uncertain=uncertain,
        stage_stats={
            "cache_hit_rate": stage.cache.hit_rate,
            "source_counts": dict(stage.source_counts),
            "global_use_fraction": stage.global_use_fraction,
            "n_local_retrains": stage.local.n_retrains,
            "byte_size": stage.byte_size(),
        },
    )
