"""Parallel fleet-sweep engine: replay many instances across processes.

The paper's evaluation (Section 5) replays whole fleets through Stage;
each instance's replay is embarrassingly parallel because every random
stream is derived deterministically from ``(fleet seed, instance index)``
— never from execution order or shared state.  A worker that generates
and replays instance ``i`` therefore produces **bit-identical** arrays
whether it runs inline, in another process, or in any order relative to
its siblings.  ``n_jobs=1`` runs inline (no pool, no pickling), which is
both the fast path on one core and the reference the parity tests
compare against.

The shared :class:`~repro.global_model.model.GlobalModel` is shipped to
each worker process **once**, through the pool initializer, instead of
riding inside every task payload: per-task pickles stay small (config +
scalars) no matter how many instances the sweep replays.  The inline
path never pickles anything.

Workers are module-level functions so they pickle by reference under any
multiprocessing start method (fork, forkserver, spawn).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional, Sequence

from repro.core.config import (
    GatewayConfig,
    ReplayBackend,
    ServiceConfig,
    StageConfig,
    WireConfig,
)
from repro.global_model.model import GlobalModel
from repro.parallelism import pool_map, resolve_n_jobs, runs_inline
from repro.workload.fleet import FleetConfig, FleetGenerator
from repro.workload.trace import Trace

from .replay import (
    InstanceReplay,
    _backend_gateway_config,
    assemble_replay,
    replay_instance,
    resolve_backend,
)

__all__ = ["FleetSweeper", "resolve_n_jobs"]


# ---------------------------------------------------------------------------
# picklable worker payloads + entrypoints
# ---------------------------------------------------------------------------
#: the per-process model slot, filled once by the pool initializer
_WORKER_GLOBAL_MODEL: Optional[GlobalModel] = None


def _init_replay_worker(global_model: Optional[GlobalModel]) -> None:
    """Pool initializer: install the shared model once per worker."""
    global _WORKER_GLOBAL_MODEL
    _WORKER_GLOBAL_MODEL = global_model


@dataclass(frozen=True)
class _ReplaySettings:
    """Everything a worker needs besides the instance itself.

    The model itself never rides here on the pool path — only the
    ``use_global_model`` handle, resolved against the worker's
    initializer-installed slot.  The inline path (no pool, no pickling)
    carries the object directly in ``global_model``.
    """

    stage_config: Optional[StageConfig]
    random_state: int
    collect_components: bool
    component_inference: str
    #: whether a global model exists for this sweep
    use_global_model: bool = False
    #: inline path only; always ``None`` in pool-bound settings
    global_model: Optional[GlobalModel] = None
    #: the serving tier each per-worker replay routes through (only the
    #: per-instance modes ride here — ``direct`` and ``service``; the
    #: shared-fleet modes are driven centrally by the sweeper)
    backend: Optional[ReplayBackend] = None


def _resolve_global_model(settings: _ReplaySettings) -> Optional[GlobalModel]:
    if not settings.use_global_model:
        return None
    if settings.global_model is not None:
        return settings.global_model
    if _WORKER_GLOBAL_MODEL is None:
        raise RuntimeError(
            "replay worker has no global model installed; pool was "
            "created without _init_replay_worker"
        )
    return _WORKER_GLOBAL_MODEL


def _replay_trace(trace: Trace, settings: _ReplaySettings) -> InstanceReplay:
    return replay_instance(
        trace,
        global_model=_resolve_global_model(settings),
        config=settings.stage_config,
        random_state=settings.random_state,
        collect_components=settings.collect_components,
        component_inference=settings.component_inference,
        backend=settings.backend,
    )


def _replay_index_worker(args) -> InstanceReplay:
    """Generate instance ``index``'s trace and replay it (one task)."""
    fleet_config, duration_days, index, settings = args
    gen = FleetGenerator(fleet_config)
    trace = gen.generate_trace(gen.sample_instance(index), duration_days)
    return _replay_trace(trace, settings)


def _replay_trace_worker(args) -> InstanceReplay:
    """Replay one pre-built trace (one task)."""
    trace, settings = args
    return _replay_trace(trace, settings)


# ---------------------------------------------------------------------------
# the sweeper
# ---------------------------------------------------------------------------
@dataclass
class FleetSweeper:
    """Fans instance replays out over a process pool.

    Parameters mirror :func:`~repro.harness.replay.replay_instance`; the
    sweeper adds fan-out (``n_jobs``) and the choice of feeding it
    instance *indices* (workers generate their own traces — nothing but
    the config and the replay arrays cross process boundaries) or
    pre-built :class:`Trace` objects (pay the trace pickling, but time
    replay in isolation).
    """

    fleet_config: FleetConfig = field(default_factory=FleetConfig)
    stage_config: Optional[StageConfig] = None
    global_model: Optional[GlobalModel] = None
    random_state: int = 0
    collect_components: bool = True
    component_inference: str = "batched"
    #: which serving tier every replay routes through
    #: (:class:`~repro.core.config.ReplayBackend`); ``direct`` and
    #: ``service`` replay per instance (fan out over the pool), while
    #: ``gateway`` and ``socket`` put the whole fleet behind one shared
    #: front door — all bit-identical under the determinism contract
    backend: Optional[ReplayBackend] = None
    #: deprecated spelling of ``backend`` (see
    #: :func:`~repro.harness.replay.resolve_backend`); cannot be
    #: combined with it
    via_service: bool = False
    service_config: Optional[ServiceConfig] = None
    service_clients: int = 1
    via_gateway: bool = False
    gateway_config: Optional[GatewayConfig] = None
    via_socket: bool = False
    wire_config: Optional[WireConfig] = None
    #: called once, on its own thread, *while* the fleet replay's
    #: submitters are in flight, with the live gateway as its argument —
    #: the reshard-mid-replay hook (``gateway``/``socket`` modes only).
    #: Migrations and resizes it performs must leave every replay
    #: bit-identical; any exception it raises fails the sweep.
    reshard_hook: Optional[Callable[[object], None]] = None
    #: worker processes; 1 = inline (no pool), ``<=0`` = all cores
    n_jobs: int = 1

    # ------------------------------------------------------------------
    def _resolved_backend(self) -> ReplayBackend:
        return resolve_backend(
            self.backend,
            via_service=self.via_service,
            via_gateway=self.via_gateway,
            via_socket=self.via_socket,
            service_config=self.service_config,
            service_clients=self.service_clients,
            gateway_config=self.gateway_config,
            wire_config=self.wire_config,
        )

    def _settings(
        self, inline: bool, backend: Optional[ReplayBackend] = None
    ) -> _ReplaySettings:
        """Worker settings; pool-bound settings never carry the model."""
        if backend is None:
            backend = self._resolved_backend()
        return _ReplaySettings(
            stage_config=self.stage_config,
            random_state=self.random_state,
            collect_components=self.collect_components,
            component_inference=self.component_inference,
            use_global_model=self.global_model is not None,
            global_model=self.global_model if inline else None,
            backend=backend,
        )

    def _map(
        self, worker, payloads: Sequence[tuple], backend: ReplayBackend
    ) -> List[InstanceReplay]:
        settings = self._settings(
            inline=runs_inline(self.n_jobs, len(payloads)), backend=backend
        )
        tasks = [payload + (settings,) for payload in payloads]
        return pool_map(
            worker,
            tasks,
            self.n_jobs,
            initializer=_init_replay_worker,
            initargs=(self.global_model,),
        )

    # ------------------------------------------------------------------
    def _check_backend(self) -> ReplayBackend:
        backend = self._resolved_backend()
        if backend.mode != "direct" and self.component_inference != "batched":
            raise ValueError(
                "service/gateway/socket replays route through the "
                'batched path; use component_inference="batched"'
            )
        if self.reshard_hook is not None and backend.mode not in ("gateway", "socket"):
            raise ValueError(
                "reshard_hook requires a shared-fleet backend "
                '(mode "gateway" or "socket")'
            )
        return backend

    def _replay_fleet(
        self, traces: Sequence[Trace], backend: ReplayBackend
    ) -> List[InstanceReplay]:
        """Replay every trace through one shared, sharded fleet tier.

        All instances live behind the same front door — a multi-process
        :class:`~repro.service.FleetGateway` (``gateway`` mode) or that
        gateway behind a TCP :class:`~repro.service.WireServer`
        (``socket`` mode, ``backend.clients`` wire connections per
        instance).  Each instance is registered on its routing-table
        shard, its op stream replays with explicit per-instance sequence
        numbers, and the per-instance accounting is read back from the
        shard that owns it.  ``n_jobs`` controls how many instances'
        streams are in flight at once (the submitter threads; the shard
        processes do the predictor work).

        While the submitters run, ``reshard_hook`` (if any) executes on
        its own thread against the live gateway — the hook migrates
        instances and resizes the shard set *mid-replay*, and the
        determinism contract requires the results to stay bit-identical
        anyway (the reshard-parity suite holds exactly this).  The hook
        is joined before final accounting is read, so its moves are
        fully settled in the stats.
        """
        import threading
        from concurrent.futures import ThreadPoolExecutor
        from contextlib import ExitStack

        from repro.service.gateway import FleetGateway

        config = _backend_gateway_config(backend, self.collect_components)
        gateway = FleetGateway(
            config,
            stage_config=self.stage_config,
            global_model=self.global_model,
            random_state=self.random_state,
        )
        with ExitStack() as stack:
            if backend.mode == "socket":
                from repro.service.wire import WireServer, _SocketReplayContext

                server = WireServer(gateway, backend.wire)
                ctx = stack.enter_context(_SocketReplayContext(gateway, server))
                register = ctx.register

                def replay(trace: Trace):
                    return ctx.replay(trace, n_connections=backend.clients)

                read_stats = ctx.instance_stats
            else:
                stack.callback(gateway.close)
                register = gateway.register_instance

                def replay(trace: Trace):
                    return gateway.replay_components(trace, n_clients=backend.clients)

                def read_stats():
                    gateway.drain()
                    return gateway.stats()["instances"]

            for trace in traces:
                register(trace.instance)

            hook_errors: List[BaseException] = []
            hook_thread: Optional[threading.Thread] = None
            if self.reshard_hook is not None:

                def run_hook():
                    try:
                        self.reshard_hook(gateway)
                    except BaseException as exc:
                        hook_errors.append(exc)

                hook_thread = threading.Thread(
                    target=run_hook, name="reshard-hook", daemon=True
                )
                hook_thread.start()

            n_submitters = resolve_n_jobs(self.n_jobs, max(len(traces), 1))
            if n_submitters == 1:
                components_per_trace = [replay(trace) for trace in traces]
            else:
                with ThreadPoolExecutor(max_workers=n_submitters) as pool:
                    components_per_trace = list(pool.map(replay, traces))
            if hook_thread is not None:
                # the hook must settle before accounting is read (and a
                # failed reshard must fail the sweep, not pass silently)
                hook_thread.join()
                if hook_errors:
                    raise hook_errors[0]
            instance_stats = read_stats()
        return [
            assemble_replay(
                trace,
                components,
                instance_stats[trace.instance.instance_id]["stage"],
                config=self.stage_config,
                global_model=self.global_model,
                random_state=self.random_state,
                collect_components=self.collect_components,
            )
            for trace, components in zip(traces, components_per_trace)
        ]

    # ------------------------------------------------------------------
    def replay_indices(
        self, indices: Iterable[int], duration_days: float
    ) -> List[InstanceReplay]:
        """Generate and replay instances ``indices``, in index order.

        Each worker samples its instance and unrolls its trace itself,
        so results are independent of how work is distributed.  In the
        shared-fleet modes the traces are generated up front (they are
        pure functions of ``(fleet_config, index)``) and fed through the
        shared gateway instead.
        """
        backend = self._check_backend()
        if backend.mode in ("gateway", "socket"):
            gen = FleetGenerator(self.fleet_config)
            traces = [
                gen.generate_trace(gen.sample_instance(int(index)), duration_days)
                for index in indices
            ]
            return self._replay_fleet(traces, backend)
        payloads = [(self.fleet_config, duration_days, int(index)) for index in indices]
        return self._map(_replay_index_worker, payloads, backend)

    def replay_traces(self, traces: Sequence[Trace]) -> List[InstanceReplay]:
        """Replay pre-built traces, preserving their order."""
        backend = self._check_backend()
        if backend.mode in ("gateway", "socket"):
            return self._replay_fleet(traces, backend)
        payloads = [(trace,) for trace in traces]
        return self._map(_replay_trace_worker, payloads, backend)
