"""Parallel fleet-sweep engine: replay many instances across processes.

The paper's evaluation (Section 5) replays whole fleets through Stage;
each instance's replay is embarrassingly parallel because every random
stream is derived deterministically from ``(fleet seed, instance index)``
— never from execution order or shared state.  A worker that generates
and replays instance ``i`` therefore produces **bit-identical** arrays
whether it runs inline, in another process, or in any order relative to
its siblings.  ``n_jobs=1`` runs inline (no pool, no pickling), which is
both the fast path on one core and the reference the parity tests
compare against.

The shared :class:`~repro.global_model.model.GlobalModel` is shipped to
each worker process **once**, through the pool initializer, instead of
riding inside every task payload: per-task pickles stay small (config +
scalars) no matter how many instances the sweep replays.  The inline
path never pickles anything.

Workers are module-level functions so they pickle by reference under any
multiprocessing start method (fork, forkserver, spawn).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence

from repro.core.config import GatewayConfig, ServiceConfig, StageConfig, WireConfig
from repro.global_model.model import GlobalModel
from repro.parallelism import pool_map, resolve_n_jobs, runs_inline
from repro.workload.fleet import FleetConfig, FleetGenerator
from repro.workload.trace import Trace

from .replay import InstanceReplay, assemble_replay, replay_instance

__all__ = ["FleetSweeper", "resolve_n_jobs"]


# ---------------------------------------------------------------------------
# picklable worker payloads + entrypoints
# ---------------------------------------------------------------------------
#: the per-process model slot, filled once by the pool initializer
_WORKER_GLOBAL_MODEL: Optional[GlobalModel] = None


def _init_replay_worker(global_model: Optional[GlobalModel]) -> None:
    """Pool initializer: install the shared model once per worker."""
    global _WORKER_GLOBAL_MODEL
    _WORKER_GLOBAL_MODEL = global_model


@dataclass(frozen=True)
class _ReplaySettings:
    """Everything a worker needs besides the instance itself.

    The model itself never rides here on the pool path — only the
    ``use_global_model`` handle, resolved against the worker's
    initializer-installed slot.  The inline path (no pool, no pickling)
    carries the object directly in ``global_model``.
    """

    stage_config: Optional[StageConfig]
    random_state: int
    collect_components: bool
    component_inference: str
    #: whether a global model exists for this sweep
    use_global_model: bool = False
    #: inline path only; always ``None`` in pool-bound settings
    global_model: Optional[GlobalModel] = None
    #: route every replay through a live PredictionService (scenario
    #: engine / serving-parity sweeps); bit-identical to the direct path
    via_service: bool = False
    service_config: Optional[ServiceConfig] = None
    service_clients: int = 1


def _resolve_global_model(settings: _ReplaySettings) -> Optional[GlobalModel]:
    if not settings.use_global_model:
        return None
    if settings.global_model is not None:
        return settings.global_model
    if _WORKER_GLOBAL_MODEL is None:
        raise RuntimeError(
            "replay worker has no global model installed; pool was "
            "created without _init_replay_worker"
        )
    return _WORKER_GLOBAL_MODEL


def _replay_trace(trace: Trace, settings: _ReplaySettings) -> InstanceReplay:
    return replay_instance(
        trace,
        global_model=_resolve_global_model(settings),
        config=settings.stage_config,
        random_state=settings.random_state,
        collect_components=settings.collect_components,
        component_inference=settings.component_inference,
        via_service=settings.via_service,
        service_config=settings.service_config,
        service_clients=settings.service_clients,
    )


def _replay_index_worker(args) -> InstanceReplay:
    """Generate instance ``index``'s trace and replay it (one task)."""
    fleet_config, duration_days, index, settings = args
    gen = FleetGenerator(fleet_config)
    trace = gen.generate_trace(gen.sample_instance(index), duration_days)
    return _replay_trace(trace, settings)


def _replay_trace_worker(args) -> InstanceReplay:
    """Replay one pre-built trace (one task)."""
    trace, settings = args
    return _replay_trace(trace, settings)


# ---------------------------------------------------------------------------
# the sweeper
# ---------------------------------------------------------------------------
@dataclass
class FleetSweeper:
    """Fans instance replays out over a process pool.

    Parameters mirror :func:`~repro.harness.replay.replay_instance`; the
    sweeper adds fan-out (``n_jobs``) and the choice of feeding it
    instance *indices* (workers generate their own traces — nothing but
    the config and the replay arrays cross process boundaries) or
    pre-built :class:`Trace` objects (pay the trace pickling, but time
    replay in isolation).
    """

    fleet_config: FleetConfig = field(default_factory=FleetConfig)
    stage_config: Optional[StageConfig] = None
    global_model: Optional[GlobalModel] = None
    random_state: int = 0
    collect_components: bool = True
    component_inference: str = "batched"
    #: replay every instance through a live PredictionService instead of
    #: calling the predictor directly (bit-identical; the scenario
    #: engine's serving-path sweeps run this way)
    via_service: bool = False
    service_config: Optional[ServiceConfig] = None
    service_clients: int = 1
    #: replay the whole fleet through one sharded multi-process
    #: FleetGateway (bit-identical for any shard count — the fleet
    #: determinism contract's strongest exercise)
    via_gateway: bool = False
    gateway_config: Optional[GatewayConfig] = None
    #: replay the whole fleet through a FleetGateway *over real TCP* —
    #: a WireServer front door, ``service_clients`` wire connections per
    #: instance; same bit-parity contract, now spanning the socket
    via_socket: bool = False
    wire_config: Optional[WireConfig] = None
    #: worker processes; 1 = inline (no pool), ``<=0`` = all cores
    n_jobs: int = 1

    # ------------------------------------------------------------------
    def _settings(self, inline: bool) -> _ReplaySettings:
        """Worker settings; pool-bound settings never carry the model."""
        return _ReplaySettings(
            stage_config=self.stage_config,
            random_state=self.random_state,
            collect_components=self.collect_components,
            component_inference=self.component_inference,
            use_global_model=self.global_model is not None,
            global_model=self.global_model if inline else None,
            via_service=self.via_service,
            service_config=self.service_config,
            service_clients=self.service_clients,
        )

    def _map(self, worker, payloads: Sequence[tuple]) -> List[InstanceReplay]:
        settings = self._settings(inline=runs_inline(self.n_jobs, len(payloads)))
        tasks = [payload + (settings,) for payload in payloads]
        return pool_map(
            worker,
            tasks,
            self.n_jobs,
            initializer=_init_replay_worker,
            initargs=(self.global_model,),
        )

    # ------------------------------------------------------------------
    def _check_modes(self) -> None:
        modes = [
            name
            for name, flag in (
                ("via_service", self.via_service),
                ("via_gateway", self.via_gateway),
                ("via_socket", self.via_socket),
            )
            if flag
        ]
        if len(modes) > 1:
            raise ValueError(f"{' and '.join(modes)} are mutually exclusive")
        if (self.via_gateway or self.via_socket) and self.component_inference != "batched":
            raise ValueError(
                "via_gateway/via_socket replays route through the "
                'batched path; use component_inference="batched"'
            )

    def _replay_via_gateway(self, traces: Sequence[Trace]) -> List[InstanceReplay]:
        """Replay every trace through one sharded, multi-process gateway.

        All instances live behind the same front door: each is
        registered on its hash-assigned shard, its op stream replays with
        explicit per-instance sequence numbers, and the per-instance
        accounting is read back from the shard that owns it.  ``n_jobs``
        controls how many instances' streams are in flight at once (the
        submitter threads; the shard processes do the predictor work) —
        per-instance streams are independent, so the determinism
        contract makes any value bit-identical to the direct (and
        ``via_service``) replays, for any shard count, client count or
        queue bound.
        """
        from concurrent.futures import ThreadPoolExecutor
        from dataclasses import replace

        from repro.service.gateway import FleetGateway

        config = self.gateway_config or GatewayConfig()
        config = replace(
            config,
            service=replace(
                self.service_config or config.service,
                collect_components=self.collect_components,
            ),
        )
        gateway = FleetGateway(
            config,
            stage_config=self.stage_config,
            global_model=self.global_model,
            random_state=self.random_state,
        )
        try:
            for trace in traces:
                gateway.register_instance(trace.instance)

            def replay(trace: Trace):
                return gateway.replay_components(trace, n_clients=self.service_clients)

            n_submitters = resolve_n_jobs(self.n_jobs, max(len(traces), 1))
            if n_submitters == 1:
                components_per_trace = [replay(trace) for trace in traces]
            else:
                with ThreadPoolExecutor(max_workers=n_submitters) as pool:
                    components_per_trace = list(pool.map(replay, traces))
            gateway.drain()
            instance_stats = gateway.stats()["instances"]
        finally:
            gateway.close()
        return [
            assemble_replay(
                trace,
                components,
                instance_stats[trace.instance.instance_id]["stage"],
                config=self.stage_config,
                global_model=self.global_model,
                random_state=self.random_state,
                collect_components=self.collect_components,
            )
            for trace, components in zip(traces, components_per_trace)
        ]

    def _replay_via_socket(self, traces: Sequence[Trace]) -> List[InstanceReplay]:
        """Replay every trace through one gateway over real TCP.

        The socket analogue of :meth:`_replay_via_gateway`: the whole
        fleet sits behind one :class:`~repro.service.WireServer`, each
        instance replays over ``service_clients`` wire connections with
        explicit sequence numbers, and the per-instance accounting is
        fetched back over the wire (STATS op) — so arrays *and*
        accounting cross the socket and must still be bit-identical to
        every other mode, for any shard/connection count.
        """
        from concurrent.futures import ThreadPoolExecutor
        from dataclasses import replace

        from repro.service.gateway import FleetGateway
        from repro.service.wire import WireServer, _SocketReplayContext

        config = self.gateway_config or GatewayConfig()
        config = replace(
            config,
            service=replace(
                self.service_config or config.service,
                collect_components=self.collect_components,
            ),
        )
        gateway = FleetGateway(
            config,
            stage_config=self.stage_config,
            global_model=self.global_model,
            random_state=self.random_state,
        )
        server = WireServer(gateway, self.wire_config)
        with _SocketReplayContext(gateway, server) as ctx:
            for trace in traces:
                ctx.register(trace.instance)

            def replay(trace: Trace):
                return ctx.replay(trace, n_connections=self.service_clients)

            n_submitters = resolve_n_jobs(self.n_jobs, max(len(traces), 1))
            if n_submitters == 1:
                components_per_trace = [replay(trace) for trace in traces]
            else:
                with ThreadPoolExecutor(max_workers=n_submitters) as pool:
                    components_per_trace = list(pool.map(replay, traces))
            instance_stats = ctx.instance_stats()
        return [
            assemble_replay(
                trace,
                components,
                instance_stats[trace.instance.instance_id]["stage"],
                config=self.stage_config,
                global_model=self.global_model,
                random_state=self.random_state,
                collect_components=self.collect_components,
            )
            for trace, components in zip(traces, components_per_trace)
        ]

    # ------------------------------------------------------------------
    def replay_indices(
        self, indices: Iterable[int], duration_days: float
    ) -> List[InstanceReplay]:
        """Generate and replay instances ``indices``, in index order.

        Each worker samples its instance and unrolls its trace itself,
        so results are independent of how work is distributed.  In
        ``via_gateway`` mode the traces are generated up front (they are
        pure functions of ``(fleet_config, index)``) and fed through the
        shared gateway instead.
        """
        self._check_modes()
        if self.via_gateway or self.via_socket:
            gen = FleetGenerator(self.fleet_config)
            traces = [
                gen.generate_trace(gen.sample_instance(int(index)), duration_days)
                for index in indices
            ]
            if self.via_socket:
                return self._replay_via_socket(traces)
            return self._replay_via_gateway(traces)
        payloads = [(self.fleet_config, duration_days, int(index)) for index in indices]
        return self._map(_replay_index_worker, payloads)

    def replay_traces(self, traces: Sequence[Trace]) -> List[InstanceReplay]:
        """Replay pre-built traces, preserving their order."""
        self._check_modes()
        if self.via_socket:
            return self._replay_via_socket(traces)
        if self.via_gateway:
            return self._replay_via_gateway(traces)
        payloads = [(trace,) for trace in traces]
        return self._map(_replay_trace_worker, payloads)
