"""Parallel fleet-sweep engine: replay many instances across processes.

The paper's evaluation (Section 5) replays whole fleets through Stage;
each instance's replay is embarrassingly parallel because every random
stream is derived deterministically from ``(fleet seed, instance index)``
— never from execution order or shared state.  A worker that generates
and replays instance ``i`` therefore produces **bit-identical** arrays
whether it runs inline, in another process, or in any order relative to
its siblings.  ``n_jobs=1`` runs inline (no pool, no pickling), which is
both the fast path on one core and the reference the parity tests
compare against.

Workers are module-level functions so they pickle by reference under any
multiprocessing start method (fork, forkserver, spawn).
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence

from repro.core.config import StageConfig
from repro.global_model.model import GlobalModel
from repro.parallelism import resolve_n_jobs
from repro.workload.fleet import FleetConfig, FleetGenerator
from repro.workload.trace import Trace

from .replay import InstanceReplay, replay_instance

__all__ = ["FleetSweeper", "resolve_n_jobs"]


# ---------------------------------------------------------------------------
# picklable worker payloads + entrypoints
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class _ReplaySettings:
    """Everything a worker needs besides the instance itself."""

    stage_config: Optional[StageConfig]
    global_model: Optional[GlobalModel]
    random_state: int
    collect_components: bool
    component_inference: str


def _replay_trace(trace: Trace, settings: _ReplaySettings) -> InstanceReplay:
    return replay_instance(
        trace,
        global_model=settings.global_model,
        config=settings.stage_config,
        random_state=settings.random_state,
        collect_components=settings.collect_components,
        component_inference=settings.component_inference,
    )


def _replay_index_worker(args) -> InstanceReplay:
    """Generate instance ``index``'s trace and replay it (one task)."""
    fleet_config, duration_days, index, settings = args
    gen = FleetGenerator(fleet_config)
    trace = gen.generate_trace(gen.sample_instance(index), duration_days)
    return _replay_trace(trace, settings)


def _replay_trace_worker(args) -> InstanceReplay:
    """Replay one pre-built trace (one task)."""
    trace, settings = args
    return _replay_trace(trace, settings)


# ---------------------------------------------------------------------------
# the sweeper
# ---------------------------------------------------------------------------
@dataclass
class FleetSweeper:
    """Fans instance replays out over a process pool.

    Parameters mirror :func:`~repro.harness.replay.replay_instance`; the
    sweeper adds fan-out (``n_jobs``) and the choice of feeding it
    instance *indices* (workers generate their own traces — nothing but
    the config and the replay arrays cross process boundaries) or
    pre-built :class:`Trace` objects (pay the trace pickling, but time
    replay in isolation).
    """

    fleet_config: FleetConfig = field(default_factory=FleetConfig)
    stage_config: Optional[StageConfig] = None
    global_model: Optional[GlobalModel] = None
    random_state: int = 0
    collect_components: bool = True
    component_inference: str = "batched"
    #: worker processes; 1 = inline (no pool), ``<=0`` = all cores
    n_jobs: int = 1

    # ------------------------------------------------------------------
    def _settings(self) -> _ReplaySettings:
        return _ReplaySettings(
            stage_config=self.stage_config,
            global_model=self.global_model,
            random_state=self.random_state,
            collect_components=self.collect_components,
            component_inference=self.component_inference,
        )

    def _map(self, worker, tasks: Sequence) -> List[InstanceReplay]:
        n_jobs = resolve_n_jobs(self.n_jobs, len(tasks))
        if n_jobs == 1 or len(tasks) <= 1:
            return [worker(task) for task in tasks]
        with ProcessPoolExecutor(max_workers=n_jobs) as pool:
            return list(pool.map(worker, tasks))

    # ------------------------------------------------------------------
    def replay_indices(
        self, indices: Iterable[int], duration_days: float
    ) -> List[InstanceReplay]:
        """Generate and replay instances ``indices``, in index order.

        Each worker samples its instance and unrolls its trace itself,
        so results are independent of how work is distributed.
        """
        settings = self._settings()
        tasks = [
            (self.fleet_config, duration_days, int(index), settings)
            for index in indices
        ]
        return self._map(_replay_index_worker, tasks)

    def replay_traces(self, traces: Sequence[Trace]) -> List[InstanceReplay]:
        """Replay pre-built traces, preserving their order."""
        settings = self._settings()
        tasks = [(trace, settings) for trace in traces]
        return self._map(_replay_trace_worker, tasks)
