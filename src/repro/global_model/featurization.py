"""Instance-independent featurization for the global model.

Paper Section 4.4: the global model maps query plans from *all*
customers into one space.  Node features come from the plan itself
(:func:`repro.plans.graph.node_feature_matrix`); the per-plan *system
feature vector* adds what else may affect exec-time: instance type,
node count, memory, concurrent query count, and a summary of the plan.
The hidden per-instance speed factor is deliberately absent — it is the
thing the global model cannot know, bounding its accuracy exactly as
the paper observes.
"""

from __future__ import annotations

import numpy as np

from repro.ml.gcn import PlanGraph
from repro.plans import PhysicalPlan, plan_to_graph
from repro.workload.instance import InstanceProfile, N_SYSTEM_FEATURES

__all__ = [
    "SYS_FEATURE_DIM",
    "system_features",
    "record_to_graph",
    "records_to_graphs",
]

# instance features + plan summary (n_nodes, depth, n_joins, log cost)
SYS_FEATURE_DIM = N_SYSTEM_FEATURES + 4


def system_features(
    plan: PhysicalPlan,
    instance: InstanceProfile,
    n_concurrent: float = 0.0,
) -> np.ndarray:
    """The per-plan system vector: instance state + plan summary."""
    plan_summary = np.array(
        [
            float(plan.n_nodes),
            float(plan.depth),
            float(plan.n_joins),
            float(np.log1p(plan.total_estimated_cost)),
        ]
    )
    return np.concatenate([instance.system_features(n_concurrent), plan_summary])


def record_to_graph(
    plan: PhysicalPlan,
    instance: InstanceProfile,
    n_concurrent: float = 0.0,
) -> PlanGraph:
    """Build the GCN input graph for one query on one instance."""
    return plan_to_graph(plan, system_features(plan, instance, n_concurrent))


def records_to_graphs(records, instance: InstanceProfile, n_concurrent: float = 0.0):
    """Graphs for many records of one instance (the trainer's hot loop).

    Featurization dominates dataset-construction cost, so this is the
    unit the sharded trainer fans out to worker processes.
    """
    return [record_to_graph(r.plan, instance, n_concurrent) for r in records]
