"""Transferable global model: fleet-trained GCN over plan graphs."""

from .featurization import (
    SYS_FEATURE_DIM,
    record_to_graph,
    records_to_graphs,
    system_features,
)
from .model import GlobalModel
from .trainer import GlobalModelTrainer
from .serialization import load_global_model, save_global_model

__all__ = [
    "SYS_FEATURE_DIM",
    "record_to_graph",
    "records_to_graphs",
    "system_features",
    "GlobalModel",
    "GlobalModelTrainer",
    "save_global_model",
    "load_global_model",
]
