"""The transferable global model: a directed GCN over plan graphs.

Wraps :class:`~repro.ml.gcn.DirectedGCN` with input scaling and the
log-target transform, exposing a per-query :meth:`predict` in seconds.
One trained :class:`GlobalModel` is shared by every instance's Stage
predictor — it is the fleet-level component of the hierarchy.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.core.interfaces import Prediction, PredictionSource
from repro.ml.gcn import DirectedGCN, PlanGraph
from repro.ml.intervals import NOMINAL_CONFIDENCE, z_for
from repro.ml.preprocessing import LogTargetTransform, StandardScaler
from repro.plans import PhysicalPlan
from repro.workload.instance import InstanceProfile

from .featurization import record_to_graph

__all__ = ["GlobalModel"]


class GlobalModel:
    """A trained GCN + its input scalers (built by ``GlobalModelTrainer``)."""

    def __init__(
        self,
        gcn: DirectedGCN,
        node_scaler: StandardScaler,
        sys_scaler: StandardScaler,
        transform: LogTargetTransform | None = None,
        residual_variance: float = 0.0,
    ):
        self.gcn = gcn
        self.node_scaler = node_scaler
        self.sys_scaler = sys_scaler
        self.transform = transform or LogTargetTransform()
        #: log-space variance of the training residuals (the model's
        #: residual-variance head, fit by ``GlobalModelTrainer``); 0 for
        #: models trained before the head existed — intervals then
        #: collapse to the point estimate
        self.residual_variance = float(residual_variance)

    # ------------------------------------------------------------------
    def _scale_graph(self, graph: PlanGraph) -> PlanGraph:
        return PlanGraph(
            node_features=self.node_scaler.transform(graph.node_features),
            edges=graph.edges,
            root=graph.root,
            sys_features=self.sys_scaler.transform(
                graph.sys_features[None, :]
            )[0],
        )

    def predict_graphs(self, graphs: List[PlanGraph]) -> np.ndarray:
        """Vectorized inference: exec-time in seconds per graph."""
        scaled = [self._scale_graph(g) for g in graphs]
        log_pred = self.gcn.predict_graphs(scaled)
        return self.transform.inverse(log_pred)

    def predict_graphs_with_interval(self, graphs: List[PlanGraph]):
        """``(seconds, interval_low, interval_high)`` per graph.

        The interval comes from the residual-variance head: a constant
        log-space half-width ``z * sqrt(residual_variance)`` around each
        prediction, mapped through the (monotone) inverse transform with
        the lower bound clamped at zero.  The point column is arithmetic-
        identical to :meth:`predict_graphs`.
        """
        scaled = [self._scale_graph(g) for g in graphs]
        log_pred = self.gcn.predict_graphs(scaled)
        seconds = self.transform.inverse(log_pred)
        if self.residual_variance <= 0.0:
            return seconds, seconds.copy(), seconds.copy()
        half = z_for(NOMINAL_CONFIDENCE) * float(np.sqrt(self.residual_variance))
        low = np.maximum(self.transform.inverse(log_pred - half), 0.0)
        high = self.transform.inverse(log_pred + half)
        return seconds, low, high

    def predict(
        self,
        plan: PhysicalPlan,
        instance: InstanceProfile,
        n_concurrent: float = 0.0,
    ) -> Prediction:
        """Predict one query's exec-time on ``instance``."""
        graph = record_to_graph(plan, instance, n_concurrent)
        seconds, low, high = self.predict_graphs_with_interval([graph])
        return Prediction(
            exec_time=float(seconds[0]),
            variance=self.residual_variance,
            source=PredictionSource.GLOBAL,
            interval_low=float(low[0]),
            interval_high=float(high[0]),
        )

    def predict_many(
        self,
        plans: List[PhysicalPlan],
        instance: InstanceProfile,
        n_concurrent: float = 0.0,
    ) -> List[Prediction]:
        """Batched :meth:`predict` — **bit-identical** to the per-plan loop.

        One order-stable GCN forward
        (:meth:`~repro.ml.gcn.DirectedGCN.predict_graphs_stable`) covers
        the whole batch instead of one ``GraphBatch`` of 1 per plan;
        every downstream step (target inverse transform, interval
        half-width, clamping) is elementwise, so each returned
        :class:`Prediction` carries exactly the floats the per-plan call
        would.  This is the serving fast path for global-model fallbacks.
        """
        if not plans:
            return []
        graphs = [
            record_to_graph(plan, instance, n_concurrent) for plan in plans
        ]
        scaled = [self._scale_graph(g) for g in graphs]
        log_pred = self.gcn.predict_graphs_stable(scaled)
        seconds = self.transform.inverse(log_pred)
        if self.residual_variance <= 0.0:
            low = high = seconds
        else:
            half = z_for(NOMINAL_CONFIDENCE) * float(
                np.sqrt(self.residual_variance)
            )
            low = np.maximum(self.transform.inverse(log_pred - half), 0.0)
            high = self.transform.inverse(log_pred + half)
        return [
            Prediction(
                exec_time=float(seconds[i]),
                variance=self.residual_variance,
                source=PredictionSource.GLOBAL,
                interval_low=float(low[i]),
                interval_high=float(high[i]),
            )
            for i in range(len(plans))
        ]

    def byte_size(self) -> int:
        return self.gcn.byte_size()
