"""The transferable global model: a directed GCN over plan graphs.

Wraps :class:`~repro.ml.gcn.DirectedGCN` with input scaling and the
log-target transform, exposing a per-query :meth:`predict` in seconds.
One trained :class:`GlobalModel` is shared by every instance's Stage
predictor — it is the fleet-level component of the hierarchy.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.core.interfaces import Prediction, PredictionSource
from repro.ml.gcn import DirectedGCN, PlanGraph
from repro.ml.preprocessing import LogTargetTransform, StandardScaler
from repro.plans import PhysicalPlan
from repro.workload.instance import InstanceProfile

from .featurization import record_to_graph

__all__ = ["GlobalModel"]


class GlobalModel:
    """A trained GCN + its input scalers (built by ``GlobalModelTrainer``)."""

    def __init__(
        self,
        gcn: DirectedGCN,
        node_scaler: StandardScaler,
        sys_scaler: StandardScaler,
        transform: LogTargetTransform | None = None,
    ):
        self.gcn = gcn
        self.node_scaler = node_scaler
        self.sys_scaler = sys_scaler
        self.transform = transform or LogTargetTransform()

    # ------------------------------------------------------------------
    def _scale_graph(self, graph: PlanGraph) -> PlanGraph:
        return PlanGraph(
            node_features=self.node_scaler.transform(graph.node_features),
            edges=graph.edges,
            root=graph.root,
            sys_features=self.sys_scaler.transform(
                graph.sys_features[None, :]
            )[0],
        )

    def predict_graphs(self, graphs: List[PlanGraph]) -> np.ndarray:
        """Vectorized inference: exec-time in seconds per graph."""
        scaled = [self._scale_graph(g) for g in graphs]
        log_pred = self.gcn.predict_graphs(scaled)
        return self.transform.inverse(log_pred)

    def predict(
        self,
        plan: PhysicalPlan,
        instance: InstanceProfile,
        n_concurrent: float = 0.0,
    ) -> Prediction:
        """Predict one query's exec-time on ``instance``."""
        graph = record_to_graph(plan, instance, n_concurrent)
        exec_time = float(self.predict_graphs([graph])[0])
        return Prediction(
            exec_time=exec_time,
            variance=0.0,
            source=PredictionSource.GLOBAL,
        )

    def byte_size(self) -> int:
        return self.gcn.byte_size()
