"""Save/load for the global model.

The paper's deployment plan ships one global model fleet-wide ("deployed
as a serverless Lambda function that every Redshift instance can
invoke", Section 5.3) — which requires the trained model to be an
artifact.  This module serializes the GCN weights, input scalers and
architecture hyper-parameters into one ``.npz`` file.
"""

from __future__ import annotations

import numpy as np

from repro.ml.gcn import DirectedGCN
from repro.ml.preprocessing import LogTargetTransform, StandardScaler

from .model import GlobalModel

__all__ = ["save_global_model", "load_global_model"]

#: version 2 added ``residual_variance`` (the interval head); version-1
#: files are still readable and load with a zero head.
_FORMAT_VERSION = 2
_READABLE_VERSIONS = (1, 2)


def save_global_model(model: GlobalModel, path: str) -> None:
    """Serialize a trained :class:`GlobalModel` to ``path`` (``.npz``)."""
    gcn = model.gcn
    arrays = {f"param_{i}": p.value for i, p in enumerate(gcn.parameters())}
    arrays["meta"] = np.array(
        [
            _FORMAT_VERSION,
            gcn.n_node_features,
            gcn.n_sys_features,
            gcn.hidden_dim,
            len(gcn.convs),
            len(gcn.parameters()),
        ],
        dtype=np.int64,
    )
    arrays["aggregation"] = np.array([gcn.aggregation])
    arrays["node_scaler_mean"] = model.node_scaler.mean_
    arrays["node_scaler_scale"] = model.node_scaler.scale_
    arrays["sys_scaler_mean"] = model.sys_scaler.mean_
    arrays["sys_scaler_scale"] = model.sys_scaler.scale_
    arrays["max_seconds"] = np.array([model.transform.max_seconds])
    arrays["residual_variance"] = np.array([model.residual_variance])
    np.savez_compressed(path, **arrays)


def load_global_model(path: str) -> GlobalModel:
    """Load a :class:`GlobalModel` saved by :func:`save_global_model`."""
    with np.load(path, allow_pickle=False) as data:
        meta = data["meta"]
        version = int(meta[0])
        if version not in _READABLE_VERSIONS:
            raise ValueError(f"unsupported global-model format version {version}")
        n_node_features = int(meta[1])
        n_sys_features = int(meta[2])
        hidden_dim = int(meta[3])
        n_conv_layers = int(meta[4])
        n_params = int(meta[5])

        gcn = DirectedGCN(
            n_node_features=n_node_features,
            n_sys_features=n_sys_features,
            hidden_dim=hidden_dim,
            n_conv_layers=n_conv_layers,
            dropout=0.0,  # inference only; dropout is a no-op in eval
            aggregation=str(data["aggregation"][0]),
            random_state=0,
        )
        params = gcn.parameters()
        if len(params) != n_params:
            raise ValueError(
                "architecture mismatch while loading global model: "
                f"expected {n_params} parameters, built {len(params)}"
            )
        for i, p in enumerate(params):
            value = data[f"param_{i}"]
            if value.shape != p.value.shape:
                raise ValueError(f"parameter {i} shape mismatch: {value.shape} vs {p.value.shape}")
            p.value = value.copy()

        node_scaler = StandardScaler()
        node_scaler.mean_ = data["node_scaler_mean"].copy()
        node_scaler.scale_ = data["node_scaler_scale"].copy()
        sys_scaler = StandardScaler()
        sys_scaler.mean_ = data["sys_scaler_mean"].copy()
        sys_scaler.scale_ = data["sys_scaler_scale"].copy()
        transform = LogTargetTransform(max_seconds=float(data["max_seconds"][0]))
        residual_variance = (
            float(data["residual_variance"][0]) if version >= 2 else 0.0
        )
    return GlobalModel(
        gcn, node_scaler, sys_scaler, transform, residual_variance=residual_variance
    )
