"""Offline training of the global model across a fleet of instances.

The paper trains one GCN on executed queries from hundreds of instances
disjoint from the evaluation set (Section 5.1).  The trainer consumes
:class:`~repro.workload.trace.Trace` objects from *training* instances,
subsamples a per-instance cap (so one chatty dashboard cluster cannot
dominate), fits input scalers, and trains the GCN on ``log1p`` targets.
"""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

from repro.core.config import GlobalModelConfig
from repro.ml.gcn import DirectedGCN
from repro.ml.preprocessing import LogTargetTransform, StandardScaler
from repro.plans.graph import NODE_FEATURE_DIM
from repro.workload.trace import Trace

from .featurization import SYS_FEATURE_DIM, record_to_graph
from .model import GlobalModel

__all__ = ["GlobalModelTrainer"]


class GlobalModelTrainer:
    """Builds the training set and fits a :class:`GlobalModel`."""

    def __init__(self, config: GlobalModelConfig | None = None):
        self.config = config or GlobalModelConfig()

    # ------------------------------------------------------------------
    def build_dataset(self, traces: Iterable[Trace]):
        """``(graphs, targets)`` with the per-instance sampling cap.

        Sampling is deduplicated by query identity: repeated executions
        of an identical query would otherwise dominate the dataset with
        copies of one plan.  (The paper trains on executed queries from
        each instance — its fleet sweep also collapses identical plans.)
        """
        cfg = self.config
        graphs, targets = [], []
        for trace in traces:
            rng = np.random.default_rng(cfg.random_state + len(graphs))
            seen = set()
            candidates = []
            for record in trace:
                if record.identity in seen:
                    continue
                seen.add(record.identity)
                candidates.append(record)
            if len(candidates) > cfg.max_queries_per_instance:
                idx = rng.choice(
                    len(candidates),
                    size=cfg.max_queries_per_instance,
                    replace=False,
                )
                candidates = [candidates[i] for i in sorted(idx)]
            for record in candidates:
                graphs.append(
                    record_to_graph(record.plan, trace.instance, 0.0)
                )
                targets.append(record.exec_time)
        return graphs, np.asarray(targets)

    # ------------------------------------------------------------------
    def train(self, traces: Iterable[Trace], verbose: bool = False) -> GlobalModel:
        """Fit scalers + GCN on the given training traces."""
        cfg = self.config
        graphs, targets = self.build_dataset(traces)
        if not graphs:
            raise ValueError("no training data: empty traces")

        node_scaler = StandardScaler().fit(
            np.vstack([g.node_features for g in graphs])
        )
        sys_scaler = StandardScaler().fit(
            np.vstack([g.sys_features for g in graphs])
        )
        transform = LogTargetTransform()

        gcn = DirectedGCN(
            n_node_features=NODE_FEATURE_DIM,
            n_sys_features=SYS_FEATURE_DIM,
            hidden_dim=cfg.hidden_dim,
            n_conv_layers=cfg.n_conv_layers,
            dropout=cfg.dropout,
            random_state=cfg.random_state,
        )
        model = GlobalModel(gcn, node_scaler, sys_scaler, transform)
        scaled = [model._scale_graph(g) for g in graphs]
        gcn.fit(
            scaled,
            transform.transform(targets),
            epochs=cfg.epochs,
            batch_size=cfg.batch_size,
            lr=cfg.learning_rate,
            weight_decay=cfg.weight_decay,
            verbose=verbose,
        )
        return model
