"""Offline training of the global model across a fleet of instances.

The paper trains one GCN on executed queries from hundreds of instances
disjoint from the evaluation set (Section 5.1).  The trainer consumes
:class:`~repro.workload.trace.Trace` objects from *training* instances,
subsamples a per-instance cap (so one chatty dashboard cluster cannot
dominate), fits input scalers, and trains the GCN on ``log1p`` targets.

Dataset construction (dedup + subsample + graph featurization) is the
dominant cost at fleet scale and is embarrassingly parallel, so it
shards over a process pool (``n_jobs`` on :class:`GlobalModelConfig` or
:meth:`GlobalModelTrainer.train`).  Two invariants make sharding
invisible — any ``n_jobs`` and any shard assignment produce a
bit-identical dataset, scalers, and model:

- every trace's subsampler is seeded from ``(random_state, instance
  id)`` alone, never from how many graphs precede it;
- scaler moments are computed per trace and merged **in trace order**
  in the parent (:class:`~repro.ml.preprocessing.RunningMoments`), so
  the reduction never depends on shard boundaries.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import GlobalModelConfig
from repro.ml.gcn import DirectedGCN
from repro.ml.preprocessing import (
    LogTargetTransform,
    RunningMoments,
    StandardScaler,
)
from repro.parallelism import pool_map, resolve_n_jobs
from repro.plans.graph import NODE_FEATURE_DIM
from repro.workload.seeding import derive_seed
from repro.workload.trace import Trace

from .featurization import SYS_FEATURE_DIM, records_to_graphs
from .model import GlobalModel

__all__ = ["GlobalModelTrainer", "subsample_trace"]


# ---------------------------------------------------------------------------
# per-trace dataset construction (picklable, order-independent)
# ---------------------------------------------------------------------------
def subsample_trace(trace: Trace, config: GlobalModelConfig):
    """Deduplicated, capped training records for one trace.

    Sampling is deduplicated by query identity: repeated executions of an
    identical query would otherwise dominate the dataset with copies of
    one plan.  (The paper trains on executed queries from each instance —
    its fleet sweep also collapses identical plans.)

    The subsampler's seed derives from ``(random_state, instance id)``
    only — a trace draws the same sample regardless of its position in
    the input ordering or which shard processed it.
    """
    rng = np.random.default_rng(
        derive_seed(config.random_state, "subsample", trace.instance.instance_id)
    )
    seen = set()
    candidates = []
    for record in trace:
        if record.identity in seen:
            continue
        seen.add(record.identity)
        candidates.append(record)
    if len(candidates) > config.max_queries_per_instance:
        idx = rng.choice(
            len(candidates),
            size=config.max_queries_per_instance,
            replace=False,
        )
        candidates = [candidates[i] for i in sorted(idx)]
    return candidates


def _featurize_trace(trace: Trace, config: GlobalModelConfig, want_moments: bool = True):
    """``(graphs, targets, node_moments, sys_moments)`` for one trace.

    Self-contained per trace so it can run in any process: moments are
    accumulated here (one numpy batch per trace) and merged by the
    parent in trace order.  ``want_moments=False`` skips the moment
    pass (and its feature-matrix copies) for graphs-only callers; the
    moment slots come back empty.
    """
    records = subsample_trace(trace, config)
    graphs = records_to_graphs(records, trace.instance, 0.0)
    targets = np.array([r.exec_time for r in records], dtype=np.float64)
    node_moments = RunningMoments(NODE_FEATURE_DIM)
    sys_moments = RunningMoments(SYS_FEATURE_DIM)
    if want_moments and graphs:
        node_moments.update(np.vstack([g.node_features for g in graphs]))
        sys_moments.update(np.vstack([g.sys_features for g in graphs]))
    return graphs, targets, node_moments, sys_moments


def _featurize_shard_worker(args) -> List[tuple]:
    """Process-pool entrypoint: featurize one shard of traces.

    Returns the *per-trace* tuples unmerged — the parent owns the merge
    order, which is what keeps the reduction shard-stable.
    """
    traces, config, want_moments = args
    return [_featurize_trace(trace, config, want_moments) for trace in traces]


def _shard(items: Sequence, n_shards: int) -> List[list]:
    """Split into ``n_shards`` contiguous chunks, sizes within one."""
    n_shards = max(1, min(n_shards, len(items)))
    bounds = np.linspace(0, len(items), n_shards + 1).astype(int)
    return [list(items[bounds[i] : bounds[i + 1]]) for i in range(n_shards)]


class GlobalModelTrainer:
    """Builds the training set and fits a :class:`GlobalModel`."""

    def __init__(self, config: GlobalModelConfig | None = None):
        self.config = config or GlobalModelConfig()

    # ------------------------------------------------------------------
    def _build(
        self,
        traces: Iterable[Trace],
        n_jobs: Optional[int],
        want_moments: bool = True,
    ) -> Tuple[list, np.ndarray, RunningMoments, RunningMoments]:
        """Sharded dataset construction with ordered moment merging."""
        cfg = self.config
        traces = list(traces)
        if n_jobs is None:
            n_jobs = cfg.n_jobs
        n_jobs = resolve_n_jobs(n_jobs, len(traces))

        tasks = [(shard, cfg, want_moments) for shard in _shard(traces, n_jobs)]
        shards = pool_map(_featurize_shard_worker, tasks, n_jobs)
        per_trace = [entry for shard in shards for entry in shard]

        graphs: list = []
        targets: List[np.ndarray] = []
        node_moments = RunningMoments(NODE_FEATURE_DIM)
        sys_moments = RunningMoments(SYS_FEATURE_DIM)
        for trace_graphs, trace_targets, node_m, sys_m in per_trace:
            graphs.extend(trace_graphs)
            targets.append(trace_targets)
            node_moments.merge(node_m)
            sys_moments.merge(sys_m)
        flat_targets = np.concatenate(targets) if targets else np.zeros(0)
        return graphs, flat_targets, node_moments, sys_moments

    def build_dataset(self, traces: Iterable[Trace], n_jobs: Optional[int] = None):
        """``(graphs, targets)`` with the per-instance sampling cap.

        ``n_jobs`` overrides ``config.n_jobs`` when given; any value
        yields a bit-identical dataset (see the module docstring).
        """
        graphs, targets, _, __ = self._build(traces, n_jobs, want_moments=False)
        return graphs, targets

    # ------------------------------------------------------------------
    def train(
        self,
        traces: Iterable[Trace],
        verbose: bool = False,
        n_jobs: Optional[int] = None,
    ) -> GlobalModel:
        """Fit scalers + GCN on the given training traces.

        ``n_jobs`` shards dataset construction (``None`` defers to
        ``config.n_jobs``); the fitted model is bit-identical for any
        value.
        """
        cfg = self.config
        graphs, targets, node_moments, sys_moments = self._build(traces, n_jobs)
        if not graphs:
            raise ValueError("no training data: empty traces")

        node_scaler = StandardScaler.from_moments(node_moments)
        sys_scaler = StandardScaler.from_moments(sys_moments)
        transform = LogTargetTransform()

        gcn = DirectedGCN(
            n_node_features=NODE_FEATURE_DIM,
            n_sys_features=SYS_FEATURE_DIM,
            hidden_dim=cfg.hidden_dim,
            n_conv_layers=cfg.n_conv_layers,
            dropout=cfg.dropout,
            random_state=cfg.random_state,
        )
        model = GlobalModel(gcn, node_scaler, sys_scaler, transform)
        scaled = [model._scale_graph(g) for g in graphs]
        log_targets = transform.transform(targets)
        gcn.fit(
            scaled,
            log_targets,
            epochs=cfg.epochs,
            batch_size=cfg.batch_size,
            lr=cfg.learning_rate,
            weight_decay=cfg.weight_decay,
            verbose=verbose,
        )
        # residual-variance head: fit post hoc on the training residuals
        # in log space.  This never touches the GCN weights, so point
        # predictions are unchanged by its existence.
        residuals = log_targets - gcn.predict_graphs(scaled)
        model.residual_variance = float(np.mean(residuals**2))
        return model
