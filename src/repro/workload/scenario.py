"""Declarative stress scenarios layered on top of :class:`FleetConfig`.

A :class:`ScenarioConfig` composes the workload mutations the paper's
robustness story is about — flash-crowd burst storms, tenant onboarding
waves, template churn, seasonal load cycles, instance resizes that shift
the latent latency model, and ANALYZE outages that stretch statistics
epochs — as *knobs*, with all defaults off.  Embedding one in
``FleetConfig.scenario`` turns it on for every trace that config
generates.

The parity contract every mutation must uphold: scenarios are pure,
per-instance-seeded transforms.  :class:`InstanceScenario` realizes a
config for one instance by drawing every random element from
``derive_seed(instance seed, "scenario", <mutation label>)`` — separate
streams per mutation, never the trace's main RNG — so

- a null scenario (or ``scenario=None``) leaves the baseline trace
  byte-identical (no extra draws on the shared stream);
- any ``n_jobs`` regenerates bit-identical traces (workers rebuild from
  ``(FleetConfig, instance index)`` alone, and the scenario rides inside
  the config);
- mutations compose without perturbing each other's randomness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from .arrival import SECONDS_PER_DAY, burst_windows, seasonal_thin
from .drift import ResizeSchedule, sample_outage_windows
from .seeding import derive_seed

__all__ = ["ScenarioConfig", "InstanceScenario"]


@dataclass(frozen=True)
class ScenarioConfig:
    """Workload-mutation knobs; every default is "off".

    Rates are per week so a knob reads the same at any trace duration.
    """

    # --- burst storms: flash-crowd arrival surges -----------------------
    #: expected flash-crowd storms per instance-week (0 = off)
    burst_storms_per_week: float = 0.0
    #: length of each storm window, hours
    burst_duration_hours: float = 2.0
    #: arrival-rate multiplier inside a storm window (>= 1)
    burst_multiplier: float = 5.0

    # --- tenant onboarding waves: cold instances joining mid-sweep ------
    #: fraction of instances that onboard mid-trace instead of at day 0
    onboard_fraction: float = 0.0
    #: onboarding day is uniform in ``[0, window_fraction * duration]``
    onboard_window_fraction: float = 0.6

    # --- template churn: dashboards/reports retired and replaced --------
    #: expected retirements per template-week (dashboards + reports)
    churn_rate_per_week: float = 0.0

    # --- seasonal/weekly load cycles ------------------------------------
    #: peak-to-trough depth of the load cycle, in [0, 1] (0 = off)
    seasonal_amplitude: float = 0.0
    #: cycle length in days (7 = weekly)
    seasonal_period_days: float = 7.0

    # --- instance resizes: the latent latency model shifts ---------------
    #: expected resize events per instance-week (0 = off)
    resize_events_per_week: float = 0.0
    #: log-uniform resize factor range (speed and memory multiply)
    resize_factor_low: float = 0.5
    resize_factor_high: float = 2.0

    # --- ANALYZE outages: statistics epochs stretch ----------------------
    #: expected outage windows per instance-week (0 = off)
    analyze_outages_per_week: float = 0.0
    #: length of each outage window, days
    analyze_outage_days: float = 2.0

    def __post_init__(self):
        for name in (
            "burst_storms_per_week",
            "churn_rate_per_week",
            "resize_events_per_week",
            "analyze_outages_per_week",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")
        if self.burst_duration_hours <= 0:
            raise ValueError("burst_duration_hours must be positive")
        if self.burst_multiplier < 1:
            raise ValueError("burst_multiplier must be >= 1")
        if not 0 <= self.onboard_fraction <= 1:
            raise ValueError("onboard_fraction must be in [0, 1]")
        if not 0 < self.onboard_window_fraction <= 1:
            raise ValueError("onboard_window_fraction must be in (0, 1]")
        if not 0 <= self.seasonal_amplitude <= 1:
            raise ValueError("seasonal_amplitude must be in [0, 1]")
        if self.seasonal_period_days <= 0:
            raise ValueError("seasonal_period_days must be positive")
        if not 0 < self.resize_factor_low <= self.resize_factor_high:
            raise ValueError("need 0 < resize_factor_low <= resize_factor_high")
        if self.analyze_outage_days <= 0:
            raise ValueError("analyze_outage_days must be positive")

    @property
    def is_null(self) -> bool:
        """Whether every mutation is off (the baseline workload)."""
        return (
            self.burst_storms_per_week == 0
            and self.onboard_fraction == 0
            and self.churn_rate_per_week == 0
            and self.seasonal_amplitude == 0
            and self.resize_events_per_week == 0
            and self.analyze_outages_per_week == 0
        )


class InstanceScenario:
    """One instance's realization of a :class:`ScenarioConfig`.

    Draws every window/event/day from streams derived from
    ``(instance seed, "scenario", label)``, then exposes the pieces the
    fleet generator applies: burst windows, the onboarding cut, the
    seasonal filter, the resize schedule and the ANALYZE outages.
    """

    def __init__(self, config: ScenarioConfig, instance_seed: int, duration_days: float):
        if duration_days <= 0:
            raise ValueError("duration_days must be positive")
        self.config = config
        self.instance_seed = instance_seed
        self.duration_days = duration_days

        self.burst_windows: List[Tuple[float, float]] = []
        if config.burst_storms_per_week > 0:
            self.burst_windows = burst_windows(
                self.rng("burst"),
                0.0,
                duration_days * SECONDS_PER_DAY,
                config.burst_storms_per_week,
                config.burst_duration_hours,
            )

        self.onboard_day = 0.0
        if config.onboard_fraction > 0:
            rng = self.rng("onboard")
            if rng.random() < config.onboard_fraction:
                self.onboard_day = float(
                    rng.uniform(0.0, config.onboard_window_fraction * duration_days)
                )

        self.resize: Optional[ResizeSchedule] = None
        if config.resize_events_per_week > 0:
            self.resize = ResizeSchedule.sample(
                self.rng("resize"),
                duration_days,
                config.resize_events_per_week,
                config.resize_factor_low,
                config.resize_factor_high,
            )

        self.analyze_outages: List[Tuple[float, float]] = []
        if config.analyze_outages_per_week > 0:
            self.analyze_outages = sample_outage_windows(
                self.rng("analyze"),
                duration_days,
                config.analyze_outages_per_week,
                config.analyze_outage_days,
            )

    # ------------------------------------------------------------------
    @classmethod
    def realize(
        cls,
        config: Optional[ScenarioConfig],
        instance_seed: int,
        duration_days: float,
    ) -> Optional["InstanceScenario"]:
        """The instance's scenario, or ``None`` when there is nothing on."""
        if config is None or config.is_null:
            return None
        return cls(config, instance_seed, duration_days)

    def rng(self, *labels) -> np.random.Generator:
        """An independent stream for one mutation of this instance."""
        return np.random.default_rng(derive_seed(self.instance_seed, "scenario", *labels))

    # ------------------------------------------------------------------
    def filter_arrivals(self, arrivals: list) -> list:
        """Apply the onboarding cut and the seasonal cycle.

        ``arrivals`` are time-sorted tuples keyed by arrival seconds
        (any trailing payload).  Run *after* sorting so the thinning
        stream is independent of template iteration order.
        """
        if self.onboard_day > 0:
            cut = self.onboard_day * SECONDS_PER_DAY
            arrivals = [a for a in arrivals if a[0] >= cut]
        if self.config.seasonal_amplitude > 0:
            arrivals = seasonal_thin(
                self.rng("seasonal"),
                arrivals,
                self.config.seasonal_amplitude,
                self.config.seasonal_period_days,
            )
        return arrivals

    def speed_factor(self, day: float) -> float:
        """Resize multiplier on effective speed/memory at ``day``."""
        if self.resize is None:
            return 1.0
        return self.resize.factor_at(day)
