"""Arrival processes for the four workload archetypes.

Each function returns a list of ``(arrival_time_seconds, variant_id)``
pairs over a trace window.  The processes encode why Redshift sees so
much repetition (paper Figure 1a):

- **dashboards** refresh on a fixed period with jitter and draw from a
  small pool of parameter variants -> heavy exact repetition;
- **reports** run a few times per day; their parameters embed the date,
  so runs repeat within a day but look new across days;
- **ad-hoc** analysis arrives as a Poisson process concentrated in
  business hours; most arrivals are brand-new parameterizations, with an
  occasional re-run of a recent query;
- **ETL** jobs run nightly with date-partition parameters.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

__all__ = [
    "dashboard_arrivals",
    "report_arrivals",
    "adhoc_arrivals",
    "etl_arrivals",
    "SECONDS_PER_DAY",
]

SECONDS_PER_DAY = 86_400.0


def _clip_window(events, t_start, t_end):
    return [(t, v) for t, v in events if t_start <= t < t_end]


def dashboard_arrivals(
    rng: np.random.Generator,
    t_start: float,
    t_end: float,
    period_s: float,
    n_variants: int = 1,
    jitter_frac: float = 0.05,
) -> List[Tuple[float, int]]:
    """Periodic refreshes with jitter, cycling a small variant pool."""
    if period_s <= 0:
        raise ValueError("period_s must be positive")
    events = []
    t = t_start + rng.uniform(0, period_s)
    while t < t_end:
        variant = int(rng.integers(0, n_variants))
        events.append((t + rng.normal(0, jitter_frac * period_s), variant))
        t += period_s
    return _clip_window(events, t_start, t_end)


def report_arrivals(
    rng: np.random.Generator,
    t_start: float,
    t_end: float,
    runs_per_day: float,
) -> List[Tuple[float, int]]:
    """Business-hour report runs; the variant id is the day number.

    Repeated runs within a day share a variant (same date parameter), so
    the second run of the day is an exact repeat - the cache catches it.
    """
    events = []
    first_day = int(t_start // SECONDS_PER_DAY)
    last_day = int(np.ceil(t_end / SECONDS_PER_DAY))
    for day in range(first_day, last_day):
        n_runs = rng.poisson(runs_per_day)
        for _ in range(n_runs):
            # 9:00-18:00 bell centred on early afternoon
            hour = float(np.clip(rng.normal(13.0, 2.5), 7.0, 21.0))
            t = day * SECONDS_PER_DAY + hour * 3600.0
            events.append((t, day))
    return _clip_window(sorted(events), t_start, t_end)


def adhoc_arrivals(
    rng: np.random.Generator,
    t_start: float,
    t_end: float,
    mean_per_day: float,
    rerun_probability: float = 0.2,
    next_variant_start: int = 0,
) -> List[Tuple[float, int]]:
    """Poisson ad-hoc queries; mostly fresh variants, sometimes re-runs.

    ``rerun_probability`` is the chance an analyst re-executes one of the
    last few queries (e.g. after a tweak elsewhere); re-runs produce exact
    repeats, everything else is a new variant id.
    """
    if not 0 <= rerun_probability <= 1:
        raise ValueError("rerun_probability must be in [0, 1]")
    duration_days = (t_end - t_start) / SECONDS_PER_DAY
    n = rng.poisson(mean_per_day * duration_days)
    # business-hour concentration via a truncated normal per event
    times = []
    for _ in range(n):
        day = rng.uniform(t_start / SECONDS_PER_DAY, t_end / SECONDS_PER_DAY)
        hour = float(np.clip(rng.normal(13.0, 3.5), 0.0, 24.0))
        times.append(int(day) * SECONDS_PER_DAY + hour * 3600.0)
    times.sort()

    events = []
    variant = next_variant_start
    recent: List[int] = []
    for t in times:
        if recent and rng.random() < rerun_probability:
            v = int(recent[int(rng.integers(0, len(recent)))])
        else:
            v = variant
            variant += 1
            recent.append(v)
            if len(recent) > 5:
                recent.pop(0)
        events.append((t, v))
    return _clip_window(events, t_start, t_end)


def etl_arrivals(
    rng: np.random.Generator,
    t_start: float,
    t_end: float,
    runs_per_day: float = 2.0,
) -> List[Tuple[float, int]]:
    """Nightly batch jobs; the variant id is the day (new data partition)."""
    events = []
    first_day = int(t_start // SECONDS_PER_DAY)
    last_day = int(np.ceil(t_end / SECONDS_PER_DAY))
    for day in range(first_day, last_day):
        n_runs = max(1, rng.poisson(runs_per_day))
        for _ in range(n_runs):
            hour = float(rng.uniform(0.0, 6.0))  # night window
            events.append((day * SECONDS_PER_DAY + hour * 3600.0, day))
    return _clip_window(sorted(events), t_start, t_end)
