"""Arrival processes for the four workload archetypes.

Each function returns a list of ``(arrival_time_seconds, variant_id)``
pairs over a trace window.  The processes encode why Redshift sees so
much repetition (paper Figure 1a):

- **dashboards** refresh on a fixed period with jitter and draw from a
  small pool of parameter variants -> heavy exact repetition;
- **reports** run a few times per day; their parameters embed the date,
  so runs repeat within a day but look new across days;
- **ad-hoc** analysis arrives as a Poisson process concentrated in
  business hours; most arrivals are brand-new parameterizations, with an
  occasional re-run of a recent query;
- **ETL** jobs run nightly with date-partition parameters.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

__all__ = [
    "dashboard_arrivals",
    "report_arrivals",
    "adhoc_arrivals",
    "etl_arrivals",
    "burst_windows",
    "burst_arrivals",
    "seasonal_keep_probability",
    "seasonal_thin",
    "SECONDS_PER_DAY",
]

SECONDS_PER_DAY = 86_400.0


def _check_window(t_start: float, t_end: float) -> None:
    if not t_end > t_start:
        raise ValueError(f"t_end must be > t_start, got [{t_start}, {t_end})")


def _check_nonnegative_rate(name: str, value: float) -> None:
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value}")


def _clip_window(events, t_start, t_end):
    return [(t, v) for t, v in events if t_start <= t < t_end]


def dashboard_arrivals(
    rng: np.random.Generator,
    t_start: float,
    t_end: float,
    period_s: float,
    n_variants: int = 1,
    jitter_frac: float = 0.05,
) -> List[Tuple[float, int]]:
    """Periodic refreshes with jitter, cycling a small variant pool."""
    _check_window(t_start, t_end)
    if period_s <= 0:
        raise ValueError("period_s must be positive")
    if n_variants < 1:
        raise ValueError("n_variants must be >= 1")
    if jitter_frac < 0:
        raise ValueError("jitter_frac must be >= 0")
    events = []
    t = t_start + rng.uniform(0, period_s)
    while t < t_end:
        variant = int(rng.integers(0, n_variants))
        events.append((t + rng.normal(0, jitter_frac * period_s), variant))
        t += period_s
    return _clip_window(events, t_start, t_end)


def report_arrivals(
    rng: np.random.Generator,
    t_start: float,
    t_end: float,
    runs_per_day: float,
) -> List[Tuple[float, int]]:
    """Business-hour report runs; the variant id is the day number.

    Repeated runs within a day share a variant (same date parameter), so
    the second run of the day is an exact repeat - the cache catches it.
    """
    _check_window(t_start, t_end)
    _check_nonnegative_rate("runs_per_day", runs_per_day)
    events = []
    first_day = int(t_start // SECONDS_PER_DAY)
    last_day = int(np.ceil(t_end / SECONDS_PER_DAY))
    for day in range(first_day, last_day):
        n_runs = rng.poisson(runs_per_day)
        for _ in range(n_runs):
            # 9:00-18:00 bell centred on early afternoon
            hour = float(np.clip(rng.normal(13.0, 2.5), 7.0, 21.0))
            t = day * SECONDS_PER_DAY + hour * 3600.0
            events.append((t, day))
    return _clip_window(sorted(events), t_start, t_end)


def adhoc_arrivals(
    rng: np.random.Generator,
    t_start: float,
    t_end: float,
    mean_per_day: float,
    rerun_probability: float = 0.2,
    next_variant_start: int = 0,
) -> List[Tuple[float, int]]:
    """Poisson ad-hoc queries; mostly fresh variants, sometimes re-runs.

    ``rerun_probability`` is the chance an analyst re-executes one of the
    last few queries (e.g. after a tweak elsewhere); re-runs produce exact
    repeats, everything else is a new variant id.
    """
    _check_window(t_start, t_end)
    _check_nonnegative_rate("mean_per_day", mean_per_day)
    if not 0 <= rerun_probability <= 1:
        raise ValueError("rerun_probability must be in [0, 1]")
    duration_days = (t_end - t_start) / SECONDS_PER_DAY
    n = rng.poisson(mean_per_day * duration_days)
    # business-hour concentration via a truncated normal per event
    times = []
    for _ in range(n):
        day = rng.uniform(t_start / SECONDS_PER_DAY, t_end / SECONDS_PER_DAY)
        hour = float(np.clip(rng.normal(13.0, 3.5), 0.0, 24.0))
        times.append(int(day) * SECONDS_PER_DAY + hour * 3600.0)
    times.sort()

    events = []
    variant = next_variant_start
    recent: List[int] = []
    for t in times:
        if recent and rng.random() < rerun_probability:
            v = int(recent[int(rng.integers(0, len(recent)))])
        else:
            v = variant
            variant += 1
            recent.append(v)
            if len(recent) > 5:
                recent.pop(0)
        events.append((t, v))
    return _clip_window(events, t_start, t_end)


def etl_arrivals(
    rng: np.random.Generator,
    t_start: float,
    t_end: float,
    runs_per_day: float = 2.0,
) -> List[Tuple[float, int]]:
    """Nightly batch jobs; the variant id is the day (new data partition)."""
    _check_window(t_start, t_end)
    _check_nonnegative_rate("runs_per_day", runs_per_day)
    events = []
    first_day = int(t_start // SECONDS_PER_DAY)
    last_day = int(np.ceil(t_end / SECONDS_PER_DAY))
    for day in range(first_day, last_day):
        n_runs = max(1, rng.poisson(runs_per_day))
        for _ in range(n_runs):
            hour = float(rng.uniform(0.0, 6.0))  # night window
            events.append((day * SECONDS_PER_DAY + hour * 3600.0, day))
    return _clip_window(sorted(events), t_start, t_end)


# ---------------------------------------------------------------------------
# scenario-engine generators: burst storms and seasonal load cycles
# ---------------------------------------------------------------------------
def burst_windows(
    rng: np.random.Generator,
    t_start: float,
    t_end: float,
    storms_per_week: float,
    duration_hours: float,
) -> List[Tuple[float, float]]:
    """Flash-crowd windows: Poisson storm count, uniform starts.

    Each window is ``[start, start + duration_hours)`` clipped to the
    trace, sorted by start time.  A storm models the paper's headline
    failure mode for naive predictors: a sudden surge of arrivals (an
    incident dashboard, a viral report) far above the steady-state rate.
    """
    _check_window(t_start, t_end)
    _check_nonnegative_rate("storms_per_week", storms_per_week)
    if duration_hours <= 0:
        raise ValueError("duration_hours must be positive")
    weeks = (t_end - t_start) / (7.0 * SECONDS_PER_DAY)
    n = int(rng.poisson(storms_per_week * weeks))
    starts = np.sort(rng.uniform(t_start, t_end, size=n))
    length = duration_hours * 3600.0
    return [(float(s), float(min(s + length, t_end))) for s in starts]


def burst_arrivals(
    rng: np.random.Generator,
    windows: Sequence[Tuple[float, float]],
    rate_per_day: float,
    variant_mode: str = "fresh",
    n_variants: int = 1,
    next_variant_start: int = 0,
) -> List[Tuple[float, int]]:
    """Extra arrivals superimposed inside flash-crowd ``windows``.

    ``variant_mode`` sets what the crowd runs:

    - ``"pool"`` — re-runs of an existing variant pool (a flash crowd
      hammering the same dashboards: heavy exact repetition, cache
      pressure at surge volume);
    - ``"day"`` — the date-parameterized variant of the window's day
      (reports/ETL re-fired during the surge);
    - ``"fresh"`` — brand-new variant ids from ``next_variant_start``
      (a crowd of analysts issuing never-seen queries: cold-start storm).
    """
    if variant_mode not in ("pool", "day", "fresh"):
        raise ValueError(f"unknown variant_mode {variant_mode!r}")
    _check_nonnegative_rate("rate_per_day", rate_per_day)
    if variant_mode == "pool" and n_variants < 1:
        raise ValueError("n_variants must be >= 1 in pool mode")
    events: List[Tuple[float, int]] = []
    variant = next_variant_start
    for w_start, w_end in windows:
        _check_window(w_start, w_end)
        n = int(rng.poisson(rate_per_day * (w_end - w_start) / SECONDS_PER_DAY))
        times = np.sort(rng.uniform(w_start, w_end, size=n))
        for t in times:
            if variant_mode == "pool":
                v = int(rng.integers(0, n_variants))
            elif variant_mode == "day":
                v = int(t // SECONDS_PER_DAY)
            else:
                v = variant
                variant += 1
            events.append((float(t), v))
    return events


def seasonal_keep_probability(time_s: float, amplitude: float, period_days: float) -> float:
    """Retention probability of an arrival at ``time_s`` under a cycle.

    A cosine load cycle peaking at the period start, normalized so the
    peak keeps everything: ``(1 + A*cos(2*pi*t/period)) / (1 + A)``.
    """
    if not 0 <= amplitude <= 1:
        raise ValueError("amplitude must be in [0, 1]")
    if period_days <= 0:
        raise ValueError("period_days must be positive")
    phase = 2.0 * np.pi * time_s / (period_days * SECONDS_PER_DAY)
    return float((1.0 + amplitude * np.cos(phase)) / (1.0 + amplitude))


def seasonal_thin(
    rng: np.random.Generator,
    events: Sequence[tuple],
    amplitude: float,
    period_days: float,
) -> List[tuple]:
    """Thin time-keyed ``events`` to a seasonal (e.g. weekly) load cycle.

    Works on any tuples whose first element is the arrival time in
    seconds.  Events must arrive time-sorted — the thinning consumes one
    RNG draw per event in iteration order, so an unsorted composition
    bug would silently reshuffle which events survive.  That contract is
    enforced: non-monotone arrival times raise ``ValueError`` naming the
    offending index.
    """
    if not 0 <= amplitude <= 1:
        raise ValueError("amplitude must be in [0, 1]")
    if period_days <= 0:
        raise ValueError("period_days must be positive")
    events = list(events)
    previous = None
    for index, event in enumerate(events):
        time_s = event[0]
        if previous is not None and time_s < previous:
            raise ValueError(
                f"events must be time-sorted: event {index} arrives at "
                f"{time_s} after {previous}"
            )
        previous = time_s
    if amplitude == 0:
        return events
    # validated above; inline the keep rule so the per-event loop pays
    # no redundant range checks at fleet scale
    omega = 2.0 * np.pi / (period_days * SECONDS_PER_DAY)
    kept = []
    for event in events:
        p = (1.0 + amplitude * np.cos(omega * event[0])) / (1.0 + amplitude)
        if rng.random() < p:
            kept.append(event)
    return kept
