"""The latent true-cost model: what actually determines exec-time.

The paper's production traces embed a ground truth our synthetic fleet
must recreate: execution time is driven by the *true* work of a plan
(true cardinalities, operator mix, data format), scaled by the cluster's
hardware and a hidden per-instance speed factor, and perturbed by system
load, concurrency and occasional disk spills (paper Sections 5.3, 6.3).

Crucially, predictors never see this module's outputs directly — they see
the optimizer's *estimates* (which embed cardinality-estimation error)
and the observed exec-times.  The gap between estimate and truth is what
makes prediction hard, and the hidden instance factor is what caps the
global model's accuracy (the paper's "nearly identical plans ... with
drastically different performances", Section 5.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np

from repro.plans import OperatorClass

__all__ = ["CostModelParams", "TrueCostModel"]


@dataclass
class CostModelParams:
    """Coefficients of the latent runtime cost model.

    ``work`` units are calibrated so that one unit of work on a
    speed-1.0 cluster takes one second.
    """

    # seconds of work per (true) output row, by operator class
    row_cost: Dict[OperatorClass, float] = field(
        default_factory=lambda: {
            OperatorClass.SCAN: 2.2e-6,
            OperatorClass.JOIN: 9.0e-6,
            OperatorClass.AGGREGATE: 5.0e-6,
            OperatorClass.SORT: 7.0e-6,
            OperatorClass.NETWORK: 3.0e-6,
            OperatorClass.MATERIALIZE: 2.5e-6,
            OperatorClass.OTHER: 1.2e-6,
        }
    )
    # external-table scan penalty by S3 format (local storage = 1.0)
    s3_penalty: Dict[str, float] = field(
        default_factory=lambda: {
            "local": 1.0,
            "parquet": 1.8,
            "opencsv": 4.0,
            "text": 3.2,
            "null": 1.0,
        }
    )
    # fixed per-query overhead (compile/dispatch), seconds
    startup_min: float = 0.004
    startup_max: float = 0.020
    # lognormal sigma of the run-to-run load noise
    load_sigma_min: float = 0.12
    load_sigma_max: float = 0.45
    # memory-contention spills: queries whose base runtime exceeds the
    # (memory-scaled) threshold occasionally spill to disk and slow down
    spill_probability: float = 0.08
    spill_slowdown_min: float = 2.0
    spill_slowdown_max: float = 6.0
    # base threshold in seconds per 50 GB of cluster memory (min 5 s)
    spill_threshold_s_per_50gb: float = 1.0
    # hard ceiling on a single execution (WLM aborts runaways), seconds
    max_exec_time: float = 15_000.0


class TrueCostModel:
    """Computes latent work and samples observed execution times."""

    def __init__(self, params: CostModelParams | None = None):
        self.params = params or CostModelParams()

    # ------------------------------------------------------------------
    def node_work(
        self, op_class: OperatorClass, true_card: float, width: float, s3_format: str = "null"
    ) -> float:
        """Latent work (seconds at speed 1.0) of one operator."""
        p = self.params
        width_factor = max(width, 4.0) / 32.0
        work = p.row_cost[op_class] * true_card * width_factor
        if op_class is OperatorClass.SCAN:
            work *= p.s3_penalty.get(s3_format, 1.0)
        return work

    # ------------------------------------------------------------------
    def exec_time(
        self,
        base_work: float,
        effective_speed: float,
        memory_gb: float,
        rng: np.random.Generator,
        load_sigma: float,
        concurrency: int = 1,
    ) -> float:
        """Sample one observed execution time.

        Parameters
        ----------
        base_work:
            Total latent work of the plan (sum of :meth:`node_work`),
            already scaled for data growth.
        effective_speed:
            Cluster speed (hardware class x node count x hidden factor).
        memory_gb:
            Per-cluster memory; drives spill probability for big queries.
        rng:
            Source of the run-to-run randomness.
        load_sigma:
            Instance-level lognormal load-noise sigma.
        concurrency:
            Number of concurrently running queries when this one executed;
            mild slowdown per extra query (resource sharing).
        """
        p = self.params
        base = base_work / max(effective_speed, 1e-9)
        # lognormal noise with mean 1 (mu = -sigma^2/2)
        noise = rng.lognormal(mean=-0.5 * load_sigma**2, sigma=load_sigma)
        concurrency_factor = 1.0 + 0.06 * max(concurrency - 1, 0)

        # Memory contention: queries that are long relative to the cluster's
        # memory occasionally spill intermediate state to disk.  This is the
        # mechanism behind the paper's observation that the same query can
        # take "tens of seconds to several hundred seconds" (Section 5.3).
        spill = 1.0
        spill_threshold = max(5.0, p.spill_threshold_s_per_50gb * memory_gb / 50.0)
        if base > spill_threshold and rng.random() < p.spill_probability:
            spill = rng.uniform(p.spill_slowdown_min, p.spill_slowdown_max)

        startup = rng.uniform(p.startup_min, p.startup_max)
        return min(
            startup + base * noise * concurrency_factor * spill,
            p.max_exec_time,
        )
