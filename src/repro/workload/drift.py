"""Data and workload drift: the dynamics that break naive predictors.

Two mechanisms from the paper:

- **statistics epochs** (:class:`AnalyzeSchedule`): tables grow
  continuously, but the optimizer's statistics only refresh when ANALYZE
  runs.  Between refreshes, estimates go stale (the cache's freshness
  problem, Section 4.2); at a refresh the plan is re-costed, its feature
  vector changes, and the exec-time cache cold-misses.
- **workload shift** (:func:`sample_template_start_days`): some templates
  only appear mid-trace (new dashboards, new pipelines).  Those are the
  queries the local model is uncertain about, routing to the global
  model (Section 4.4).

The scenario engine (:mod:`repro.workload.scenario`) layers three more
drift mechanisms on top: ANALYZE *outages* that suppress refreshes and
stretch statistics epochs (:func:`sample_outage_windows` +
``AnalyzeSchedule(outages=...)``), template *churn* that retires and
replaces recurring queries (:func:`sample_template_retirements`), and
cluster *resizes* that shift the latent latency model mid-trace
(:class:`ResizeSchedule`).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from .arrival import SECONDS_PER_DAY

__all__ = [
    "AnalyzeSchedule",
    "ResizeSchedule",
    "sample_outage_windows",
    "sample_template_retirements",
    "sample_template_start_days",
]


def _validate_day_windows(windows: Sequence[Tuple[float, float]]) -> List[Tuple[float, float]]:
    """Check ``(start_day, end_day)`` windows and return them sorted."""
    checked = []
    for window in windows:
        start, end = float(window[0]), float(window[1])
        if start < 0:
            raise ValueError(f"window start must be >= 0, got {start}")
        if not end > start:
            raise ValueError(f"window end must be > start, got ({start}, {end})")
        checked.append((start, end))
    return sorted(checked)


class AnalyzeSchedule:
    """Maps a query's arrival time to its statistics epoch.

    Epoch ``e`` covers arrivals in ``[boundary[e-1], boundary[e])``; the
    optimizer's believed row counts within epoch ``e`` are the true row
    counts frozen at the epoch's opening ANALYZE.

    ``outages`` is an optional list of ``(start_day, end_day)`` windows
    during which ANALYZE does not run (maintenance freezes, vacuum
    backlogs): boundaries falling inside an outage are suppressed, so
    the preceding epoch stretches across the outage and its statistics
    go *staler* than the interval alone would allow — the scenario
    engine's ``analyze_outage`` stress.  The boundary stream is drawn
    exactly as without outages and filtered afterwards, so the same
    ``rng`` yields a schedule whose surviving boundaries are a subset
    of the outage-free schedule's.
    """

    def __init__(
        self,
        duration_days: float,
        interval_days: float,
        rng: np.random.Generator,
        outages: Optional[Sequence[Tuple[float, float]]] = None,
    ):
        if duration_days <= 0:
            raise ValueError("duration_days must be positive")
        if interval_days <= 0:
            raise ValueError("interval_days must be positive")
        outages = _validate_day_windows(outages or ())
        boundaries = []
        t = rng.uniform(0.2, 1.0) * interval_days
        while t < duration_days:
            if not any(start <= t < end for start, end in outages):
                boundaries.append(t * SECONDS_PER_DAY)
            # jittered interval so epochs don't align across instances
            t += interval_days * rng.uniform(0.7, 1.3)
        self.boundaries: List[float] = boundaries

    def epoch_at(self, time_s: float) -> int:
        """Statistics epoch index for an arrival at ``time_s``."""
        return int(np.searchsorted(self.boundaries, time_s, side="right"))

    def epoch_start_day(self, epoch: int) -> float:
        """Day at which ``epoch``'s statistics were collected."""
        if epoch <= 0:
            return 0.0
        return self.boundaries[epoch - 1] / SECONDS_PER_DAY

    @property
    def n_epochs(self) -> int:
        return len(self.boundaries) + 1


def sample_template_start_days(
    rng: np.random.Generator,
    n_templates: int,
    duration_days: float,
    late_fraction: float = 0.2,
) -> np.ndarray:
    """Start day of each template; a ``late_fraction`` appear mid-trace.

    Late templates model workload change: brand-new queries the instance
    has never seen, which stress the cold-start path of the predictors.
    """
    if n_templates < 0:
        raise ValueError("n_templates must be >= 0")
    if duration_days <= 0:
        raise ValueError("duration_days must be positive")
    if not 0 <= late_fraction <= 1:
        raise ValueError("late_fraction must be in [0, 1]")
    starts = np.zeros(n_templates)
    late = rng.random(n_templates) < late_fraction
    starts[late] = rng.uniform(0, duration_days * 0.8, size=int(late.sum()))
    return starts


# ---------------------------------------------------------------------------
# scenario-engine drift generators
# ---------------------------------------------------------------------------
def sample_outage_windows(
    rng: np.random.Generator,
    duration_days: float,
    outages_per_week: float,
    outage_days: float,
) -> List[Tuple[float, float]]:
    """ANALYZE-outage windows: Poisson count, uniform starts, fixed length.

    Returns sorted ``(start_day, end_day)`` windows clipped to the trace,
    for :class:`AnalyzeSchedule`'s ``outages`` parameter.
    """
    if duration_days <= 0:
        raise ValueError("duration_days must be positive")
    if outages_per_week < 0:
        raise ValueError("outages_per_week must be >= 0")
    if outage_days <= 0:
        raise ValueError("outage_days must be positive")
    n = int(rng.poisson(outages_per_week * duration_days / 7.0))
    starts = np.sort(rng.uniform(0.0, duration_days, size=n))
    return [(float(s), float(min(s + outage_days, duration_days))) for s in starts]


def sample_template_retirements(
    rng: np.random.Generator,
    start_days: Sequence[float],
    duration_days: float,
    churn_rate_per_week: float,
) -> np.ndarray:
    """Retirement day per template (``inf`` = survives the trace).

    Template churn: dashboards and reports get replaced as teams iterate.
    Lifetimes are exponential with mean ``7 / churn_rate_per_week`` days,
    so ``churn_rate_per_week`` is the expected number of retirements per
    template-week.  Retirements past the trace end are reported as
    ``inf`` — the template never disappears within the window.
    """
    if duration_days <= 0:
        raise ValueError("duration_days must be positive")
    if churn_rate_per_week < 0:
        raise ValueError("churn_rate_per_week must be >= 0")
    starts = np.asarray(start_days, dtype=np.float64)
    if churn_rate_per_week == 0 or starts.size == 0:
        return np.full(starts.shape, np.inf)
    lifetimes = rng.exponential(7.0 / churn_rate_per_week, size=starts.shape)
    ends = starts + lifetimes
    ends[ends >= duration_days] = np.inf
    return ends


class ResizeSchedule:
    """Cluster resize events: step changes to the latent latency model.

    Each event ``(day, factor)`` multiplies the instance's effective
    speed and memory from ``day`` onward (factors compound).  The paper's
    predictors never see the resize directly — plan features and system
    features are unchanged — so cached exec-times and learned history
    stop transferring, exactly the stress *Pre-Execution Query Slot-Time
    Prediction* motivates for warehouse resizes.
    """

    def __init__(self, events: Sequence[Tuple[float, float]] = ()):
        checked = []
        for event in events:
            day, factor = float(event[0]), float(event[1])
            if day < 0:
                raise ValueError(f"resize day must be >= 0, got {day}")
            if factor <= 0:
                raise ValueError(f"resize factor must be positive, got {factor}")
            checked.append((day, factor))
        self.events: List[Tuple[float, float]] = sorted(checked)

    @classmethod
    def sample(
        cls,
        rng: np.random.Generator,
        duration_days: float,
        events_per_week: float,
        factor_low: float,
        factor_high: float,
    ) -> "ResizeSchedule":
        """Poisson event count, uniform days, log-uniform factors."""
        if duration_days <= 0:
            raise ValueError("duration_days must be positive")
        if events_per_week < 0:
            raise ValueError("events_per_week must be >= 0")
        if not 0 < factor_low <= factor_high:
            raise ValueError(
                f"need 0 < factor_low <= factor_high, got ({factor_low}, {factor_high})"
            )
        n = int(rng.poisson(events_per_week * duration_days / 7.0))
        days = np.sort(rng.uniform(0.0, duration_days, size=n))
        factors = np.exp(rng.uniform(np.log(factor_low), np.log(factor_high), size=n))
        return cls(list(zip(days.tolist(), factors.tolist())))

    def factor_at(self, day: float) -> float:
        """Compounded speed/memory multiplier in effect at ``day``."""
        factor = 1.0
        for event_day, event_factor in self.events:
            if event_day > day:
                break
            factor *= event_factor
        return factor

    def __len__(self) -> int:
        return len(self.events)
