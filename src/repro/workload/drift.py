"""Data and workload drift: the dynamics that break naive predictors.

Two mechanisms from the paper:

- **statistics epochs** (:class:`AnalyzeSchedule`): tables grow
  continuously, but the optimizer's statistics only refresh when ANALYZE
  runs.  Between refreshes, estimates go stale (the cache's freshness
  problem, Section 4.2); at a refresh the plan is re-costed, its feature
  vector changes, and the exec-time cache cold-misses.
- **workload shift** (:func:`sample_template_start_days`): some templates
  only appear mid-trace (new dashboards, new pipelines).  Those are the
  queries the local model is uncertain about, routing to the global
  model (Section 4.4).
"""

from __future__ import annotations

from typing import List

import numpy as np

from .arrival import SECONDS_PER_DAY

__all__ = ["AnalyzeSchedule", "sample_template_start_days"]


class AnalyzeSchedule:
    """Maps a query's arrival time to its statistics epoch.

    Epoch ``e`` covers arrivals in ``[boundary[e-1], boundary[e])``; the
    optimizer's believed row counts within epoch ``e`` are the true row
    counts frozen at the epoch's opening ANALYZE.
    """

    def __init__(self, duration_days: float, interval_days: float, rng: np.random.Generator):
        if interval_days <= 0:
            raise ValueError("interval_days must be positive")
        boundaries = []
        t = rng.uniform(0.2, 1.0) * interval_days
        while t < duration_days:
            boundaries.append(t * SECONDS_PER_DAY)
            # jittered interval so epochs don't align across instances
            t += interval_days * rng.uniform(0.7, 1.3)
        self.boundaries: List[float] = boundaries

    def epoch_at(self, time_s: float) -> int:
        """Statistics epoch index for an arrival at ``time_s``."""
        return int(np.searchsorted(self.boundaries, time_s, side="right"))

    def epoch_start_day(self, epoch: int) -> float:
        """Day at which ``epoch``'s statistics were collected."""
        if epoch <= 0:
            return 0.0
        return self.boundaries[epoch - 1] / SECONDS_PER_DAY

    @property
    def n_epochs(self) -> int:
        return len(self.boundaries) + 1


def sample_template_start_days(
    rng: np.random.Generator,
    n_templates: int,
    duration_days: float,
    late_fraction: float = 0.2,
) -> np.ndarray:
    """Start day of each template; a ``late_fraction`` appear mid-trace.

    Late templates model workload change: brand-new queries the instance
    has never seen, which stress the cold-start path of the predictors.
    """
    if not 0 <= late_fraction <= 1:
        raise ValueError("late_fraction must be in [0, 1]")
    starts = np.zeros(n_templates)
    late = rng.random(n_templates) < late_fraction
    starts[late] = rng.uniform(0, duration_days * 0.8, size=int(late.sum()))
    return starts
