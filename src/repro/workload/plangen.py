"""Synthetic physical-plan generation.

Redshift's parser/optimizer is not available, so this module plays its
role: given an instance's tables and a workload archetype, it generates
*template specs* (the latent structure of a recurring SQL statement) and
materializes them into :class:`~repro.plans.PhysicalPlan` trees with
optimizer-style estimates.

Two parallel worlds are maintained on purpose:

- **estimates** (visible to predictors): computed from the statistics the
  optimizer knew at the last ANALYZE, with simple cost formulas;
- **truth** (visible only to the latency model): true cardinalities carry
  multiplicative estimation errors that compound up the join tree, the
  classic behaviour of real cardinality estimators.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Dict, List, Tuple

import numpy as np

from repro.plans import OperatorClass, PhysicalPlan, PlanNode

from .latency import TrueCostModel
from .query import QueryKind

__all__ = ["KIND_PROFILES", "KindProfile", "TemplateSpec", "MaterializedPlan", "PlanGenerator"]


@dataclass(frozen=True)
class KindProfile:
    """Structural ranges of one workload archetype."""

    min_joins: int
    max_joins: int
    log10_sel_min: float
    log10_sel_max: float
    prefers_small_tables: bool
    agg_probability: float
    sort_probability: float
    limit_probability: float
    query_types: Tuple[str, ...]


KIND_PROFILES: Dict[str, KindProfile] = {
    QueryKind.DASHBOARD: KindProfile(
        min_joins=0,
        max_joins=2,
        log10_sel_min=-4.0,
        log10_sel_max=-1.0,
        prefers_small_tables=True,
        agg_probability=0.9,
        sort_probability=0.6,
        limit_probability=0.7,
        query_types=("select",),
    ),
    QueryKind.REPORT: KindProfile(
        min_joins=2,
        max_joins=4,
        log10_sel_min=-1.8,
        log10_sel_max=-0.7,
        prefers_small_tables=False,
        agg_probability=0.95,
        sort_probability=0.8,
        limit_probability=0.3,
        query_types=("select",),
    ),
    QueryKind.ADHOC: KindProfile(
        min_joins=1,
        max_joins=6,
        log10_sel_min=-4.5,
        log10_sel_max=-0.8,
        prefers_small_tables=False,
        agg_probability=0.7,
        sort_probability=0.5,
        limit_probability=0.4,
        query_types=("select", "select", "select", "ctas"),
    ),
    QueryKind.ETL: KindProfile(
        min_joins=2,
        max_joins=7,
        log10_sel_min=-1.5,
        log10_sel_max=-0.5,
        prefers_small_tables=False,
        agg_probability=0.6,
        sort_probability=0.3,
        limit_probability=0.05,
        query_types=("insert", "update", "delete", "ctas", "copy"),
    ),
}

_SCAN_OPS = ("seq_scan", "seq_scan_compressed", "range_scan", "subquery_scan")
_S3_SCAN_OPS = ("s3_seq_scan", "s3_partition_scan", "spectrum_scan")
_JOIN_OPS = (
    "hash_join",
    "distributed_hash_join",
    "broadcast_hash_join",
    "merge_join",
    "hash_left_join",
    "hash_semi_join",
)
_AGG_OPS = ("aggregate", "hash_aggregate", "grouped_aggregate")
_SORT_OPS = ("sort", "order_by", "top_n_sort")
_NETWORK_OPS = ("ds_dist_inner", "ds_bcast_inner", "ds_dist_none", "redistribute")

# Optimizer cost-formula coefficients (arbitrary planner units).  These are
# deliberately *different* from the runtime coefficients in
# :class:`~repro.workload.latency.CostModelParams` so estimated cost is a
# correlated-but-imperfect signal of true work.
_OPT_COST = {
    OperatorClass.SCAN: 1.0,
    OperatorClass.JOIN: 3.2,
    OperatorClass.AGGREGATE: 1.8,
    OperatorClass.SORT: 2.4,
    OperatorClass.NETWORK: 0.9,
    OperatorClass.MATERIALIZE: 1.1,
    OperatorClass.OTHER: 0.5,
}


@dataclass
class _ScanSpec:
    table_index: int
    selectivity: float
    scan_op: str
    width: float
    card_error: float  # true/estimated multiplicative error


@dataclass
class _JoinSpec:
    fan: float  # output rows relative to the larger input
    join_op: str
    width: float
    card_error: float
    network_op: str | None


@dataclass
class TemplateSpec:
    """Latent structure of one recurring query (a SQL template)."""

    kind: str
    query_type: str
    scans: List[_ScanSpec]
    joins: List[_JoinSpec]
    agg_op: str | None
    agg_reduction: float
    agg_card_error: float
    sort_op: str | None
    has_limit: bool
    limit_rows: float = 100.0


@dataclass
class MaterializedPlan:
    """A plan with optimizer estimates plus its hidden true work."""

    plan: PhysicalPlan
    base_work: float  # latent work at growth factor 1.0 (seconds at speed 1)
    true_root_card: float


class PlanGenerator:
    """Builds template specs and materializes them into plans."""

    def __init__(self, cost_model: TrueCostModel | None = None):
        self.cost_model = cost_model or TrueCostModel()

    # ------------------------------------------------------------------
    # template / variant construction
    # ------------------------------------------------------------------
    def build_template(self, rng: np.random.Generator, kind: str, tables) -> TemplateSpec:
        """Sample a fresh template of the given archetype over ``tables``."""
        profile = KIND_PROFILES[kind]
        n_joins = int(rng.integers(profile.min_joins, profile.max_joins + 1))
        n_scans = n_joins + 1

        order = np.argsort([t.base_rows for t in tables])
        if profile.prefers_small_tables:
            # dashboards mostly hit dimensions and mid-size tables
            pool = order[: max(2, (3 * len(tables)) // 4)]
        else:
            pool = np.arange(len(tables))

        scans = []
        for _ in range(n_scans):
            ti = int(rng.choice(pool))
            table = tables[ti]
            log_sel = rng.uniform(profile.log10_sel_min, profile.log10_sel_max)
            # Analysts filter big tables harder: shrink selectivity as the
            # table grows, which keeps per-archetype output cardinalities
            # (and hence exec-times) in a band instead of spanning the full
            # table-size range.
            log_sel = min(log_sel - 0.55 * (np.log10(table.base_rows) - 7.0), 0.0)
            scan_op = (
                str(rng.choice(_S3_SCAN_OPS))
                if table.s3_format != "local"
                else str(rng.choice(_SCAN_OPS))
            )
            scans.append(
                _ScanSpec(
                    table_index=ti,
                    selectivity=10.0**log_sel,
                    scan_op=scan_op,
                    width=float(rng.uniform(8, 160)),
                    card_error=float(rng.lognormal(0.0, 0.4)),
                )
            )

        joins = []
        for _ in range(n_joins):
            joins.append(
                _JoinSpec(
                    fan=float(min(rng.lognormal(np.log(0.55), 0.5), 2.5)),
                    join_op=str(rng.choice(_JOIN_OPS)),
                    width=float(rng.uniform(16, 200)),
                    card_error=float(rng.lognormal(0.0, 0.55)),
                    network_op=(
                        str(rng.choice(_NETWORK_OPS))
                        if rng.random() < 0.5
                        else None
                    ),
                )
            )

        has_agg = rng.random() < profile.agg_probability
        has_sort = rng.random() < profile.sort_probability
        return TemplateSpec(
            kind=kind,
            query_type=str(rng.choice(profile.query_types)),
            scans=scans,
            joins=joins,
            agg_op=str(rng.choice(_AGG_OPS)) if has_agg else None,
            agg_reduction=float(10.0 ** rng.uniform(-4, -0.5)),
            agg_card_error=float(rng.lognormal(0.0, 0.3)),
            sort_op=str(rng.choice(_SORT_OPS)) if has_sort else None,
            has_limit=rng.random() < profile.limit_probability,
            limit_rows=float(rng.choice([10, 100, 1000])),
        )

    def perturb_variant(self, rng: np.random.Generator, spec: TemplateSpec) -> TemplateSpec:
        """A parameter variant: same SQL shape, different constants.

        Models re-running a template with different filter values: scan
        selectivities shift, join fans wiggle, estimation errors redraw.
        The resulting feature vector is *close to* but not identical to
        the base template's — the "slight modifications of past-seen
        queries" the local model is designed to catch (Section 4).
        """
        scans = [
            replace(
                s,
                selectivity=float(
                    np.clip(s.selectivity * rng.lognormal(0.0, 0.5), 1e-8, 1.0)
                ),
                card_error=float(rng.lognormal(0.0, 0.4)),
            )
            for s in spec.scans
        ]
        joins = [
            replace(
                j,
                fan=float(j.fan * rng.lognormal(0.0, 0.25)),
                card_error=float(rng.lognormal(0.0, 0.55)),
            )
            for j in spec.joins
        ]
        return replace(spec, scans=scans, joins=joins)

    # ------------------------------------------------------------------
    # materialization
    # ------------------------------------------------------------------
    def materialize(
        self,
        spec: TemplateSpec,
        tables,
        stat_rows: Dict[int, float],
        growth_factor: float = 1.0,
    ) -> MaterializedPlan:
        """Build the plan tree with estimates and compute hidden work.

        ``stat_rows`` maps table index -> row count the optimizer believes
        (set at the last ANALYZE); true rows are ``base_rows *
        growth_factor``.  Stale statistics therefore show up as an extra
        gap between estimated and true cardinalities.
        """
        cm = self.cost_model
        total_work = 0.0

        def scan_node(s: _ScanSpec):
            nonlocal total_work
            table = tables[s.table_index]
            est_rows = stat_rows.get(s.table_index, table.base_rows)
            est_card = max(est_rows * s.selectivity, 1.0)
            true_card = max(
                table.base_rows * growth_factor * s.selectivity * s.card_error,
                1.0,
            )
            node = PlanNode(
                s.scan_op,
                estimated_cost=_OPT_COST[OperatorClass.SCAN] * est_card,
                estimated_cardinality=est_card,
                width=s.width,
                s3_format=table.s3_format,
                table_rows=est_rows,
                table_name=table.name,
            )
            total_work += cm.node_work(OperatorClass.SCAN, true_card, s.width, table.s3_format)
            return node, est_card, true_card

        def wrap_network(op, child, est_card, true_card, width):
            nonlocal total_work
            node = PlanNode(
                op,
                estimated_cost=_OPT_COST[OperatorClass.NETWORK] * est_card,
                estimated_cardinality=est_card,
                width=width,
                children=[child],
            )
            total_work += cm.node_work(OperatorClass.NETWORK, true_card, width)
            return node

        current, est_card, true_card = scan_node(spec.scans[0])
        width = spec.scans[0].width
        for join_spec, scan_spec in zip(spec.joins, spec.scans[1:]):
            right, r_est, r_true = scan_node(scan_spec)
            if join_spec.network_op is not None:
                right = wrap_network(join_spec.network_op, right, r_est, r_true, scan_spec.width)
            out_est = max(join_spec.fan * max(est_card, r_est), 1.0)
            out_true = max(
                join_spec.fan * max(true_card, r_true) * join_spec.card_error,
                1.0,
            )
            join_cost = _OPT_COST[OperatorClass.JOIN] * (est_card + r_est + out_est)
            current = PlanNode(
                join_spec.join_op,
                estimated_cost=join_cost,
                estimated_cardinality=out_est,
                width=join_spec.width,
                children=[current, right],
            )
            # runtime work of a join scales with inputs + output
            total_work += cm.node_work(
                OperatorClass.JOIN,
                true_card + r_true + out_true,
                join_spec.width,
            )
            est_card, true_card, width = out_est, out_true, join_spec.width

        if spec.agg_op is not None:
            out_est = max(est_card * spec.agg_reduction, 1.0)
            out_true = max(true_card * spec.agg_reduction * spec.agg_card_error, 1.0)
            current = PlanNode(
                spec.agg_op,
                estimated_cost=_OPT_COST[OperatorClass.AGGREGATE] * est_card,
                estimated_cardinality=out_est,
                width=width,
                children=[current],
            )
            total_work += cm.node_work(OperatorClass.AGGREGATE, true_card, width)
            est_card, true_card = out_est, out_true

        if spec.sort_op is not None:
            sort_cost = (
                _OPT_COST[OperatorClass.SORT]
                * est_card
                * max(math.log(est_card + 2.0), 1.0)
            )
            current = PlanNode(
                spec.sort_op,
                estimated_cost=sort_cost,
                estimated_cardinality=est_card,
                width=width,
                children=[current],
            )
            total_work += cm.node_work(
                OperatorClass.SORT,
                true_card * max(math.log(true_card + 2.0) / 10.0, 0.2),
                width,
            )

        if spec.has_limit:
            est_card = min(est_card, spec.limit_rows)
            true_card = min(true_card, spec.limit_rows)
            current = PlanNode(
                "limit",
                estimated_cost=current.estimated_cost,
                estimated_cardinality=est_card,
                width=width,
                children=[current],
            )

        plan = PhysicalPlan(root=current, query_type=spec.query_type)
        return MaterializedPlan(plan=plan, base_work=total_work, true_root_card=true_card)
