"""Query records flowing through traces and the replay harness.

A :class:`QueryRecord` is one logged query execution, the analogue of a
row the paper reads from Redshift's system tables: when it arrived, the
physical plan the optimizer produced, and the execution time that was
actually observed in production (including whatever load/spill noise the
system experienced).

Repeated queries share the *same* plan object and feature vector, exactly
like identical SQL re-planned against unchanged statistics — this is what
makes the exec-time cache hit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.plans import PhysicalPlan, featurize_plan

__all__ = ["QueryKind", "QueryRecord"]


class QueryKind:
    """Workload archetypes a template can belong to."""

    DASHBOARD = "dashboard"
    REPORT = "report"
    ADHOC = "adhoc"
    ETL = "etl"

    ALL = (DASHBOARD, REPORT, ADHOC, ETL)


@dataclass
class QueryRecord:
    """One executed query in a trace.

    Attributes
    ----------
    query_id:
        Unique id within the trace.
    instance_id:
        The cluster the query ran on.
    template_id / variant_id:
        Which template instantiation produced the query; two records with
        the same ``(template_id, variant_id, plan_epoch)`` are *identical
        queries* in the paper's sense (same SQL, same parameters).
    plan_epoch:
        Statistics epoch: bumped when an ANALYZE refreshes optimizer
        stats, which re-plans the query and changes its feature vector.
    arrival_time:
        Seconds since the trace start.
    plan:
        The physical plan (shared across repeats).
    exec_time:
        Observed execution seconds (the production log value).
    kind:
        Workload archetype (dashboard / report / adhoc / etl).
    """

    query_id: int
    instance_id: str
    template_id: int
    variant_id: int
    plan_epoch: int
    arrival_time: float
    plan: PhysicalPlan
    exec_time: float
    kind: str = QueryKind.ADHOC
    _features: Optional[np.ndarray] = field(default=None, repr=False)

    @property
    def features(self) -> np.ndarray:
        """The 33-dim flattened plan vector (computed once, then shared)."""
        if self._features is None:
            self._features = featurize_plan(self.plan)
        return self._features

    @property
    def identity(self):
        """Key identifying "the same query" across repeats."""
        return (self.instance_id, self.template_id, self.variant_id, self.plan_epoch)

    def with_features(self, features: np.ndarray) -> "QueryRecord":
        """Attach a precomputed (shared) feature vector."""
        self._features = features
        return self
