"""Trace containers and fleet-level statistics.

A :class:`Trace` is the unit the replay harness consumes: one instance's
time-ordered query log.  The module-level helpers compute the fleet
statistics the paper reports in Figure 1 (daily-unique distribution,
latency distribution) and the exec-time bucket histograms used throughout
Section 5.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from .instance import InstanceProfile
from .query import QueryRecord

__all__ = [
    "Trace",
    "EXEC_TIME_BUCKETS",
    "bucket_of",
    "bucket_counts",
    "fleet_unique_daily_fractions",
    "fleet_exec_times",
]

# The paper's exec-time buckets (Tables 1-6): 0-10s, 10-60s, 60-120s,
# 120-300s, 300s+.
EXEC_TIME_BUCKETS: Tuple[Tuple[float, float, str], ...] = (
    (0.0, 10.0, "0s - 10s"),
    (10.0, 60.0, "10s - 60s"),
    (60.0, 120.0, "60s - 120s"),
    (120.0, 300.0, "120s - 300s"),
    (300.0, float("inf"), "300s+"),
)

_SECONDS_PER_DAY = 86_400.0


def bucket_of(exec_time: float) -> str:
    """Label of the paper bucket containing ``exec_time`` (seconds)."""
    for lo, hi, label in EXEC_TIME_BUCKETS:
        if lo <= exec_time < hi:
            return label
    return EXEC_TIME_BUCKETS[-1][2]


def bucket_counts(exec_times: Sequence[float]) -> Dict[str, int]:
    """Histogram of exec-times over the paper's buckets."""
    counts = {label: 0 for _, __, label in EXEC_TIME_BUCKETS}
    for t in exec_times:
        counts[bucket_of(t)] += 1
    return counts


@dataclass
class Trace:
    """One instance's executed-query log, ordered by arrival time."""

    instance: InstanceProfile
    records: List[QueryRecord]
    duration_days: float

    def __post_init__(self):
        times = [r.arrival_time for r in self.records]
        if any(b < a for a, b in zip(times, times[1:])):
            raise ValueError("trace records must be time-ordered")

    def __len__(self):
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def __getitem__(self, i):
        return self.records[i]

    # ------------------------------------------------------------------
    def exec_times(self) -> np.ndarray:
        return np.array([r.exec_time for r in self.records])

    def sql_identities(self) -> List[tuple]:
        """Identity of each query at the SQL level (template + params).

        Re-planning after an ANALYZE does *not* change SQL identity —
        matching the paper's definition of a repeated query ("exactly
        repeated, both in terms of SQL and parameter values, but the
        database may have changed in the meantime").
        """
        return [(r.template_id, r.variant_id) for r in self.records]

    def unique_daily_fraction(self, window_s: float = _SECONDS_PER_DAY) -> float:
        """Fraction of queries with no identical query in the last 24h."""
        if not self.records:
            return 0.0
        last_seen: Dict[tuple, float] = {}
        unique = 0
        for r in self.records:
            ident = (r.template_id, r.variant_id)
            prev = last_seen.get(ident)
            if prev is None or r.arrival_time - prev > window_s:
                unique += 1
            last_seen[ident] = r.arrival_time
        return unique / len(self.records)

    def repeated_fraction(self) -> float:
        return 1.0 - self.unique_daily_fraction()

    def exec_time_buckets(self) -> Dict[str, int]:
        return bucket_counts(self.exec_times())

    def kind_mix(self) -> Dict[str, float]:
        """Observed fraction of queries per archetype."""
        if not self.records:
            return {}
        mix: Dict[str, float] = {}
        for r in self.records:
            mix[r.kind] = mix.get(r.kind, 0) + 1
        return {k: v / len(self.records) for k, v in mix.items()}


# ---------------------------------------------------------------------------
# fleet-level statistics (paper Figure 1)
# ---------------------------------------------------------------------------
def fleet_unique_daily_fractions(traces: Iterable[Trace]) -> np.ndarray:
    """Per-cluster % of daily-unique queries (paper Figure 1a)."""
    return np.array([t.unique_daily_fraction() for t in traces])


def fleet_exec_times(traces: Iterable[Trace]) -> np.ndarray:
    """All exec-times across the fleet, concatenated (paper Figure 1b)."""
    arrays = [t.exec_times() for t in traces]
    if not arrays:
        return np.zeros(0)
    return np.concatenate(arrays)
