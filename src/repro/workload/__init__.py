"""Synthetic Redshift-fleet workload generation."""

from .query import QueryKind, QueryRecord
from .instance import (
    HARDWARE_CLASSES,
    Hardware,
    InstanceProfile,
    N_SYSTEM_FEATURES,
    Table,
)
from .latency import CostModelParams, TrueCostModel
from .plangen import KIND_PROFILES, MaterializedPlan, PlanGenerator, TemplateSpec
from .arrival import (
    SECONDS_PER_DAY,
    adhoc_arrivals,
    burst_arrivals,
    burst_windows,
    dashboard_arrivals,
    etl_arrivals,
    report_arrivals,
    seasonal_keep_probability,
    seasonal_thin,
)
from .drift import (
    AnalyzeSchedule,
    ResizeSchedule,
    sample_outage_windows,
    sample_template_retirements,
    sample_template_start_days,
)
from .scenario import InstanceScenario, ScenarioConfig
from .trace import (
    EXEC_TIME_BUCKETS,
    Trace,
    bucket_counts,
    bucket_of,
    fleet_exec_times,
    fleet_unique_daily_fractions,
)
from .fleet import FleetConfig, FleetGenerator, TemplateRuntime

__all__ = [
    "QueryKind",
    "QueryRecord",
    "Table",
    "Hardware",
    "HARDWARE_CLASSES",
    "InstanceProfile",
    "N_SYSTEM_FEATURES",
    "CostModelParams",
    "TrueCostModel",
    "PlanGenerator",
    "TemplateSpec",
    "MaterializedPlan",
    "KIND_PROFILES",
    "SECONDS_PER_DAY",
    "dashboard_arrivals",
    "report_arrivals",
    "adhoc_arrivals",
    "etl_arrivals",
    "burst_windows",
    "burst_arrivals",
    "seasonal_keep_probability",
    "seasonal_thin",
    "AnalyzeSchedule",
    "ResizeSchedule",
    "sample_outage_windows",
    "sample_template_retirements",
    "sample_template_start_days",
    "ScenarioConfig",
    "InstanceScenario",
    "Trace",
    "EXEC_TIME_BUCKETS",
    "bucket_of",
    "bucket_counts",
    "fleet_unique_daily_fractions",
    "fleet_exec_times",
    "FleetConfig",
    "FleetGenerator",
    "TemplateRuntime",
]
