"""Instance (cluster) profiles for the synthetic Redshift fleet.

An :class:`InstanceProfile` is everything that distinguishes one
customer's cluster: hardware class and node count, a *hidden* speed
multiplier (configuration, tuning, data layout — never exposed to the
predictors, mirroring the paper's observation that identical plans run
very differently across customers), tables with their sizes and growth,
and a workload mix over the four archetypes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from .query import QueryKind

__all__ = [
    "Table",
    "Hardware",
    "HARDWARE_CLASSES",
    "InstanceProfile",
    "N_SYSTEM_FEATURES",
]


@dataclass(frozen=True)
class Table:
    """One user table: what the optimizer can know plus true dynamics."""

    name: str
    base_rows: float
    s3_format: str = "local"  # "local" or an external S3 format
    # fraction of daily growth of the *true* row count; the optimizer's
    # statistics only catch up at ANALYZE events
    growth_per_day: float = 0.0


@dataclass(frozen=True)
class Hardware:
    """A node type in the fleet (speeds are relative units)."""

    name: str
    unit_speed: float
    memory_per_node_gb: float


HARDWARE_CLASSES: Dict[str, Hardware] = {
    "dc2.large": Hardware("dc2.large", 1.0, 15.0),
    "ra3.xlplus": Hardware("ra3.xlplus", 2.0, 32.0),
    "ra3.4xlarge": Hardware("ra3.4xlarge", 6.0, 96.0),
    "ra3.16xlarge": Hardware("ra3.16xlarge", 20.0, 384.0),
}


@dataclass
class InstanceProfile:
    """One synthetic customer cluster."""

    instance_id: str
    hardware: Hardware
    n_nodes: int
    #: hidden multiplicative speed factor; NOT exposed in any feature
    latent_speed: float
    #: lognormal sigma of run-to-run load noise on this cluster
    load_sigma: float
    tables: List[Table]
    #: workload mix over QueryKind values (sums to 1)
    kind_weights: Dict[str, float]
    #: average queries per day (all kinds)
    queries_per_day: float
    #: per-instance RNG seed (trace generation is reproducible)
    seed: int
    #: days between ANALYZE runs refreshing optimizer statistics
    analyze_interval_days: float = 3.0
    #: mean concurrent queries (affects exec-time noise)
    mean_concurrency: float = 2.0
    #: probability an ad-hoc arrival re-runs a recent query verbatim
    adhoc_rerun_probability: float = 0.2

    def __post_init__(self):
        total = sum(self.kind_weights.values())
        if not 0.999 <= total <= 1.001:
            raise ValueError(f"kind weights must sum to 1, got {total}")
        for kind in self.kind_weights:
            if kind not in QueryKind.ALL:
                raise ValueError(f"unknown query kind {kind!r}")
        if self.n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")

    # ------------------------------------------------------------------
    @property
    def effective_speed(self) -> float:
        """Cluster throughput: hardware x sub-linear node scaling x hidden factor."""
        return self.hardware.unit_speed * self.n_nodes**0.8 * self.latent_speed

    @property
    def memory_gb(self) -> float:
        return self.hardware.memory_per_node_gb * self.n_nodes

    def growth_factor(self, day: float) -> float:
        """True-data growth factor at ``day`` (compounded daily)."""
        if not self.tables:
            return 1.0
        mean_growth = sum(t.growth_per_day for t in self.tables) / len(self.tables)
        return (1.0 + mean_growth) ** max(day, 0.0)

    # system features visible to the global model (Section 4.4): the
    # *public* parts of the instance; the latent speed stays hidden.
    def system_features(self, n_concurrent: float = 0.0):
        import numpy as np

        hw_index = list(HARDWARE_CLASSES).index(self.hardware.name)
        one_hot = [0.0] * len(HARDWARE_CLASSES)
        one_hot[hw_index] = 1.0
        return np.array(
            one_hot
            + [
                float(self.n_nodes),
                float(np.log1p(self.memory_gb)),
                float(n_concurrent),
            ]
        )


N_SYSTEM_FEATURES = len(HARDWARE_CLASSES) + 3
