"""Deterministic seed derivation for nested generators.

``numpy.random.default_rng`` accepts sequences of ints but not strings;
this helper hashes arbitrary labels + ints into a stable 64-bit seed so
every instance / template / variant gets an independent, reproducible
stream.
"""

from __future__ import annotations

import hashlib

__all__ = ["derive_seed"]


def derive_seed(*parts) -> int:
    """Hash a mixed tuple of ints/strings into a 64-bit seed."""
    h = hashlib.blake2b(digest_size=8)
    for part in parts:
        h.update(str(part).encode("utf-8"))
        h.update(b"\x1f")
    return int.from_bytes(h.digest(), "little")
