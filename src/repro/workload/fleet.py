"""Fleet generation: synthetic Redshift customers and their query traces.

:class:`FleetGenerator` samples heterogeneous :class:`InstanceProfile`\\ s
(hardware, hidden speed, tables, workload mix) and unrolls each one into a
:class:`~repro.workload.trace.Trace` of executed queries.  The archetype
mixture is calibrated so fleet-level statistics reproduce paper Figure 1:
most queries repeat within 24 hours, ~13% of clusters have (almost) no
repetition, and ~40% of queries run in under 100 ms.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.parallelism import pool_map
from repro.plans import featurize_plan

from .arrival import (
    SECONDS_PER_DAY,
    adhoc_arrivals,
    burst_arrivals,
    dashboard_arrivals,
    etl_arrivals,
    report_arrivals,
)
from .drift import AnalyzeSchedule, sample_template_retirements, sample_template_start_days
from .instance import HARDWARE_CLASSES, InstanceProfile, Table
from .latency import TrueCostModel
from .plangen import PlanGenerator, TemplateSpec
from .query import QueryKind, QueryRecord
from .scenario import InstanceScenario, ScenarioConfig
from .seeding import derive_seed
from .trace import Trace

__all__ = ["FleetConfig", "FleetGenerator", "TemplateRuntime"]


# (name, probability, kind weights) — mixture of customer archetypes.
# pure_adhoc at 0.13 reproduces "only 13% of clusters have no repeating
# queries" (Figure 1a); the adhoc-leaning mass puts ~40% of clusters above
# 50% daily-unique queries.
_ARCHETYPES = (
    # (name, probability, kind weights, base queries/day, adhoc rerun prob)
    (
        "dashboard_heavy",
        0.35,
        {
            QueryKind.DASHBOARD: 0.76,
            QueryKind.REPORT: 0.15,
            QueryKind.ADHOC: 0.08,
            QueryKind.ETL: 0.01,
        },
        1200.0,
        0.25,
    ),
    (
        "mixed",
        0.27,
        {
            QueryKind.DASHBOARD: 0.47,
            QueryKind.REPORT: 0.20,
            QueryKind.ADHOC: 0.30,
            QueryKind.ETL: 0.03,
        },
        700.0,
        0.2,
    ),
    (
        "adhoc_heavy",
        0.25,
        {
            QueryKind.DASHBOARD: 0.04,
            QueryKind.REPORT: 0.08,
            QueryKind.ADHOC: 0.86,
            QueryKind.ETL: 0.02,
        },
        350.0,
        0.1,
    ),
    (
        "pure_adhoc",
        0.13,
        {QueryKind.DASHBOARD: 0.0, QueryKind.REPORT: 0.0, QueryKind.ADHOC: 1.0, QueryKind.ETL: 0.0},
        200.0,
        0.0,
    ),
)


def _stochastic_round(rng: np.random.Generator, x: float) -> int:
    """Round so the expectation is preserved (0.3 -> 0 or 1, E=0.3)."""
    base = int(np.floor(x))
    return base + (1 if rng.random() < (x - base) else 0)


def _generate_trace_worker(args) -> "Trace":
    """Process-pool entrypoint: unroll one instance by index."""
    config, index, duration_days = args
    gen = FleetGenerator(config)
    return gen.generate_trace(gen.sample_instance(index), duration_days)


@dataclass
class FleetConfig:
    """Scale and randomness knobs of the synthetic fleet."""

    seed: int = 0
    #: global multiplier on per-instance query volume (downscale for tests)
    volume_scale: float = 1.0
    n_tables_min: int = 8
    n_tables_max: int = 24
    #: fraction of templates that appear mid-trace (workload drift)
    late_template_fraction: float = 0.15
    #: probability a table is an external S3 table
    s3_table_probability: float = 0.15
    #: lognormal sigma of the hidden per-instance speed factor
    latent_speed_sigma: float = 0.35
    cost_model: TrueCostModel = field(default_factory=TrueCostModel)
    #: optional stress-scenario mutations (see :mod:`repro.workload.scenario`);
    #: ``None`` (or an all-off config) generates the baseline workload
    scenario: Optional[ScenarioConfig] = None


class TemplateRuntime:
    """A template plus its variant and materialization caches.

    Materialized plans are cached per ``(variant, statistics epoch)`` so
    repeated executions share one plan object and one feature vector —
    the property the exec-time cache keys on.
    """

    def __init__(
        self,
        template_id: int,
        kind: str,
        base_spec: TemplateSpec,
        generator: PlanGenerator,
        tables: List[Table],
        seed: int,
        start_day: float = 0.0,
        end_day: float = float("inf"),
    ):
        self.template_id = template_id
        self.kind = kind
        self.base_spec = base_spec
        self.generator = generator
        self.tables = tables
        self.seed = seed
        self.start_day = start_day
        #: retirement day (template churn); ``inf`` = never retired
        self.end_day = end_day
        #: arrival-process parameters, set by the fleet generator
        self.arrival_params: Dict[str, float] = {}
        self._variants: Dict[int, TemplateSpec] = {0: base_spec}
        self._materialized: Dict[Tuple[int, int], tuple] = {}

    def variant_spec(self, variant_id: int) -> TemplateSpec:
        spec = self._variants.get(variant_id)
        if spec is None:
            rng = np.random.default_rng(derive_seed(self.seed, self.template_id, variant_id))
            spec = self.generator.perturb_variant(rng, self.base_spec)
            self._variants[variant_id] = spec
        return spec

    def materialize(self, variant_id: int, epoch: int, stat_rows: Dict[int, float]):
        """``(plan, features, base_work)`` for a variant in an epoch."""
        key = (variant_id, epoch)
        entry = self._materialized.get(key)
        if entry is None:
            spec = self.variant_spec(variant_id)
            mat = self.generator.materialize(spec, self.tables, stat_rows, growth_factor=1.0)
            features = featurize_plan(mat.plan)
            entry = (mat.plan, features, mat.base_work)
            self._materialized[key] = entry
        return entry


class FleetGenerator:
    """Samples instances and generates their query traces."""

    def __init__(self, config: Optional[FleetConfig] = None):
        self.config = config or FleetConfig()
        self.plan_generator = PlanGenerator(self.config.cost_model)

    # ------------------------------------------------------------------
    # instance sampling
    # ------------------------------------------------------------------
    def sample_instance(self, index: int) -> InstanceProfile:
        cfg = self.config
        rng = np.random.default_rng(derive_seed(cfg.seed, "instance", index))

        probs = np.array([a[1] for a in _ARCHETYPES])
        archetype = _ARCHETYPES[int(rng.choice(len(_ARCHETYPES), p=probs / probs.sum()))]
        _, __, kind_weights, base_qpd, rerun_prob = archetype

        hw_name = str(
            rng.choice(
                list(HARDWARE_CLASSES),
                p=[0.15, 0.35, 0.35, 0.15],
            )
        )
        hardware = HARDWARE_CLASSES[hw_name]
        node_caps = {"dc2.large": 9, "ra3.xlplus": 9, "ra3.4xlarge": 17, "ra3.16xlarge": 33}
        n_nodes = int(rng.integers(2, node_caps[hw_name]))

        n_tables = int(rng.integers(cfg.n_tables_min, cfg.n_tables_max + 1))
        # Customers size clusters to their data: table volumes scale with
        # the cluster's raw capacity, which keeps per-archetype exec-times
        # in comparable ranges across the fleet (as in the paper's Fig 1b).
        raw_speed = hardware.unit_speed * n_nodes**0.8
        size_shift = np.log10(max(raw_speed / 12.0, 0.05))
        tables = []
        for t in range(n_tables):
            if rng.random() < 0.6:  # dimension-ish table
                rows = float(10 ** (rng.uniform(4.0, 6.5) + 0.5 * size_shift))
            else:  # fact table
                rows = float(10 ** (rng.uniform(6.8, 9.0) + size_shift))
            s3 = rng.random() < cfg.s3_table_probability
            tables.append(
                Table(
                    name=f"t{t}",
                    base_rows=rows,
                    s3_format=str(rng.choice(["parquet", "text", "opencsv"]))
                    if s3
                    else "local",
                    growth_per_day=float(rng.exponential(0.01))
                    if rng.random() < 0.7
                    else 0.0,
                )
            )

        qpd = float(base_qpd * rng.lognormal(0.0, 0.4) * cfg.volume_scale)
        return InstanceProfile(
            instance_id=f"inst-{index:04d}",
            hardware=hardware,
            n_nodes=n_nodes,
            latent_speed=float(rng.lognormal(0.0, cfg.latent_speed_sigma)),
            load_sigma=float(rng.uniform(0.12, 0.45)),
            tables=tables,
            kind_weights=dict(kind_weights),
            queries_per_day=qpd,
            seed=int(rng.integers(0, 2**31 - 1)),
            analyze_interval_days=float(rng.uniform(1.5, 7.0)),
            mean_concurrency=float(rng.uniform(1.0, 5.0)),
            adhoc_rerun_probability=rerun_prob,
        )

    def sample_fleet(self, n_instances: int, start_index: int = 0) -> List[InstanceProfile]:
        return [self.sample_instance(start_index + i) for i in range(n_instances)]

    # ------------------------------------------------------------------
    # template construction
    # ------------------------------------------------------------------
    def _build_templates(
        self, instance: InstanceProfile, duration_days: float, rng
    ) -> List[TemplateRuntime]:
        """Create the instance's templates with their arrival parameters.

        Template counts per archetype are derived from the target volume:
        dashboards fire ~100x/day each, reports ~2.5x/day, ETL ~2x/day;
        ad-hoc arrivals spread over a small number of "analyst" families.
        Stochastic rounding keeps low-weight kinds at their expected share
        instead of forcing at least one high-volume template.
        """
        cfg = self.config
        qpd = instance.queries_per_day
        w = instance.kind_weights
        counts = {
            QueryKind.DASHBOARD: _stochastic_round(
                rng, qpd * w[QueryKind.DASHBOARD] / 100.0
            ),
            QueryKind.REPORT: _stochastic_round(
                rng, qpd * w[QueryKind.REPORT] / 2.5
            ),
            QueryKind.ADHOC: (
                max(1, round(np.sqrt(qpd * w[QueryKind.ADHOC]) / 1.5))
                if w[QueryKind.ADHOC] > 0
                else 0
            ),
            QueryKind.ETL: _stochastic_round(rng, qpd * w[QueryKind.ETL] / 2.0),
        }
        templates: List[TemplateRuntime] = []
        tid = 0
        for kind, n in counts.items():
            if n <= 0:
                continue
            starts = sample_template_start_days(rng, n, duration_days, cfg.late_template_fraction)
            for k in range(n):
                spec = self.plan_generator.build_template(rng, kind, instance.tables)
                template = TemplateRuntime(
                    template_id=tid,
                    kind=kind,
                    base_spec=spec,
                    generator=self.plan_generator,
                    tables=instance.tables,
                    seed=instance.seed,
                    start_day=float(starts[k]),
                )
                if kind == QueryKind.DASHBOARD:
                    template.arrival_params = {
                        "period_s": float(
                            10 ** rng.uniform(np.log10(300), np.log10(3600))
                        ),
                        "n_variants": int(rng.choice([1, 1, 1, 2, 3, 4])),
                    }
                elif kind == QueryKind.REPORT:
                    template.arrival_params = {"runs_per_day": float(rng.uniform(1.0, 4.0))}
                elif kind == QueryKind.ADHOC:
                    template.arrival_params = {
                        "mean_per_day": qpd
                        * w[QueryKind.ADHOC]
                        / counts[QueryKind.ADHOC],
                        "rerun_probability": instance.adhoc_rerun_probability,
                    }
                else:
                    template.arrival_params = {"runs_per_day": float(rng.uniform(1.0, 3.0))}
                templates.append(template)
                tid += 1
        return templates

    def _template_arrivals(
        self, template: TemplateRuntime, instance: InstanceProfile, duration_days: float, rng
    ):
        t_start = template.start_day * SECONDS_PER_DAY
        t_end = min(duration_days, template.end_day) * SECONDS_PER_DAY
        if t_start >= t_end:
            return []
        params = template.arrival_params
        if template.kind == QueryKind.DASHBOARD:
            return dashboard_arrivals(rng, t_start, t_end, params["period_s"], params["n_variants"])
        if template.kind == QueryKind.REPORT:
            return report_arrivals(rng, t_start, t_end, runs_per_day=params["runs_per_day"])
        if template.kind == QueryKind.ADHOC:
            return adhoc_arrivals(
                rng,
                t_start,
                t_end,
                params["mean_per_day"],
                rerun_probability=params["rerun_probability"],
            )
        return etl_arrivals(rng, t_start, t_end, runs_per_day=params["runs_per_day"])

    # ------------------------------------------------------------------
    # scenario mutations (see repro.workload.scenario for the contract)
    # ------------------------------------------------------------------
    def _apply_template_churn(
        self,
        templates: List[TemplateRuntime],
        scenario: InstanceScenario,
        instance: InstanceProfile,
        duration_days: float,
    ) -> List[TemplateRuntime]:
        """Retire churnable templates and append their replacements.

        Dashboards and reports have stable identities that teams iterate
        on; ad-hoc families and ETL pipelines don't churn.  A replacement
        keeps the retiree's cadence (arrival params) but is a brand-new
        spec with a fresh template id, so its queries cold-miss every
        predictor stage.  Replacements don't churn again — one
        generation per trace keeps the transform simple and pure.
        """
        rng = scenario.rng("churn")
        churnable = [t for t in templates if t.kind in (QueryKind.DASHBOARD, QueryKind.REPORT)]
        retire_days = sample_template_retirements(
            rng,
            [t.start_day for t in churnable],
            duration_days,
            scenario.config.churn_rate_per_week,
        )
        out = list(templates)
        next_tid = max((t.template_id for t in templates), default=-1) + 1
        for template, retire_day in zip(churnable, retire_days):
            if not np.isfinite(retire_day):
                continue
            template.end_day = float(retire_day)
            replacement = TemplateRuntime(
                template_id=next_tid,
                kind=template.kind,
                base_spec=self.plan_generator.build_template(rng, template.kind, instance.tables),
                generator=self.plan_generator,
                tables=instance.tables,
                seed=instance.seed,
                start_day=float(retire_day),
            )
            replacement.arrival_params = dict(template.arrival_params)
            out.append(replacement)
            next_tid += 1
        return out

    #: burst ad-hoc variants start here so they never collide with the
    #: template's own monotonically increasing variant ids
    _BURST_ADHOC_VARIANT_BASE = 1_000_000

    def _template_burst_arrivals(
        self,
        template: TemplateRuntime,
        scenario: InstanceScenario,
        duration_days: float,
    ):
        """Extra flash-crowd arrivals for one template.

        Each template draws from its own ``(instance, "burst", template
        id)`` stream; storm windows are instance-wide and intersected
        with the template's active span.  The surge multiplies the
        template's steady-state rate: dashboards re-fire their variant
        pool (repeat storm), ad-hoc families spray fresh variants
        (cold-start storm), date-parameterized kinds re-run the day's
        variant.
        """
        t_lo = template.start_day * SECONDS_PER_DAY
        t_hi = min(duration_days, template.end_day) * SECONDS_PER_DAY
        windows = [
            (max(w_start, t_lo), min(w_end, t_hi))
            for w_start, w_end in scenario.burst_windows
            if max(w_start, t_lo) < min(w_end, t_hi)
        ]
        if not windows:
            return []
        params = template.arrival_params
        extra = scenario.config.burst_multiplier - 1.0
        if template.kind == QueryKind.DASHBOARD:
            rate = extra * SECONDS_PER_DAY / params["period_s"]
            mode, n_variants = "pool", int(params["n_variants"])
        elif template.kind == QueryKind.ADHOC:
            rate = extra * params["mean_per_day"]
            mode, n_variants = "fresh", 1
        else:  # REPORT / ETL: date-parameterized re-runs
            rate = extra * params["runs_per_day"]
            mode, n_variants = "day", 1
        return burst_arrivals(
            scenario.rng("burst", template.template_id),
            windows,
            rate,
            variant_mode=mode,
            n_variants=n_variants,
            next_variant_start=self._BURST_ADHOC_VARIANT_BASE,
        )

    # ------------------------------------------------------------------
    # trace generation
    # ------------------------------------------------------------------
    def generate_trace(self, instance: InstanceProfile, duration_days: float) -> Trace:
        """Unroll one instance into a time-ordered list of executed queries."""
        if duration_days <= 0:
            raise ValueError("duration_days must be positive")
        cfg = self.config
        rng = np.random.default_rng(derive_seed(cfg.seed, "trace", instance.seed))
        templates = self._build_templates(instance, duration_days, rng)
        scenario = InstanceScenario.realize(cfg.scenario, instance.seed, duration_days)
        if scenario is not None and scenario.config.churn_rate_per_week > 0:
            templates = self._apply_template_churn(templates, scenario, instance, duration_days)

        arrivals = []  # (time, template, variant)
        for template in templates:
            for t, variant in self._template_arrivals(template, instance, duration_days, rng):
                arrivals.append((t, template, variant))
            if scenario is not None and scenario.burst_windows:
                for t, variant in self._template_burst_arrivals(template, scenario, duration_days):
                    arrivals.append((t, template, variant))
        arrivals.sort(key=lambda x: x[0])
        if scenario is not None:
            arrivals = scenario.filter_arrivals(arrivals)

        schedule = AnalyzeSchedule(
            duration_days,
            instance.analyze_interval_days,
            rng,
            outages=scenario.analyze_outages if scenario is not None else None,
        )
        cost_model = cfg.cost_model

        records: List[QueryRecord] = []
        stat_rows_by_epoch: Dict[int, Dict[int, float]] = {}
        for qid, (t, template, variant) in enumerate(arrivals):
            epoch = schedule.epoch_at(t)
            stat_rows = stat_rows_by_epoch.get(epoch)
            if stat_rows is None:
                stat_rows = {
                    i: tab.base_rows
                    * ((1.0 + tab.growth_per_day) ** schedule.epoch_start_day(epoch))
                    for i, tab in enumerate(instance.tables)
                }
                stat_rows_by_epoch[epoch] = stat_rows
            plan, features, base_work = template.materialize(variant, epoch, stat_rows)
            day = t / SECONDS_PER_DAY
            work = base_work * instance.growth_factor(day)
            concurrency = int(rng.poisson(instance.mean_concurrency))
            resize_factor = scenario.speed_factor(day) if scenario is not None else 1.0
            exec_time = cost_model.exec_time(
                work,
                instance.effective_speed * resize_factor,
                instance.memory_gb * resize_factor,
                rng,
                instance.load_sigma,
                concurrency,
            )
            records.append(
                QueryRecord(
                    query_id=qid,
                    instance_id=instance.instance_id,
                    template_id=template.template_id,
                    variant_id=variant,
                    plan_epoch=epoch,
                    arrival_time=t,
                    plan=plan,
                    exec_time=exec_time,
                    kind=template.kind,
                ).with_features(features)
            )
        return Trace(instance=instance, records=records, duration_days=duration_days)

    def generate_fleet_traces(
        self,
        n_instances: int,
        duration_days: float,
        start_index: int = 0,
        n_jobs: int = 1,
    ) -> List[Trace]:
        """Traces for instances ``start_index .. start_index+n-1``.

        With ``n_jobs != 1`` the instances are unrolled in a process
        pool (``<=0`` means all cores).  Every instance's randomness is
        derived from ``(config seed, instance index)`` alone, so the
        traces are identical for any ``n_jobs``.
        """
        indices = range(start_index, start_index + n_instances)
        tasks = [(self.config, i, duration_days) for i in indices]
        return pool_map(_generate_trace_worker, tasks, n_jobs)
