"""Command-line entry point: ``python -m repro.scenarios``.

Replays the registered scenario matrix through the fleet-sweep engine
and writes the deterministic report to ``results/scenario_matrix.txt``
(``--out`` to change, ``--no-write`` to print only).  Defaults match
the committed report exactly, so a bare run must reproduce it
bit-for-bit — that is what CI's results-drift gate checks.

The ``calibration`` subcommand renders the interval-coverage scorecard
(``results/calibration_scorecard.txt``, also drift-gated): empirical
coverage of the calibrated prediction intervals versus the nominal
confidence, per source.

Examples
--------
::

    PYTHONPATH=src python -m repro.scenarios
    PYTHONPATH=src python -m repro.scenarios --list
    PYTHONPATH=src python -m repro.scenarios --scenarios baseline burst_storm \\
        --jobs 2 --via-service --clients 3 --no-write
    PYTHONPATH=src python -m repro.scenarios calibration
    PYTHONPATH=src python -m repro.scenarios calibration --jobs 2 --no-write
"""

from __future__ import annotations

import argparse
import os
from dataclasses import replace

from repro.core.config import ServiceConfig

from .engine import (
    ScenarioRunner,
    ScenarioSweepConfig,
    get_scenario,
    registered_scenarios,
    render_matrix,
)

#: the committed, CI-drift-gated reference report
DEFAULT_OUT = os.path.join("results", "scenario_matrix.txt")

#: the committed, CI-drift-gated calibration scorecard
CALIBRATION_OUT = os.path.join("results", "calibration_scorecard.txt")


def _calibration_main(argv) -> int:
    """The ``calibration`` subcommand: render the coverage scorecard.

    ``--jobs`` is bit-identical at any value (the sweep engine's parity
    contract), so it never taints the drift-gated default output.
    """
    from .calibration import run_calibration

    parser = argparse.ArgumentParser(
        prog="python -m repro.scenarios calibration",
        description="interval-coverage scorecard for the uncertainty pipeline",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, help="worker processes (any value is bit-identical)"
    )
    parser.add_argument("--out", default=CALIBRATION_OUT)
    parser.add_argument(
        "--no-write", action="store_true", help="print the scorecard without writing --out"
    )
    args = parser.parse_args(argv)
    _, report = run_calibration(n_jobs=args.jobs)
    print(report)
    if not args.no_write:
        os.makedirs(os.path.dirname(args.out) or ".", exist_ok=True)
        with open(args.out, "w") as f:
            f.write(report + "\n")
        print(f"\nwrote {args.out}")
    return 0


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.scenarios",
        description="declarative stress-scenario matrix over the Stage predictor",
    )
    defaults = ScenarioSweepConfig()
    parser.add_argument("--list", action="store_true", help="list registered scenarios and exit")
    parser.add_argument(
        "--scenarios",
        nargs="+",
        metavar="NAME",
        help="subset of registered scenarios (default: the full matrix)",
    )
    parser.add_argument("--seed", type=int, default=defaults.seed)
    parser.add_argument("--instances", type=int, default=defaults.n_instances)
    parser.add_argument("--duration-days", type=float, default=defaults.duration_days)
    parser.add_argument("--volume-scale", type=float, default=defaults.volume_scale)
    parser.add_argument(
        "--jobs",
        type=int,
        default=defaults.n_jobs,
        help="worker processes per scenario (any value is bit-identical)",
    )
    parser.add_argument(
        "--via-service",
        action="store_true",
        help="replay through a live PredictionService (bit-identical to direct)",
    )
    parser.add_argument(
        "--clients",
        type=int,
        default=defaults.service_clients,
        help="concurrent service clients (with --via-service)",
    )
    parser.add_argument(
        "--batch-size",
        type=int,
        default=ServiceConfig().max_batch_size,
        help="service micro-batch size (with --via-service)",
    )
    parser.add_argument("--out", default=DEFAULT_OUT)
    parser.add_argument(
        "--no-write",
        action="store_true",
        help="print the report without writing --out",
    )
    return parser


def main(argv=None) -> int:
    if argv is None:
        import sys

        argv = sys.argv[1:]
    if argv and argv[0] == "calibration":
        return _calibration_main(argv[1:])
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.list:
        for scenario in registered_scenarios():
            print(f"{scenario.name:<18} {scenario.description}")
        return 0

    defaults = ScenarioSweepConfig()
    if not args.via_service and (
        args.clients != defaults.service_clients
        or args.batch_size != ServiceConfig().max_batch_size
    ):
        parser.error("--clients/--batch-size only apply with --via-service")
    scenarios = None
    if args.scenarios:
        scenarios = [get_scenario(name) for name in args.scenarios]
    service_config = ServiceConfig(max_batch_size=args.batch_size) if args.via_service else None
    config = ScenarioSweepConfig(
        seed=args.seed,
        n_instances=args.instances,
        duration_days=args.duration_days,
        volume_scale=args.volume_scale,
        via_service=args.via_service,
        service_config=service_config,
        service_clients=args.clients,
        n_jobs=args.jobs,
    )
    # The default --out is the committed, CI-drift-gated reference file;
    # only a full-matrix run at the default scale may overwrite it
    # (n_jobs excluded: any value is bit-identical).
    deviates = scenarios is not None or replace(config, n_jobs=defaults.n_jobs) != defaults
    if (
        deviates
        and not args.no_write
        and os.path.abspath(args.out) == os.path.abspath(DEFAULT_OUT)
    ):
        parser.error(
            "non-default runs would clobber the drift-gated "
            f"{DEFAULT_OUT}; pass --out <path> or --no-write"
        )

    runner = ScenarioRunner(config, scenarios=scenarios)
    report = render_matrix(runner.run_matrix(), config)
    print(report)
    if not args.no_write:
        os.makedirs(os.path.dirname(args.out) or ".", exist_ok=True)
        with open(args.out, "w") as f:
            f.write(report + "\n")
        print(f"\nwrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
