"""Declarative stress-scenario suite over the workload/harness/service stack.

``python -m repro.scenarios`` replays the registered scenario matrix —
burst storms, onboarding waves, template churn, seasonal cycles,
instance resizes, ANALYZE outages — through the fleet-sweep engine
(optionally through the online :class:`~repro.service.PredictionService`)
and writes ``results/scenario_matrix.txt``.

Adding a scenario is one :func:`register_scenario` call; the parity
suites (``tests/test_scenarios.py``) then hold it to the repo's
sequential/parallel and direct/service bit-parity contracts
automatically.
"""

from repro.workload.scenario import ScenarioConfig

from .calibration import (
    CalibrationRow,
    calibration_rows,
    calibration_sweep_config,
    render_scorecard,
    run_calibration,
)
from .engine import (
    Scenario,
    ScenarioResult,
    ScenarioRunner,
    ScenarioSweepConfig,
    get_scenario,
    register_scenario,
    registered_scenarios,
    render_matrix,
)

__all__ = [
    "CalibrationRow",
    "Scenario",
    "ScenarioConfig",
    "ScenarioResult",
    "ScenarioRunner",
    "ScenarioSweepConfig",
    "calibration_rows",
    "calibration_sweep_config",
    "get_scenario",
    "register_scenario",
    "registered_scenarios",
    "render_matrix",
    "render_scorecard",
    "run_calibration",
]
