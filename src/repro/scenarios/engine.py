"""The declarative scenario engine: registry, runner, matrix report.

A :class:`Scenario` is a named, described :class:`ScenarioConfig` —
a point in the stress space (burst storms, onboarding waves, template
churn, seasonal cycles, resizes, ANALYZE outages).  The module registry
holds the built-in suite plus anything callers
:func:`register_scenario`; :class:`ScenarioRunner` fans the registered
matrix over the existing :class:`~repro.harness.parallel.FleetSweeper`
and can replay every scenario *through* the online
:class:`~repro.service.PredictionService` (``via_service=True``) or the
sharded multi-process :class:`~repro.service.FleetGateway`
(``via_gateway=True``).

Both of the repo's hard contracts extend to every scenario:

- **sequential/parallel bit-parity** — scenario mutations are pure,
  per-instance-seeded transforms riding inside ``FleetConfig``, so any
  ``n_jobs`` regenerates bit-identical traces and replays;
- **direct/service bit-parity** — the serving path routes through the
  same :class:`~repro.core.stage.BatchRouter`, so ``via_service`` matrix
  runs reproduce the direct matrix bit-for-bit.

``tests/test_scenarios.py`` enforces both for every registered
scenario; a scenario that breaks either cannot ship.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import (
    CacheConfig,
    ForecastConfig,
    GatewayConfig,
    ReplayBackend,
    ServiceConfig,
    StageConfig,
    fast_profile,
)
from repro.core.metrics import absolute_errors, q_errors
from repro.harness.parallel import FleetSweeper
from repro.harness.replay import InstanceReplay
from repro.harness.reporting import improvement, render_simple_table
from repro.workload.fleet import FleetConfig
from repro.workload.scenario import ScenarioConfig

__all__ = [
    "Scenario",
    "ScenarioResult",
    "ScenarioRunner",
    "ScenarioSweepConfig",
    "get_scenario",
    "register_scenario",
    "registered_scenarios",
    "render_matrix",
]


# ---------------------------------------------------------------------------
# scenarios and their registry
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Scenario:
    """One named stress scenario: a described point in mutation space."""

    name: str
    description: str
    config: ScenarioConfig = field(default_factory=ScenarioConfig)
    #: also score forecast-driven vs reactive serving on this scenario
    #: (extra replay pair at the sweep's forecast-scoring scale; the
    #: deltas land in the matrix's ``fc-*`` columns)
    forecast_scored: bool = False

    def __post_init__(self):
        if not self.name or any(c.isspace() for c in self.name):
            raise ValueError(f"scenario name must be non-empty, no spaces: {self.name!r}")


_REGISTRY: "OrderedDict[str, Scenario]" = OrderedDict()


def register_scenario(scenario: Scenario, replace: bool = False) -> Scenario:
    """Add a scenario to the matrix (``replace=True`` to redefine)."""
    if not replace and scenario.name in _REGISTRY:
        raise ValueError(f"scenario {scenario.name!r} is already registered")
    _REGISTRY[scenario.name] = scenario
    return scenario


def registered_scenarios() -> Tuple[Scenario, ...]:
    """Every registered scenario, in registration order."""
    return tuple(_REGISTRY.values())


def get_scenario(name: str) -> Scenario:
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(_REGISTRY)
        raise KeyError(f"unknown scenario {name!r} (registered: {known})") from None


# The built-in suite: one scenario per mutation, calibrated so short
# test traces (1-2 days) still realize the stress with high probability.
# Rates look high per week because the matrix replays day-scale windows.
_BUILTINS = (
    Scenario(
        "baseline",
        "the unmutated workload — the control row of every matrix",
    ),
    Scenario(
        "burst_storm",
        "flash-crowd surges: short windows at 8x the steady arrival rate",
        ScenarioConfig(
            burst_storms_per_week=18.0,
            burst_duration_hours=2.0,
            burst_multiplier=8.0,
        ),
        forecast_scored=True,
    ),
    Scenario(
        "onboarding_wave",
        "tenant onboarding: every instance joins cold mid-sweep",
        ScenarioConfig(onboard_fraction=1.0, onboard_window_fraction=0.6),
    ),
    Scenario(
        "template_churn",
        "dashboards/reports retired and replaced by never-seen successors",
        ScenarioConfig(churn_rate_per_week=2.0),
    ),
    Scenario(
        "seasonal_cycle",
        "a daily load cycle thinning arrivals toward the trough",
        ScenarioConfig(seasonal_amplitude=0.8, seasonal_period_days=1.0),
        forecast_scored=True,
    ),
    Scenario(
        "instance_resize",
        "cluster resizes shift the latent latency model under the cache",
        ScenarioConfig(
            resize_events_per_week=10.0,
            resize_factor_low=0.3,
            resize_factor_high=3.0,
        ),
    ),
    Scenario(
        "analyze_outage",
        "ANALYZE outages stretch statistics epochs (staler plans, fewer re-costs)",
        ScenarioConfig(analyze_outages_per_week=10.0, analyze_outage_days=2.0),
    ),
)
for _scenario in _BUILTINS:
    register_scenario(_scenario)


# ---------------------------------------------------------------------------
# the runner
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ScenarioSweepConfig:
    """Scale/engine knobs shared by every scenario in a matrix run.

    Defaults are the committed ``results/scenario_matrix.txt`` scale:
    the CLI, the benchmark and the drift gate all run these numbers.
    """

    seed: int = 11
    n_instances: int = 3
    duration_days: float = 1.5
    volume_scale: float = 0.2
    stage: StageConfig = field(default_factory=fast_profile)
    #: which serving tier every replay routes through
    #: (:class:`~repro.core.config.ReplayBackend`); bit-identical across
    #: modes by the determinism contract
    backend: Optional[ReplayBackend] = None
    #: deprecated spelling of ``backend``; cannot be combined with it
    via_service: bool = False
    service_config: Optional[ServiceConfig] = None
    service_clients: int = 1
    via_gateway: bool = False
    gateway_config: Optional[GatewayConfig] = None
    #: worker processes per scenario sweep; any value is bit-identical
    n_jobs: int = 1
    #: forecast-vs-reactive scoring (the matrix's ``fc-*`` delta
    #: columns, computed for ``forecast_scored`` scenarios only): the
    #: forecaster to score with, and the pair's own scale.  The pair
    #: runs a *small* cache — pre-warming pays off exactly where
    #: eviction pressure exists — over a longer, denser trace than the
    #: headline rows, so recurring templates actually recur; both runs
    #: share every knob except ``StageConfig.forecast``
    forecast: ForecastConfig = field(default_factory=ForecastConfig)
    forecast_cache_capacity: int = 16
    forecast_duration_days: float = 3.0
    forecast_volume_scale: float = 0.4

    def __post_init__(self):
        if self.n_instances < 1:
            raise ValueError("n_instances must be >= 1")
        if self.duration_days <= 0:
            raise ValueError("duration_days must be positive")
        if self.volume_scale <= 0:
            raise ValueError("volume_scale must be positive")
        if self.service_clients < 1:
            raise ValueError("service_clients must be >= 1")
        if self.forecast_cache_capacity < 1:
            raise ValueError("forecast_cache_capacity must be >= 1")
        if self.forecast_duration_days <= 0:
            raise ValueError("forecast_duration_days must be positive")
        if self.forecast_volume_scale <= 0:
            raise ValueError("forecast_volume_scale must be positive")


@dataclass
class ScenarioResult:
    """One scenario's replays plus the matrix row derived from them."""

    scenario: Scenario
    replays: List[InstanceReplay]
    #: forecast-vs-reactive scoring summary (``forecast_scored``
    #: scenarios only): hit rates, p99 absolute errors and their deltas
    forecast: Optional[Dict[str, float]] = None

    # ------------------------------------------------------------------
    def pooled(self, attr: str) -> np.ndarray:
        return np.concatenate([getattr(r, attr) for r in self.replays])

    @property
    def metrics(self) -> Dict[str, float]:
        """Deterministic per-scenario summary (the matrix row)."""
        true = self.pooled("true")
        stage_pred = self.pooled("stage_pred")
        autowlm_pred = self.pooled("autowlm_pred")
        hits = sum(r.stage_stats["cache_hits"] for r in self.replays)
        misses = sum(r.stage_stats["cache_misses"] for r in self.replays)
        stage_mae = float(np.mean(absolute_errors(true, stage_pred)))
        autowlm_mae = float(np.mean(absolute_errors(true, autowlm_pred)))
        return {
            "n_queries": int(true.size),
            "cache_hit_rate": hits / max(hits + misses, 1),
            "stage_mae": stage_mae,
            "stage_p50_qe": float(np.median(q_errors(true, stage_pred))),
            "autowlm_mae": autowlm_mae,
            "improvement": improvement(stage_mae, autowlm_mae),
            "n_retrains": int(sum(r.stage_stats["n_local_retrains"] for r in self.replays)),
        }


class ScenarioRunner:
    """Fans a scenario matrix over the fleet-sweep engine.

    Each scenario sweeps the *same* instances (same seed, same volume,
    same duration) with only the scenario mutations differing, so matrix
    rows are directly comparable against the baseline row.
    """

    def __init__(
        self,
        config: Optional[ScenarioSweepConfig] = None,
        scenarios: Optional[Sequence[Scenario]] = None,
    ):
        self.config = config or ScenarioSweepConfig()
        self.scenarios = tuple(scenarios) if scenarios is not None else registered_scenarios()
        if not self.scenarios:
            raise ValueError("no scenarios to run")

    # ------------------------------------------------------------------
    def fleet_config(self, scenario: Scenario) -> FleetConfig:
        """The scenario's fleet: shared scale, scenario riding inside.

        A null config and ``scenario=None`` generate byte-identical
        traces (the generator normalizes), so the config rides along
        unconditionally.
        """
        return FleetConfig(
            seed=self.config.seed,
            volume_scale=self.config.volume_scale,
            scenario=scenario.config,
        )

    def sweeper(
        self,
        scenario: Scenario,
        stage_config: Optional[StageConfig] = None,
        volume_scale: Optional[float] = None,
    ) -> FleetSweeper:
        cfg = self.config
        fleet_config = self.fleet_config(scenario)
        if volume_scale is not None:
            fleet_config = replace(fleet_config, volume_scale=volume_scale)
        return FleetSweeper(
            fleet_config=fleet_config,
            stage_config=stage_config if stage_config is not None else cfg.stage,
            random_state=cfg.seed,
            backend=cfg.backend,
            via_service=cfg.via_service,
            service_config=cfg.service_config,
            service_clients=cfg.service_clients,
            via_gateway=cfg.via_gateway,
            gateway_config=cfg.gateway_config,
            n_jobs=cfg.n_jobs,
        )

    def run(self, scenario: Scenario) -> ScenarioResult:
        """Replay one scenario over the evaluation instances."""
        replays = self.sweeper(scenario).replay_indices(
            range(self.config.n_instances), self.config.duration_days
        )
        forecast = self.score_forecast(scenario) if scenario.forecast_scored else None
        return ScenarioResult(scenario=scenario, replays=replays, forecast=forecast)

    # ------------------------------------------------------------------
    def _scoring_stage_configs(self) -> Tuple[StageConfig, StageConfig]:
        """The (reactive, forecast-on) stage-config pair for scoring."""
        cfg = self.config
        reactive = replace(
            cfg.stage,
            cache=replace(cfg.stage.cache, capacity=cfg.forecast_cache_capacity),
        )
        return reactive, replace(reactive, forecast=cfg.forecast)

    def score_forecast(self, scenario: Scenario) -> Dict[str, float]:
        """Forecast-driven vs reactive serving on one scenario.

        Two replays of the *same* op stream (same seed, same mutations,
        same small cache) differing only in ``StageConfig.forecast``;
        both numbers are deterministic functions of the replay arrays,
        so the deltas sit behind the results-drift gate like every
        other matrix value.  The p99 is of absolute prediction error —
        never latency — so it is bit-stable at any ``n_jobs`` and on
        any backend tier.
        """
        cfg = self.config
        reactive_cfg, forecast_cfg = self._scoring_stage_configs()
        summaries = {}
        for label, stage_config in (("reactive", reactive_cfg), ("forecast", forecast_cfg)):
            replays = self.sweeper(
                scenario,
                stage_config=stage_config,
                volume_scale=cfg.forecast_volume_scale,
            ).replay_indices(range(cfg.n_instances), cfg.forecast_duration_days)
            true = np.concatenate([r.true for r in replays])
            stage_pred = np.concatenate([r.stage_pred for r in replays])
            hits = sum(r.stage_stats["cache_hits"] for r in replays)
            misses = sum(r.stage_stats["cache_misses"] for r in replays)
            summaries[label] = {
                "hit_rate": hits / max(hits + misses, 1),
                "p99_abs_error": float(
                    np.percentile(absolute_errors(true, stage_pred), 99)
                ),
                "n_prewarm_restores": int(
                    sum(r.stage_stats["n_prewarm_restores"] for r in replays)
                ),
                "n_prewarm_touches": int(
                    sum(r.stage_stats["n_prewarm_touches"] for r in replays)
                ),
            }
        reactive, forecast = summaries["reactive"], summaries["forecast"]
        return {
            "reactive_hit_rate": reactive["hit_rate"],
            "forecast_hit_rate": forecast["hit_rate"],
            "hit_delta": forecast["hit_rate"] - reactive["hit_rate"],
            "reactive_p99": reactive["p99_abs_error"],
            "forecast_p99": forecast["p99_abs_error"],
            "p99_delta": forecast["p99_abs_error"] - reactive["p99_abs_error"],
            "n_prewarm_restores": forecast["n_prewarm_restores"],
            "n_prewarm_touches": forecast["n_prewarm_touches"],
        }

    def run_matrix(self) -> List[ScenarioResult]:
        """Replay every scenario, in registration order."""
        return [self.run(scenario) for scenario in self.scenarios]


# ---------------------------------------------------------------------------
# reporting
# ---------------------------------------------------------------------------
def render_matrix(results: Sequence[ScenarioResult], config: ScenarioSweepConfig) -> str:
    """The fixed-width scenario matrix (``results/scenario_matrix.txt``).

    Every value is a deterministic function of the replay arrays — no
    wall-clock, no memory — so the report is stable across runs and
    machines and sits behind CI's results-drift gate.
    """
    rows = []
    for result in results:
        m = result.metrics
        fc = result.forecast
        rows.append(
            [
                result.scenario.name,
                m["n_queries"],
                f"{m['cache_hit_rate']:.3f}",
                m["stage_mae"],
                m["stage_p50_qe"],
                m["autowlm_mae"],
                f"{m['improvement']:+.0%}",
                m["n_retrains"],
                f"{fc['hit_delta']:+.3f}" if fc is not None else "-",
                f"{fc['p99_delta']:+.2f}" if fc is not None else "-",
            ]
        )
    title = (
        "Scenario stress matrix: Stage vs AutoWLM under workload mutations\n"
        f"({config.n_instances} instances x {config.duration_days} days, "
        f"volume_scale={config.volume_scale}, seed={config.seed}, "
        f"via_service={config.via_service})\n"
        "fc-* columns: forecast-driven vs reactive serving deltas "
        "(cache hit rate / p99 abs error), scored at cache="
        f"{config.forecast_cache_capacity}, "
        f"{config.forecast_duration_days} days, "
        f"volume_scale={config.forecast_volume_scale}"
    )
    return render_simple_table(
        title,
        [
            "scenario",
            "queries",
            "hit-rate",
            "Stage-MAE",
            "P50-QE",
            "AutoWLM-MAE",
            "vs-AutoWLM",
            "retrains",
            "fc-dHit",
            "fc-dP99",
        ],
        rows,
    )
