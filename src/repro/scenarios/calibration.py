"""Calibration scorecard: empirical interval coverage per source.

The uncertainty-aware pipeline threads a calibrated interval through
every prediction (Welford-derived for cache hits, member-spread quantile
bounds for the local ensemble, residual-variance for the global model).
This module *scores* those intervals: replay a small deterministic sweep
and, for each source, compare the fraction of true exec-times that fell
inside the interval (empirical coverage) against the pipeline-wide
nominal confidence.

The committed ``results/calibration_scorecard.txt`` sits behind CI's
results-drift gate; both entry points regenerate it bit-for-bit::

    PYTHONPATH=src python -m repro.scenarios calibration
    PYTHONPATH=src python -m pytest benchmarks/test_calibration_scorecard.py
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.core.config import GlobalModelConfig, fast_profile
from repro.harness.experiments import SweepConfig, SweepResult, run_sweep
from repro.ml.intervals import NOMINAL_CONFIDENCE, empirical_coverage

__all__ = [
    "CalibrationRow",
    "calibration_rows",
    "calibration_sweep_config",
    "render_scorecard",
    "run_calibration",
]


def calibration_sweep_config(n_jobs: int = 1) -> SweepConfig:
    """The committed scorecard's sweep: small, deterministic, and with a
    global model so all three interval sources populate.

    ``n_jobs`` is excluded from the determinism surface (any value is
    bit-identical); everything else is pinned — changing it would drift
    the committed scorecard.
    """
    return SweepConfig(
        seed=17,
        n_eval_instances=4,
        n_train_instances=3,
        duration_days=1.5,
        volume_scale=0.2,
        stage=fast_profile(),
        global_model=GlobalModelConfig(
            hidden_dim=32, n_conv_layers=3, epochs=10, max_queries_per_instance=200
        ),
        n_jobs=n_jobs,
    )


@dataclass(frozen=True)
class CalibrationRow:
    """Coverage summary for one interval source."""

    source: str
    n: int
    #: fraction of true exec-times inside [interval_low, interval_high]
    coverage: float
    #: median interval width (seconds) over the source's rows
    median_width: float
    #: fraction of the source's rows with a degenerate (zero-width)
    #: interval — e.g. single-observation cache entries
    degenerate_fraction: float


def _row(source: str, true, low, high) -> CalibrationRow:
    mask = ~(np.isnan(low) | np.isnan(high))
    n = int(mask.sum())
    if n == 0:
        return CalibrationRow(source, 0, float("nan"), float("nan"), float("nan"))
    width = high[mask] - low[mask]
    return CalibrationRow(
        source=source,
        n=n,
        coverage=empirical_coverage(true, low, high),
        median_width=float(np.median(width)),
        degenerate_fraction=float(np.mean(width <= 0.0)),
    )


def calibration_rows(result: SweepResult) -> List[CalibrationRow]:
    """Per-source coverage rows pooled across a sweep's replays.

    ``routed`` scores the interval of whatever answer Stage actually
    returned; ``cache``/``ensemble``/``global`` score each component on
    every query where it produced an answer.
    """
    true = result.pooled("true")
    rows = [
        _row(
            "routed",
            true,
            result.pooled("stage_interval_low"),
            result.pooled("stage_interval_high"),
        ),
        _row(
            "cache",
            true,
            result.pooled("cache_interval_low"),
            result.pooled("cache_interval_high"),
        ),
        _row(
            "ensemble",
            true,
            result.pooled("local_interval_low"),
            result.pooled("local_interval_high"),
        ),
        _row(
            "global",
            true,
            result.pooled("global_interval_low"),
            result.pooled("global_interval_high"),
        ),
    ]
    return rows


def render_scorecard(rows: List[CalibrationRow], config: SweepConfig) -> str:
    """Deterministic text scorecard (the drift-gated artifact)."""
    lines = [
        "Calibration scorecard: empirical interval coverage per source",
        f"nominal confidence: {NOMINAL_CONFIDENCE:.2f}",
        (
            f"sweep: seed={config.seed} eval={config.n_eval_instances} "
            f"train={config.n_train_instances} days={config.duration_days:g} "
            f"volume={config.volume_scale:g}"
        ),
        "",
        f"{'source':<10} {'n':>7} {'coverage':>9} {'gap':>8} "
        f"{'med_width_s':>12} {'degenerate':>11}",
    ]
    for row in rows:
        if row.n == 0:
            lines.append(f"{row.source:<10} {0:>7} {'-':>9} {'-':>8} {'-':>12} {'-':>11}")
            continue
        gap = row.coverage - NOMINAL_CONFIDENCE
        lines.append(
            f"{row.source:<10} {row.n:>7} {row.coverage:>9.4f} {gap:>+8.4f} "
            f"{row.median_width:>12.4f} {row.degenerate_fraction:>11.4f}"
        )
    return "\n".join(lines)


def run_calibration(n_jobs: int = 1):
    """Run the committed-scale sweep and return ``(rows, report)``."""
    config = calibration_sweep_config(n_jobs=n_jobs)
    result = run_sweep(config)
    rows = calibration_rows(result)
    return rows, render_scorecard(rows, config)
