"""Network front door: an asyncio wire protocol over the fleet gateway.

Stage answers a prediction per arriving query *inside* Redshift, so the
production shape of this serving tier is a real request path: clients on
the admission path talk to the fleet over a socket, not over an
in-process futures API.  :class:`WireServer` is that front door — an
asyncio TCP server in front of a :class:`~repro.service.FleetGateway`
speaking a compact length-prefixed binary frame protocol (modeled on the
front-end/gRPC split in brad-style serving stacks, minus the generated
stubs: the whole codec is ~40 lines of ``struct``).

Frame format (version 1)
------------------------
Every frame, both directions::

    u32 body_length | u8 op_code | u32 request_id | payload

- ``body_length`` covers everything after the length word and is capped
  by ``WireConfig.max_frame_bytes`` (oversized prefixes are rejected
  with a structured error before any allocation).
- ``request_id`` is chosen by the client and echoed verbatim on the
  response, so responses may arrive out of submission order (predictions
  resolve whenever their micro-batch flushes).  ``request_id`` 0 is
  reserved for server-initiated session-level frames (idle timeout,
  unrecoverable protocol faults).
- The first frame of a session MUST be HELLO; its payload starts with a
  4-byte magic (``STGW``) and a ``u16`` protocol version, followed by a
  UTF-8 client name.  Anything else fails the handshake with a
  structured error frame and a close — the server never unpickles a
  byte from a stream that has not passed the magic/version check.

Ops: client→server HELLO, PREDICT, OBSERVE, STATS, PING, REGISTER,
RESERVE, GOODBYE, plus the control-plane admin ops MIGRATE, RESIZE and
ROUTES (live instance migration, shard grow/shrink and the versioned
routing table — the :class:`~repro.service.FleetController` loop works
over the socket too); server→client RESULT, ERROR, RETRY_AFTER.  RESULT
payloads are pickled Python values (the same objects that already cross
the gateway's process queues, so socket replays are bit-identical);
ERROR and RETRY_AFTER payloads are JSON documents with machine-readable
``code`` fields — no client ever parses an exception message.

Determinism over the wire
-------------------------
Live-mode sequence numbers are assigned at **session ingress**: the
reader coroutine submits each instance op in frame arrival order and the
gateway claims the instance's next slot under the shard submit lock, so
"the op stream the client sent" is exactly "the op stream the predictor
executes".  Replay-mode clients RESERVE a sequence range up front and
submit with explicit seq values — :func:`replay_trace_via_socket` is the
socket analogue of :meth:`FleetGateway.replay_components` and the
``via_socket`` replay modes are bit-identical (arrays *and* cache and
counter accounting) to direct, ``via_service`` and ``via_gateway``
replays for any shard/connection count.

Admission control
-----------------
A saturated shard queue surfaces as a protocol-level RETRY_AFTER frame
carrying the machine-readable back-off hint from
:class:`~repro.service.GatewayBackpressureError` — the session stays
open and the client retries; over-capacity never drops a connection.
"""

from __future__ import annotations

import asyncio
import contextlib
import itertools
import json
import pickle
import struct
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from functools import partial
from typing import Dict, List, Optional, Tuple

from repro.core.config import WireConfig

from .gateway import FleetGateway, GatewayBackpressureError, ShardCrashedError
from .scheduler import OBSERVE, PREDICT

__all__ = [
    "MAGIC",
    "PROTOCOL_VERSION",
    "AsyncWireClient",
    "WireClient",
    "WireError",
    "WireServer",
    "encode_frame",
    "replay_trace_via_socket",
]

MAGIC = b"STGW"
PROTOCOL_VERSION = 1

_LEN = struct.Struct("!I")
_HEAD = struct.Struct("!BI")  # op code, request id
_HELLO_PREFIX = struct.Struct("!4sH")  # magic, protocol version

# client -> server
OP_HELLO = 0x01
OP_PREDICT = 0x02
OP_OBSERVE = 0x03
OP_STATS = 0x04
OP_PING = 0x05
OP_REGISTER = 0x06
OP_RESERVE = 0x07
OP_GOODBYE = 0x08
# client -> server: control-plane admin ops
OP_MIGRATE = 0x09
OP_RESIZE = 0x0A
OP_ROUTES = 0x0B
# server -> client
OP_RESULT = 0x10
OP_ERROR = 0x11
OP_RETRY_AFTER = 0x12

#: machine-readable ``code`` values carried by ERROR frames
E_BAD_HELLO = "bad-hello"
E_BAD_VERSION = "unsupported-version"
E_MALFORMED = "malformed-frame"
E_TOO_LARGE = "frame-too-large"
E_UNKNOWN_OP = "unknown-op"
E_UNKNOWN_INSTANCE = "unknown-instance"
E_INVALID = "invalid-request"
E_SHARD_CRASHED = "shard-crashed"
E_CLOSED = "gateway-closed"
E_IDLE_TIMEOUT = "idle-timeout"
E_WRITE_TIMEOUT = "write-timeout"
E_INTERNAL = "internal"

#: session-level frames (idle timeout, protocol faults) use request id 0
SESSION_RID = 0


class WireError(RuntimeError):
    """A structured protocol-level error frame, surfaced client-side
    when no more specific exception type applies."""

    def __init__(self, code: str, message: str):
        self.code = code
        super().__init__(f"[{code}] {message}")


class _ProtocolError(Exception):
    """Server-side: the byte stream violated the framing rules.  After
    one of these the stream cannot be resynchronised, so the session is
    told why (an ERROR frame) and closed."""

    def __init__(self, code: str, message: str):
        self.code = code
        super().__init__(message)


# ---------------------------------------------------------------------------
# frame codec
# ---------------------------------------------------------------------------
def encode_frame(op: int, request_id: int, payload: bytes = b"") -> bytes:
    """One wire frame: ``u32 length | u8 op | u32 request_id | payload``."""
    body = _HEAD.pack(op, request_id) + payload
    return _LEN.pack(len(body)) + body


def _pickle(value) -> bytes:
    return pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)


def _error_payload(code: str, message: str, **extra) -> bytes:
    doc = {"code": code, "message": message}
    doc.update(extra)
    return json.dumps(doc).encode("utf-8")


def _frame_for_exception(request_id: int, exc: BaseException) -> bytes:
    """Map a gateway/server exception to its structured response frame."""
    if isinstance(exc, GatewayBackpressureError):
        payload = json.dumps(
            {
                "shard_index": exc.shard_index,
                "instance_id": exc.instance_id,
                "timeout_s": exc.timeout_s,
                "retry_after_s": exc.retry_after_s,
            }
        ).encode("utf-8")
        return encode_frame(OP_RETRY_AFTER, request_id, payload)
    if isinstance(exc, ShardCrashedError):
        payload = _error_payload(
            E_SHARD_CRASHED,
            str(exc),
            shard_index=exc.shard_index,
            instance_id=exc.instance_id,
        )
        return encode_frame(OP_ERROR, request_id, payload)
    if isinstance(exc, KeyError):
        message = str(exc.args[0]) if exc.args else str(exc)
        return encode_frame(OP_ERROR, request_id, _error_payload(E_UNKNOWN_INSTANCE, message))
    if isinstance(exc, ValueError):
        return encode_frame(OP_ERROR, request_id, _error_payload(E_INVALID, str(exc)))
    if isinstance(exc, RuntimeError) and "closed" in str(exc):
        return encode_frame(OP_ERROR, request_id, _error_payload(E_CLOSED, str(exc)))
    payload = _error_payload(E_INTERNAL, f"{type(exc).__name__}: {exc}")
    return encode_frame(OP_ERROR, request_id, payload)


def _exception_for_frame(op: int, payload: bytes) -> BaseException:
    """Client-side inverse of :func:`_frame_for_exception`."""
    try:
        doc = json.loads(payload)
    except (ValueError, UnicodeDecodeError):
        return WireError(E_MALFORMED, "undecodable error frame from server")
    if op == OP_RETRY_AFTER:
        return GatewayBackpressureError(
            doc.get("shard_index", -1),
            doc.get("timeout_s", 0.0),
            instance_id=doc.get("instance_id"),
            retry_after_s=doc.get("retry_after_s"),
        )
    code, message = doc.get("code", E_INTERNAL), doc.get("message", "")
    if code == E_SHARD_CRASHED:
        return ShardCrashedError(doc.get("shard_index", -1), doc.get("instance_id"))
    if code == E_UNKNOWN_INSTANCE:
        return KeyError(message)
    if code == E_INVALID:
        return ValueError(message)
    if code == E_CLOSED:
        return RuntimeError(message)
    return WireError(code, message)


async def _read_frame(reader: asyncio.StreamReader, max_frame_bytes: int):
    """Read one frame; raises :class:`_ProtocolError` on framing faults
    and :class:`asyncio.IncompleteReadError` on mid-frame EOF."""
    (length,) = _LEN.unpack(await reader.readexactly(_LEN.size))
    if length < _HEAD.size:
        raise _ProtocolError(
            E_MALFORMED, f"frame body of {length} bytes is shorter than the {_HEAD.size}B header"
        )
    if length > max_frame_bytes:
        raise _ProtocolError(
            E_TOO_LARGE, f"frame body of {length} bytes exceeds max_frame_bytes={max_frame_bytes}"
        )
    body = await reader.readexactly(length)
    op, request_id = _HEAD.unpack_from(body)
    return op, request_id, body[_HEAD.size :]


# ---------------------------------------------------------------------------
# server
# ---------------------------------------------------------------------------
class _Session:
    """Per-connection state, touched only on the server's event loop."""

    __slots__ = ("session_id", "peer", "client_name", "in_flight", "counters", "connected_at")

    def __init__(self, session_id: int, peer):
        self.session_id = session_id
        self.peer = peer
        self.client_name = ""
        self.in_flight = 0
        self.counters = {
            "predicts": 0,
            "observes": 0,
            "controls": 0,
            "pings": 0,
            "retry_after": 0,
            "errors": 0,
        }
        self.connected_at = time.monotonic()


class WireServer:
    """Asyncio TCP front door over a :class:`FleetGateway`.

    Runs its event loop on a background thread: :meth:`start` returns
    the bound ``(host, port)`` (``port=0`` binds an ephemeral port) and
    the caller keeps using the gateway object directly if it wants —
    the server is a pure protocol adapter, all state lives in the
    gateway.  Per-session lifecycle: a mandatory HELLO handshake, an
    idle timeout that never fires while ops are in flight, GOODBYE for
    clean close, and per-session op accounting surfaced under the STATS
    op's ``wire`` key.  A dirty disconnect kills exactly that session:
    its already-submitted ops still execute on their shard (sequence
    slots are claimed at ingress, so later ops never stall behind a
    vanished client), and every other session keeps serving.
    """

    def __init__(self, gateway: FleetGateway, config: Optional[WireConfig] = None):
        self.gateway = gateway
        self.config = config or WireConfig()
        self.address: Optional[Tuple[str, int]] = None
        self._session_ids = itertools.count(1)
        self._sessions: Dict[int, _Session] = {}
        self._submit_pool = ThreadPoolExecutor(
            max_workers=self.config.submit_workers, thread_name_prefix="wire-submit"
        )
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._closed = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> Tuple[str, int]:
        """Serve on a background thread; returns the bound address."""
        if self._thread is not None:
            raise RuntimeError("wire server already started")
        self._thread = threading.Thread(target=self._run, name="wire-server", daemon=True)
        self._thread.start()
        if not self._started.wait(timeout=30.0):
            raise RuntimeError("wire server failed to start within 30s")
        if self._startup_error is not None:
            self._thread.join(timeout=5.0)
            raise RuntimeError(f"wire server failed to bind: {self._startup_error}")
        assert self.address is not None
        return self.address

    def close(self) -> None:
        """Stop serving: close the listener and every open session.
        The gateway is left untouched (callers own its lifecycle)."""
        if self._closed:
            return
        self._closed = True
        loop = self._loop
        if loop is not None and self._stop is not None:
            with contextlib.suppress(RuntimeError):
                loop.call_soon_threadsafe(self._stop.set)
        if self._thread is not None:
            self._thread.join(timeout=30.0)
        self._submit_pool.shutdown(wait=False)

    def __enter__(self) -> "WireServer":
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        try:
            server = await asyncio.start_server(
                self._handle_connection, self.config.host, self.config.port
            )
        except OSError as exc:
            self._startup_error = exc
            self._started.set()
            return
        sockname = server.sockets[0].getsockname()
        self.address = (sockname[0], sockname[1])
        self._started.set()
        async with server:
            await self._stop.wait()
        # asyncio.run cancels the remaining connection tasks on return;
        # their finally blocks close the transports

    # ------------------------------------------------------------------
    # per-connection machinery (everything below runs on the loop)
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        session = _Session(next(self._session_ids), writer.get_extra_info("peername"))
        self._sessions[session.session_id] = session
        out_q: asyncio.Queue = asyncio.Queue()
        writer_task = asyncio.create_task(self._write_loop(out_q, writer))
        clean = False
        try:
            clean = await self._read_loop(session, out_q, reader)
        finally:
            self._sessions.pop(session.session_id, None)
            with contextlib.suppress(BaseException):
                if clean:
                    # a clean goodbye flushes responses for anything the
                    # client left in flight before the session ends
                    grace = time.monotonic() + 5.0
                    while session.in_flight > 0 and time.monotonic() < grace:
                        await asyncio.sleep(0.01)
                out_q.put_nowait(None)  # sentinel: flush queued frames, then stop
                await asyncio.wait_for(writer_task, timeout=5.0)
            writer_task.cancel()
            writer.close()
            with contextlib.suppress(BaseException):
                await writer.wait_closed()

    async def _write_loop(self, out_q: asyncio.Queue, writer) -> None:
        write_timeout = self.config.write_timeout_s
        while True:
            frame = await out_q.get()
            if frame is None:
                return
            try:
                writer.write(frame)
                await asyncio.wait_for(writer.drain(), timeout=write_timeout)
            except asyncio.TimeoutError:
                # Slow-reader reaping: the client stopped draining its
                # socket, so responses sharing this session would stall
                # behind the full send buffer forever.  Tell it why with
                # a best-effort session-level ERROR frame (rid 0 — it
                # rides the buffer if space ever frees), then hard-drop
                # the transport; the read side observes the close and
                # tears the session down like any dirty disconnect.
                with contextlib.suppress(Exception):
                    writer.write(
                        encode_frame(
                            OP_ERROR,
                            SESSION_RID,
                            _error_payload(
                                E_WRITE_TIMEOUT,
                                f"session not draining responses: send buffer "
                                f"full for {write_timeout:.1f}s",
                            ),
                        )
                    )
                transport = writer.transport
                if transport is not None:
                    transport.abort()
                return
            except (ConnectionError, OSError):
                return  # the read side observes the disconnect too

    async def _read_loop(self, session, out_q, reader) -> bool:
        """Process one session's inbound frames; True means clean close."""
        idle = self.config.idle_timeout_s
        max_bytes = self.config.max_frame_bytes

        def refuse(request_id: int, code: str, message: str) -> None:
            session.counters["errors"] += 1
            out_q.put_nowait(encode_frame(OP_ERROR, request_id, _error_payload(code, message)))

        # --- handshake: the first frame must be a well-formed HELLO ---
        try:
            op, request_id, payload = await asyncio.wait_for(
                _read_frame(reader, max_bytes), timeout=idle
            )
        except _ProtocolError as exc:
            refuse(SESSION_RID, exc.code, str(exc))
            return False
        except (asyncio.TimeoutError, asyncio.IncompleteReadError, ConnectionError, OSError):
            return False
        if op != OP_HELLO or len(payload) < _HELLO_PREFIX.size:
            refuse(request_id, E_BAD_HELLO, "first frame must be a HELLO with magic and version")
            return False
        magic, version = _HELLO_PREFIX.unpack_from(payload)
        if magic != MAGIC:
            refuse(request_id, E_BAD_HELLO, f"bad magic {magic!r} (want {MAGIC!r})")
            return False
        if version != PROTOCOL_VERSION:
            refuse(
                request_id,
                E_BAD_VERSION,
                f"server speaks protocol {PROTOCOL_VERSION}, client sent {version}",
            )
            return False
        session.client_name = payload[_HELLO_PREFIX.size :].decode("utf-8", "replace")
        hello_ack = json.dumps(
            {"session_id": session.session_id, "protocol_version": PROTOCOL_VERSION}
        ).encode("utf-8")
        out_q.put_nowait(encode_frame(OP_RESULT, request_id, hello_ack))

        # --- steady state ---
        while True:
            try:
                op, request_id, payload = await asyncio.wait_for(
                    _read_frame(reader, max_bytes), timeout=idle
                )
            except asyncio.TimeoutError:
                if session.in_flight > 0:
                    continue  # quiet client, busy gateway: not idle
                refuse(
                    SESSION_RID,
                    E_IDLE_TIMEOUT,
                    f"no frame for {idle:.1f}s with nothing in flight",
                )
                return False
            except _ProtocolError as exc:
                # framing is lost — the stream cannot be resynchronised
                refuse(SESSION_RID, exc.code, str(exc))
                return False
            except (asyncio.IncompleteReadError, ConnectionError, OSError):
                return False  # dirty disconnect
            if op == OP_GOODBYE:
                out_q.put_nowait(encode_frame(OP_RESULT, request_id, b""))
                return True
            await self._apply(session, out_q, op, request_id, payload)

    async def _apply(self, session, out_q, op: int, request_id: int, payload: bytes) -> None:
        """Apply one post-handshake frame.  Instance ops resolve
        asynchronously (their RESULT frame is queued by a done-callback
        bridged from the gateway's listener thread); control ops are
        answered before the next frame is read."""
        loop = asyncio.get_running_loop()

        def refuse(code: str, message: str) -> None:
            session.counters["errors"] += 1
            out_q.put_nowait(encode_frame(OP_ERROR, request_id, _error_payload(code, message)))

        def resolve(value) -> None:
            out_q.put_nowait(encode_frame(OP_RESULT, request_id, _pickle(value)))

        if op in (OP_PREDICT, OP_OBSERVE):
            try:
                instance_id, record, seq = pickle.loads(payload)
            except Exception as exc:
                refuse(E_MALFORMED, f"undecodable instance-op payload: {exc}")
                return
            session.counters["predicts" if op == OP_PREDICT else "observes"] += 1
            kind = PREDICT if op == OP_PREDICT else OBSERVE
            session.in_flight += 1
            # Ingress sequencing: this await serialises submission per
            # session (frame arrival order IS sequence order for live
            # ops), while the executor keeps a backpressure-blocked
            # enqueue off the event loop so other sessions keep serving.
            try:
                future = await loop.run_in_executor(
                    self._submit_pool,
                    partial(self.gateway._submit_instance_op, kind, instance_id, record, seq),
                )
            except BaseException as exc:
                session.in_flight -= 1
                if isinstance(exc, GatewayBackpressureError):
                    # admission control, not a failure: the session
                    # stays open and the client backs off retry_after_s
                    session.counters["retry_after"] += 1
                else:
                    session.counters["errors"] += 1
                out_q.put_nowait(_frame_for_exception(request_id, exc))
                return
            future.add_done_callback(partial(self._relay, loop, session, out_q, request_id))
        elif op == OP_REGISTER:
            try:
                (instance,) = pickle.loads(payload)
            except Exception as exc:
                refuse(E_MALFORMED, f"undecodable register payload: {exc}")
                return
            session.counters["controls"] += 1
            try:
                shard_index = await loop.run_in_executor(
                    self._submit_pool, self.gateway.register_instance, instance
                )
            except BaseException as exc:
                session.counters["errors"] += 1
                out_q.put_nowait(_frame_for_exception(request_id, exc))
                return
            resolve(shard_index)
        elif op == OP_RESERVE:
            try:
                instance_id, count = pickle.loads(payload)
            except Exception as exc:
                refuse(E_MALFORMED, f"undecodable reserve payload: {exc}")
                return
            session.counters["controls"] += 1
            try:
                base = self.gateway.reserve_sequence(instance_id, int(count))
            except BaseException as exc:
                session.counters["errors"] += 1
                out_q.put_nowait(_frame_for_exception(request_id, exc))
                return
            resolve(base)
        elif op == OP_STATS:
            session.counters["controls"] += 1
            try:
                gateway_stats = await loop.run_in_executor(self._submit_pool, self.gateway.stats)
            except BaseException as exc:
                session.counters["errors"] += 1
                out_q.put_nowait(_frame_for_exception(request_id, exc))
                return
            resolve({"gateway": gateway_stats, "wire": self._wire_stats()})
        elif op == OP_MIGRATE:
            try:
                instance_id, target_shard = pickle.loads(payload)
            except Exception as exc:
                refuse(E_MALFORMED, f"undecodable migrate payload: {exc}")
                return
            session.counters["controls"] += 1
            try:
                # a migration blocks on the source drain-through — keep
                # it on the executor so every session stays responsive
                info = await loop.run_in_executor(
                    self._submit_pool,
                    partial(self.gateway.migrate_instance, instance_id, int(target_shard)),
                )
            except BaseException as exc:
                session.counters["errors"] += 1
                out_q.put_nowait(_frame_for_exception(request_id, exc))
                return
            resolve(info)
        elif op == OP_RESIZE:
            try:
                (n_shards,) = pickle.loads(payload)
            except Exception as exc:
                refuse(E_MALFORMED, f"undecodable resize payload: {exc}")
                return
            session.counters["controls"] += 1
            try:
                info = await loop.run_in_executor(
                    self._submit_pool, partial(self.gateway.resize, int(n_shards))
                )
            except BaseException as exc:
                session.counters["errors"] += 1
                out_q.put_nowait(_frame_for_exception(request_id, exc))
                return
            resolve(info)
        elif op == OP_ROUTES:
            session.counters["controls"] += 1
            try:
                routes = await loop.run_in_executor(self._submit_pool, self.gateway.routes)
            except BaseException as exc:
                session.counters["errors"] += 1
                out_q.put_nowait(_frame_for_exception(request_id, exc))
                return
            resolve(routes)
        elif op == OP_PING:
            session.counters["pings"] += 1
            out_q.put_nowait(encode_frame(OP_RESULT, request_id, b""))
        else:
            # the framing is intact, only this op is unknown: answer a
            # structured error and keep the session
            refuse(E_UNKNOWN_OP, f"unknown op code {op:#04x}")

    def _relay(self, loop, session, out_q, request_id: int, future: Future) -> None:
        """Done-callback for gateway futures.  Runs on the gateway's
        listener thread: build the frame here, hop to the loop to
        deliver it (out_q and in_flight are loop-thread state)."""
        exc = future.exception()
        if exc is not None:
            frame = _frame_for_exception(request_id, exc)
        else:
            frame = encode_frame(OP_RESULT, request_id, _pickle(future.result()))

        def deliver() -> None:
            session.in_flight -= 1
            if frame[_LEN.size] != OP_RESULT:
                session.counters["errors"] += 1
            out_q.put_nowait(frame)

        with contextlib.suppress(RuntimeError):  # loop already closed
            loop.call_soon_threadsafe(deliver)

    def _wire_stats(self) -> dict:
        """Per-session op accounting (loop thread only)."""
        return {
            "n_sessions": len(self._sessions),
            "sessions": {
                s.session_id: {
                    "client_name": s.client_name,
                    "peer": str(s.peer),
                    "in_flight": s.in_flight,
                    "uptime_s": time.monotonic() - s.connected_at,
                    **s.counters,
                }
                for s in self._sessions.values()
            },
        }


# ---------------------------------------------------------------------------
# clients
# ---------------------------------------------------------------------------
class AsyncWireClient:
    """One wire session on the caller's event loop.

    Requests pipeline freely: each carries a fresh ``request_id`` and a
    background reader task resolves the matching future whenever its
    response frame lands, so many predictions can ride one connection
    with out-of-order completion.
    """

    def __init__(self, reader, writer, name: str, max_frame_bytes: int):
        self._reader = reader
        self._writer = writer
        self.name = name
        self._max_frame_bytes = max_frame_bytes
        self._request_ids = itertools.count(1)
        self._pending: Dict[int, asyncio.Future] = {}
        self._reader_task: Optional[asyncio.Task] = None
        self._session_error: Optional[BaseException] = None
        self._closed = False
        self.session_info: Optional[dict] = None

    @classmethod
    async def connect(
        cls,
        host: str,
        port: int,
        name: str = "wire-client",
        timeout: float = 30.0,
        max_frame_bytes: int = WireConfig().max_frame_bytes,
    ) -> "AsyncWireClient":
        reader, writer = await asyncio.wait_for(asyncio.open_connection(host, port), timeout)
        client = cls(reader, writer, name, max_frame_bytes)
        try:
            await client._handshake(timeout)
        except BaseException:
            writer.close()
            with contextlib.suppress(BaseException):
                await writer.wait_closed()
            raise
        return client

    async def _handshake(self, timeout: float) -> None:
        request_id = next(self._request_ids)
        payload = _HELLO_PREFIX.pack(MAGIC, PROTOCOL_VERSION) + self.name.encode("utf-8")
        self._writer.write(encode_frame(OP_HELLO, request_id, payload))
        await self._writer.drain()
        op, _, payload = await asyncio.wait_for(
            _read_frame(self._reader, self._max_frame_bytes), timeout
        )
        if op != OP_RESULT:
            raise _exception_for_frame(op, payload)
        self.session_info = json.loads(payload)
        self._reader_task = asyncio.create_task(self._read_loop())

    async def _read_loop(self) -> None:
        error: BaseException = ConnectionError("wire connection closed")
        try:
            while True:
                op, request_id, payload = await _read_frame(self._reader, self._max_frame_bytes)
                if request_id == SESSION_RID:
                    # server-initiated session teardown (idle timeout,
                    # protocol fault): everything outstanding fails
                    error = _exception_for_frame(op, payload)
                    return
                future = self._pending.pop(request_id, None)
                if future is None or future.done():
                    continue
                if op == OP_RESULT:
                    future.set_result(pickle.loads(payload) if payload else None)
                else:
                    future.set_exception(_exception_for_frame(op, payload))
        except asyncio.CancelledError:
            error = ConnectionError("wire client closed")
        except (asyncio.IncompleteReadError, ConnectionError, OSError) as exc:
            error = ConnectionError(f"wire connection lost: {exc}")
        except _ProtocolError as exc:
            error = WireError(exc.code, str(exc))
        finally:
            self._session_error = error
            pending, self._pending = self._pending, {}
            for future in pending.values():
                if not future.done():
                    future.set_exception(error)

    # -- low-level pipelining primitives -------------------------------
    def submit(self, op: int, payload: bytes = b"") -> "asyncio.Future":
        """Queue one request frame; resolve its future via the reader
        task.  Call :meth:`drain` between bursts to respect transport
        flow control."""
        if self._closed:
            raise RuntimeError("wire client is closed")
        if self._session_error is not None:
            raise self._session_error
        request_id = next(self._request_ids)
        future = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        self._writer.write(encode_frame(op, request_id, payload))
        return future

    def submit_predict(self, instance_id: str, record, seq: Optional[int] = None):
        return self.submit(OP_PREDICT, _pickle((instance_id, record, seq)))

    def submit_observe(self, instance_id: str, record, seq: Optional[int] = None):
        return self.submit(OP_OBSERVE, _pickle((instance_id, record, seq)))

    async def drain(self) -> None:
        try:
            await self._writer.drain()
        except (ConnectionError, OSError) as exc:
            raise ConnectionError(f"wire connection lost: {exc}") from None

    async def _request(self, op: int, payload: bytes = b""):
        future = self.submit(op, payload)
        await self.drain()
        return await future

    # -- the protocol --------------------------------------------------
    async def predict_components(self, instance_id: str, record, seq: Optional[int] = None):
        """One prediction; resolves to its
        :class:`~repro.core.stage.RoutedComponents`."""
        return await self._request(OP_PREDICT, _pickle((instance_id, record, seq)))

    async def predict(self, instance_id: str, record, seq: Optional[int] = None):
        return (await self.predict_components(instance_id, record, seq=seq)).prediction

    async def observe(self, instance_id: str, record, seq: Optional[int] = None) -> None:
        await self._request(OP_OBSERVE, _pickle((instance_id, record, seq)))

    async def register_instance(self, instance) -> int:
        return await self._request(OP_REGISTER, _pickle((instance,)))

    async def reserve_sequence(self, instance_id: str, count: int) -> int:
        return await self._request(OP_RESERVE, _pickle((instance_id, int(count))))

    async def migrate_instance(self, instance_id: str, target_shard: int) -> dict:
        return await self._request(OP_MIGRATE, _pickle((instance_id, int(target_shard))))

    async def resize(self, n_shards: int) -> dict:
        return await self._request(OP_RESIZE, _pickle((int(n_shards),)))

    async def routes(self) -> dict:
        return await self._request(OP_ROUTES)

    async def stats(self) -> dict:
        return await self._request(OP_STATS)

    async def ping(self) -> float:
        start = time.perf_counter()
        await self._request(OP_PING)
        return time.perf_counter() - start

    async def close(self) -> None:
        """GOODBYE handshake, then tear the connection down."""
        if self._closed:
            return
        self._closed = True
        if self._session_error is None:
            with contextlib.suppress(BaseException):
                request_id = next(self._request_ids)
                future = asyncio.get_running_loop().create_future()
                self._pending[request_id] = future
                self._writer.write(encode_frame(OP_GOODBYE, request_id, b""))
                await self._writer.drain()
                await asyncio.wait_for(future, timeout=5.0)
        if self._reader_task is not None:
            self._reader_task.cancel()
            with contextlib.suppress(BaseException):
                await self._reader_task
        self._writer.close()
        with contextlib.suppress(BaseException):
            await self._writer.wait_closed()


class WireClient:
    """Synchronous facade over :class:`AsyncWireClient`.

    Owns a private event-loop thread; every method is thread-safe and
    the ``*_async`` variants return :class:`concurrent.futures.Future`,
    so many threads can pipeline ops over one connection (the replay
    harness's socket mode drives it exactly that way).
    """

    def __init__(
        self, host: str, port: int, name: str = "wire-client", timeout: float = 60.0
    ):
        self.timeout = timeout
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="wire-client-loop", daemon=True
        )
        self._thread.start()
        self._client: Optional[AsyncWireClient] = None
        try:
            self._client = asyncio.run_coroutine_threadsafe(
                AsyncWireClient.connect(host, port, name=name, timeout=timeout), self._loop
            ).result(timeout)
        except BaseException:
            self._shutdown_loop()
            raise

    @property
    def session_info(self) -> Optional[dict]:
        return self._client.session_info if self._client is not None else None

    def _call(self, coro) -> Future:
        return asyncio.run_coroutine_threadsafe(coro, self._loop)

    # -- async pipelining ---------------------------------------------
    def predict_async(self, instance_id: str, record, seq: Optional[int] = None) -> Future:
        return self._call(self._client.predict_components(instance_id, record, seq=seq))

    def observe_async(self, instance_id: str, record, seq: Optional[int] = None) -> Future:
        return self._call(self._client.observe(instance_id, record, seq=seq))

    # -- blocking facade ----------------------------------------------
    def predict_components(
        self, instance_id: str, record, seq: Optional[int] = None, timeout: Optional[float] = None
    ):
        return self.predict_async(instance_id, record, seq=seq).result(timeout or self.timeout)

    def predict(
        self, instance_id: str, record, seq: Optional[int] = None, timeout: Optional[float] = None
    ):
        return self.predict_components(instance_id, record, seq=seq, timeout=timeout).prediction

    def observe(
        self, instance_id: str, record, seq: Optional[int] = None, timeout: Optional[float] = None
    ) -> None:
        self.observe_async(instance_id, record, seq=seq).result(timeout or self.timeout)

    def register_instance(self, instance, timeout: Optional[float] = None) -> int:
        return self._call(self._client.register_instance(instance)).result(timeout or self.timeout)

    def reserve_sequence(
        self, instance_id: str, count: int, timeout: Optional[float] = None
    ) -> int:
        return self._call(self._client.reserve_sequence(instance_id, count)).result(
            timeout or self.timeout
        )

    def migrate_instance(
        self, instance_id: str, target_shard: int, timeout: Optional[float] = None
    ) -> dict:
        """Ask the server's gateway to migrate one live instance."""
        return self._call(self._client.migrate_instance(instance_id, target_shard)).result(
            timeout or self.timeout
        )

    def resize(self, n_shards: int, timeout: Optional[float] = None) -> dict:
        """Ask the server's gateway to grow/shrink its shard set."""
        return self._call(self._client.resize(n_shards)).result(timeout or self.timeout)

    def routes(self, timeout: Optional[float] = None) -> dict:
        """Fetch the gateway's versioned routing table."""
        return self._call(self._client.routes()).result(timeout or self.timeout)

    def stats(self, timeout: Optional[float] = None) -> dict:
        return self._call(self._client.stats()).result(timeout or self.timeout)

    def ping(self, timeout: Optional[float] = None) -> float:
        return self._call(self._client.ping()).result(timeout or self.timeout)

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        if self._client is not None:
            with contextlib.suppress(BaseException):
                self._call(self._client.close()).result(10.0)
            self._client = None
        self._shutdown_loop()

    def abort(self) -> None:
        """Hard-drop the TCP connection — no GOODBYE, no flush.  This is
        the dirty-disconnect path the lifecycle tests exercise."""
        client = self._client
        self._client = None
        if client is not None:
            with contextlib.suppress(BaseException):
                # reap the reader on the loop before stopping it, so
                # every in-flight future fails (ConnectionError) rather
                # than hanging on a dead loop
                self._call(self._abort_async(client)).result(10.0)
        self._shutdown_loop()

    @staticmethod
    async def _abort_async(client: AsyncWireClient) -> None:
        transport = client._writer.transport
        if transport is not None:
            transport.abort()
        if client._reader_task is not None:
            client._reader_task.cancel()
            with contextlib.suppress(BaseException):
                await client._reader_task

    def _shutdown_loop(self) -> None:
        if self._thread.is_alive():
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=10.0)
        if not self._loop.is_running():
            self._loop.close()

    def __enter__(self) -> "WireClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


# ---------------------------------------------------------------------------
# socket replay (the via_socket harness mode)
# ---------------------------------------------------------------------------
def replay_trace_via_socket(
    host: str,
    port: int,
    trace,
    n_connections: int = 1,
    timeout: float = 300.0,
) -> List:
    """Replay one instance's fused predict/observe stream over real
    TCP connections; returns per-query components in trace order.

    The socket analogue of :meth:`FleetGateway.replay_components`,
    routed through the one
    :func:`~repro.service.replay_trace_via_client` driver with a real
    per-worker connection factory: the whole sequence range is RESERVEd
    up front, then ``n_connections`` connections submit strided
    predict/observe pairs with explicit sequence numbers — so any
    connection count and interleaving reproduces the direct replay
    bit-for-bit.  Each connection collects its own responses before
    closing (responses ride the connection their request used).
    """
    from .client import replay_trace_via_client

    instance_id = trace.instance.instance_id
    connection_ids = itertools.count()

    def factory() -> WireClient:
        return WireClient(
            host, port, name=f"replay-{instance_id}-{next(connection_ids)}"
        )

    return replay_trace_via_client(
        factory, trace, n_clients=n_connections, timeout=timeout
    )


@dataclass
class _SocketReplayContext:
    """A gateway fronted by a wire server plus an admin session — the
    shared scaffolding of both via_socket replay entry points."""

    gateway: FleetGateway
    server: WireServer
    admin: Optional[WireClient] = None
    address: Tuple[str, int] = field(default=("", 0))

    def __enter__(self) -> "_SocketReplayContext":
        try:
            self.address = self.server.start()
            host, port = self.address
            self.admin = WireClient(host, port, name="via-socket-admin")
        except BaseException:
            self.__exit__(None, None, None)
            raise
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self.admin is not None:
            self.admin.close()
        self.server.close()
        self.gateway.close()

    def register(self, instance) -> int:
        return self.admin.register_instance(instance)

    def replay(self, trace, n_connections: int) -> List:
        host, port = self.address
        return replay_trace_via_socket(host, port, trace, n_connections=n_connections)

    def instance_stats(self) -> Dict[str, dict]:
        """Per-instance stats fetched over the wire — the accounting
        side of the parity contract round-trips the socket too."""
        self.gateway.drain()
        return self.admin.stats()["gateway"]["instances"]
