"""Serving-layer benchmarks: micro-batching and fleet-gateway scaling.

Drives a :class:`PredictionService` with a generated fleet trace, the
way the paper's deployment sees traffic: a warmup segment replays
queries with feedback (predict + observe) until the instance's cache and
local ensemble are warm, then the measurement segment fires the
remaining queries as concurrent prediction requests and reports
throughput and client-observed latency percentiles.

Two serving modes run over the *same* warmed predictor state:

- ``request-at-a-time`` — one client, ``max_batch_size=1``: every
  model-bound query pays a full (single-row) ensemble invocation;
- ``micro-batched`` — many concurrent clients with the batching knobs
  on: model-bound queries share one ensemble call per micro-batch.

Predictions are bit-identical between the modes (the scheduler's
determinism contract); the report is purely about throughput/latency.
``results/service_bench.txt`` is written by ``python -m repro.service``
and by ``benchmarks/test_service_bench.py``, which asserts the batched
mode's throughput floor.

:func:`run_gateway_bench` is the fleet-tier sibling: a whole fleet of
instances behind one :class:`~repro.service.FleetGateway`, swept over a
shards × clients grid (``python -m repro.service bench --gateway``,
``results/gateway_bench.txt``).  The gateway determinism contract is
*verified* while benchmarking: every combination must produce
bit-identical predictions for the measured traffic.
"""

from __future__ import annotations

import asyncio
import statistics
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.config import (
    CacheConfig,
    GatewayConfig,
    LocalModelConfig,
    ServiceConfig,
    StageConfig,
    TrainingPoolConfig,
)
from repro.core.stage import BatchRouter, StagePredictor
from repro.global_model.model import GlobalModel
from repro.workload.fleet import FleetConfig, FleetGenerator

from .gateway import FleetGateway
from .server import PredictionService

__all__ = [
    "GatewayBenchConfig",
    "GatewayBenchResult",
    "ServiceBenchConfig",
    "ServiceBenchResult",
    "WireBenchConfig",
    "WireBenchResult",
    "run_gateway_bench",
    "run_service_bench",
    "run_wire_bench",
]


#: paper-sized local ensemble at a moderate tree budget — the operating
#: point where per-request single-row inference hurts most (same shape
#: as the replay perf benchmark)
_BENCH_STAGE = StageConfig(
    cache=CacheConfig(capacity=500),
    pool=TrainingPoolConfig(max_size=600),
    local=LocalModelConfig(
        n_members=10,
        n_estimators=40,
        max_depth=3,
        min_train_size=30,
        retrain_interval=300,
    ),
)


@dataclass(frozen=True)
class ServiceBenchConfig:
    """Scale and batching knobs for one serving benchmark run."""

    seed: int = 7
    instance_index: int = 0
    duration_days: float = 2.0
    volume_scale: float = 0.25
    #: fraction of the trace replayed (with feedback) before measuring
    warmup_fraction: float = 0.5
    #: concurrent closed-loop clients in the micro-batched mode
    n_clients: int = 16
    max_batch_size: int = 16
    max_batch_latency_ms: float = 5.0
    stage: StageConfig = field(default_factory=lambda: _BENCH_STAGE)


@dataclass
class ServiceBenchResult:
    """Per-mode throughput/latency plus the headline speedup."""

    instance_id: str
    n_warmup: int
    n_measured: int
    cache_hit_fraction: float
    modes: Dict[str, Dict[str, float]]
    speedup: float

    def render(self) -> str:
        lines = [
            f"service bench: instance {self.instance_id}, "
            f"{self.n_warmup} warmup + {self.n_measured} measured queries, "
            f"cache answers {self.cache_hit_fraction:.0%} of measured traffic",
        ]
        for name, m in self.modes.items():
            lines.append(
                f"{name:<18} {m['n_clients']:>3.0f} client(s), "
                f"batch<={m['max_batch_size']:.0f}: "
                f"{m['qps']:8.0f} q/s   "
                f"p50={m['p50_ms']:7.2f} ms  p95={m['p95_ms']:7.2f} ms  "
                f"p99={m['p99_ms']:7.2f} ms   "
                f"{m['n_batches']:.0f} batches (mean {m['mean_batch']:.1f})"
            )
        lines.append(f"micro-batched throughput over request-at-a-time: " f"{self.speedup:.2f}x")
        lines.append("predictions bit-identical across modes (scheduler determinism " "contract)")
        return "\n".join(lines)


def _drive_mode(
    stage: StagePredictor,
    records,
    n_clients: int,
    service_config: ServiceConfig,
) -> Dict[str, float]:
    """Fire ``records`` at a service from closed-loop client threads."""
    service = PredictionService.from_stage(stage, service_config=service_config)
    latencies: List[List[float]] = [[] for _ in range(n_clients)]
    position = {"next": 0}
    lock = threading.Lock()

    def client(worker_index: int) -> None:
        lat = latencies[worker_index]
        while True:
            with lock:
                i = position["next"]
                if i >= len(records):
                    return
                position["next"] = i + 1
            t0 = time.perf_counter()
            service.predict(records[i])
            lat.append(time.perf_counter() - t0)

    threads = [
        threading.Thread(target=client, args=(w,)) for w in range(n_clients)
    ]
    t0 = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - t0
    service.drain()
    sched = dict(service.scheduler.stats)
    service.close()

    lat_ms = np.array([v for lat in latencies for v in lat]) * 1000.0
    n_batches = max(sched["n_batches"], 1)
    return {
        "n_clients": float(n_clients),
        "max_batch_size": float(service_config.max_batch_size),
        "wall_s": wall,
        "qps": len(records) / wall,
        "p50_ms": float(np.percentile(lat_ms, 50)),
        "p95_ms": float(np.percentile(lat_ms, 95)),
        "p99_ms": float(np.percentile(lat_ms, 99)),
        "n_batches": float(sched["n_batches"]),
        "mean_batch": sched["n_deferred"] / n_batches,
        "n_immediate": float(sched["n_immediate"]),
    }


def run_service_bench(
    config: Optional[ServiceBenchConfig] = None,
    global_model: Optional[GlobalModel] = None,
) -> ServiceBenchResult:
    """Run the serving benchmark; see the module docstring."""
    config = config or ServiceBenchConfig()
    gen = FleetGenerator(FleetConfig(seed=config.seed, volume_scale=config.volume_scale))
    trace = gen.generate_trace(gen.sample_instance(config.instance_index), config.duration_days)
    n_warmup = int(len(trace) * config.warmup_fraction)
    warmup, measured = trace[:n_warmup], trace[n_warmup:]
    if not measured:
        raise ValueError(
            f"bench trace has no measurement segment ({len(trace)} queries, "
            f"{n_warmup} warmup) — raise duration_days/volume_scale or "
            "lower warmup_fraction"
        )

    # Warm the predictor the fast (batched, bit-identical) way, then
    # measure pure serving traffic: predictions do not mutate the cache
    # or the models, so both modes see the exact same state and return
    # the exact same answers.
    stage = StagePredictor(
        trace.instance,
        global_model=global_model,
        config=config.stage,
        random_state=config.seed,
    )
    router = BatchRouter(stage)
    for record in warmup:
        router.route(record)
        router.observe(record)
    router.flush()
    hits_before = stage.cache.hits

    modes = {
        "request-at-a-time": _drive_mode(
            stage,
            measured,
            n_clients=1,
            service_config=ServiceConfig(
                max_batch_size=1, max_batch_latency_ms=0.0
            ),
        ),
        "micro-batched": _drive_mode(
            stage,
            measured,
            n_clients=config.n_clients,
            service_config=ServiceConfig(
                max_batch_size=config.max_batch_size,
                max_batch_latency_ms=config.max_batch_latency_ms,
            ),
        ),
    }
    hit_fraction = (stage.cache.hits - hits_before) / (2.0 * len(measured))
    return ServiceBenchResult(
        instance_id=trace.instance.instance_id,
        n_warmup=n_warmup,
        n_measured=len(measured),
        cache_hit_fraction=hit_fraction,
        modes=modes,
        speedup=modes["micro-batched"]["qps"] / modes["request-at-a-time"]["qps"],
    )


# ---------------------------------------------------------------------------
# fleet-gateway benchmark: shards x clients throughput
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class GatewayBenchConfig:
    """Scale and sweep knobs for one fleet-gateway benchmark run."""

    seed: int = 7
    n_instances: int = 6
    duration_days: float = 1.0
    volume_scale: float = 0.15
    #: fraction of each instance's trace replayed (with feedback) first
    warmup_fraction: float = 0.5
    #: the sweep grid: every (shards, clients) combination is measured
    shard_counts: tuple = (1, 2, 4)
    client_counts: tuple = (4, 16)
    #: measurement repeats per grid point; passes are *interleaved*
    #: (every point once per pass, then again) so drifting machine load
    #: lands on all points evenly, and each point reports the median of
    #: its repeats
    repeats: int = 3
    max_batch_size: int = 16
    max_batch_latency_ms: float = 5.0
    queue_size: int = 512
    stage: StageConfig = field(default_factory=lambda: _BENCH_STAGE)


@dataclass
class GatewayBenchResult:
    """Throughput/latency per (shards, clients) grid point."""

    n_instances: int
    n_warmup: int
    n_measured: int
    rows: List[Dict[str, float]]
    #: every grid point produced bit-identical measured predictions
    predictions_identical: bool
    #: interleaved measurement passes behind each row's medians
    repeats: int = 1

    def render(self) -> str:
        lines = [
            f"gateway fleet bench: {self.n_instances} instances, "
            f"{self.n_warmup} warmup + {self.n_measured} measured queries "
            "(interleaved fused predict+observe fleet traffic through one "
            "FleetGateway; "
            f"median of {self.repeats} interleaved repeats per grid point)",
        ]
        base_qps = self.rows[0]["qps"] if self.rows else 1.0
        for row in self.rows:
            lines.append(
                f"shards={row['shards']:<2.0f} clients={row['clients']:<3.0f} "
                f"{row['qps']:8.0f} q/s   "
                f"p50={row['p50_ms']:7.2f} ms  p95={row['p95_ms']:7.2f} ms  "
                f"p99={row['p99_ms']:7.2f} ms   "
                f"{row['qps'] / base_qps:5.2f}x vs first row"
            )
        verdict = "bit-identical" if self.predictions_identical else "DIVERGED (bug!)"
        lines.append(
            f"measured predictions across all shard/client combinations: {verdict}"
        )
        return "\n".join(lines)


def _drive_gateway_combo(
    traces,
    warmups,
    measured,
    n_shards: int,
    n_clients: int,
    config: GatewayBenchConfig,
) -> Tuple[Dict[str, float], List[float]]:
    """Warm a fresh fleet, then fire the measured stream; returns the
    grid row plus the predicted exec-times (for the parity check).

    The measured stream is the *fused* serving workload — every query
    is a predict plus its feedback observe, so local-model retrains land
    inside the measurement window exactly as production traffic would
    place them.  Per-instance sequence numbers for the whole segment are
    reserved up front, so any client interleaving executes each
    instance's ops in trace order and every grid point returns
    bit-identical predictions (the gateway determinism contract).
    Client-observed latency is the predict round trip; observes are
    fire-and-forget and settle by the closing drain.
    """
    gateway = FleetGateway(
        GatewayConfig(
            n_shards=n_shards,
            queue_size=config.queue_size,
            service=ServiceConfig(
                max_batch_size=config.max_batch_size,
                max_batch_latency_ms=config.max_batch_latency_ms,
            ),
        ),
        stage_config=config.stage,
        random_state=config.seed,
    )
    try:
        for trace in traces:
            gateway.register_instance(trace.instance)
        # warm with feedback: each instance's fused, sequenced op stream
        for trace, warmup in zip(traces, warmups):
            instance_id = trace.instance.instance_id
            for record in warmup:
                gateway.predict_async(instance_id, record)
                gateway.observe(instance_id, record)
        gateway.drain()

        # Pre-assign the fused stream's sequence numbers: per instance,
        # record k gets (predict, observe) slots (2k, 2k + 1) after the
        # warmup prefix, making the executed op order a pure function of
        # the trace no matter which client fires which record.
        n_clients = max(1, int(n_clients))
        streams: Dict[str, List[tuple]] = {}
        for index, (instance_id, record) in enumerate(measured):
            streams.setdefault(instance_id, []).append((index, record))
        stream_state = {
            instance_id: {
                "records": records,
                "base": gateway.reserve_sequence(instance_id, 2 * len(records)),
                "next": 0,
                "lock": threading.Lock(),
            }
            for instance_id, records in streams.items()
        }
        # Clients have instance affinity, like the per-cluster
        # connections production traffic arrives on: client w serves the
        # instances with index ≡ w (mod n_clients), or shares one
        # instance's stream when there are more clients than instances.
        # (A single shared cursor in global arrival order would pile
        # every client onto the next records of whichever instance is
        # mid-retrain and stall the whole fleet on one instance's
        # stream.)
        instance_order = [
            trace.instance.instance_id
            for trace in traces
            if trace.instance.instance_id in streams
        ]

        op_timeout = gateway.config.drain_timeout_s
        predictions: List[Optional[float]] = [None] * len(measured)
        observe_futures: List[Optional[Future]] = [None] * len(measured)
        latencies: List[List[float]] = [[] for _ in range(n_clients)]
        errors: List[Optional[BaseException]] = [None] * n_clients
        stop = threading.Event()

        def client(worker_index: int) -> None:
            lat = latencies[worker_index]
            if n_clients <= len(instance_order):
                mine = instance_order[worker_index::n_clients]
            else:
                mine = [instance_order[worker_index % len(instance_order)]]
            try:
                while mine and not stop.is_set():
                    for instance_id in list(mine):
                        state = stream_state[instance_id]
                        with state["lock"]:
                            k = state["next"]
                            if k >= len(state["records"]):
                                mine.remove(instance_id)
                                continue
                            state["next"] = k + 1
                        index, record = state["records"][k]
                        seq = state["base"] + 2 * k
                        t0 = time.perf_counter()
                        future = gateway.predict_async(instance_id, record, seq=seq)
                        observe_futures[index] = gateway.observe(
                            instance_id, record, seq=seq + 1
                        )
                        predictions[index] = (
                            future.result(op_timeout).prediction.exec_time
                        )
                        lat.append(time.perf_counter() - t0)
            except BaseException as exc:
                errors[worker_index] = exc
                stop.set()  # stop the other clients too

        threads = [
            threading.Thread(target=client, args=(w,)) for w in range(n_clients)
        ]
        t0 = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall = time.perf_counter() - t0
        for error in errors:
            if error is not None:
                raise error
        gateway.drain()
        for future in observe_futures:
            if future is not None:
                future.result(op_timeout)  # surface any feedback failure
    finally:
        gateway.close()

    lat_ms = np.array([v for lat in latencies for v in lat]) * 1000.0
    row = {
        "shards": float(n_shards),
        "clients": float(n_clients),
        "wall_s": wall,
        "qps": len(measured) / wall,
        "p50_ms": float(np.percentile(lat_ms, 50)),
        "p95_ms": float(np.percentile(lat_ms, 95)),
        "p99_ms": float(np.percentile(lat_ms, 99)),
    }
    return row, [float(p) for p in predictions]


def run_gateway_bench(config: Optional[GatewayBenchConfig] = None) -> GatewayBenchResult:
    """Sweep a fleet over the shards × clients grid; see module docs.

    Every grid point rebuilds and re-warms the same fleet from scratch
    (same seeds, same sequenced warmup streams), so the gateway
    determinism contract makes the measured predictions bit-identical
    across the whole grid — asserted, not assumed.
    """
    config = config or GatewayBenchConfig()
    gen = FleetGenerator(FleetConfig(seed=config.seed, volume_scale=config.volume_scale))
    traces = [
        gen.generate_trace(gen.sample_instance(index), config.duration_days)
        for index in range(config.n_instances)
    ]
    warmups, measured = [], []
    for trace in traces:
        n_warmup = int(len(trace) * config.warmup_fraction)
        warmups.append([trace[i] for i in range(n_warmup)])
        measured.extend(
            (trace.instance.instance_id, trace[i]) for i in range(n_warmup, len(trace))
        )
    if not measured:
        raise ValueError(
            "gateway bench has no measurement segment — raise duration_days/"
            "volume_scale or lower warmup_fraction"
        )
    # interleave the fleet's measured traffic in global arrival order
    measured.sort(key=lambda pair: pair[1].arrival_time)

    if config.repeats < 1:
        raise ValueError("repeats must be >= 1")
    samples: Dict[Tuple[int, int], List[Dict[str, float]]] = {}
    reference: Optional[List[float]] = None
    identical = True
    for _ in range(config.repeats):
        for n_shards in config.shard_counts:
            for n_clients in config.client_counts:
                row, predictions = _drive_gateway_combo(
                    traces, warmups, measured, n_shards, n_clients, config
                )
                samples.setdefault((n_shards, n_clients), []).append(row)
                if reference is None:
                    reference = predictions
                elif predictions != reference:
                    identical = False
    rows: List[Dict[str, float]] = []
    for n_shards in config.shard_counts:
        for n_clients in config.client_counts:
            reps = samples[(n_shards, n_clients)]
            rows.append(
                {key: float(statistics.median([r[key] for r in reps])) for key in reps[0]}
            )
    return GatewayBenchResult(
        n_instances=config.n_instances,
        n_warmup=sum(len(w) for w in warmups),
        n_measured=len(measured),
        rows=rows,
        predictions_identical=identical,
        repeats=config.repeats,
    )


# ---------------------------------------------------------------------------
# wire benchmark: the network front door, connections x in-flight ops
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class WireBenchConfig:
    """Scale and sweep knobs for the wire-protocol load generator."""

    seed: int = 7
    n_instances: int = 4
    duration_days: float = 1.0
    volume_scale: float = 0.15
    #: fraction of each instance's trace replayed (with feedback) first
    warmup_fraction: float = 0.5
    #: the sweep grid: TCP connections x per-connection in-flight ops
    connection_counts: tuple = (1, 4)
    inflight_counts: tuple = (1, 8)
    #: self-hosted server shape (ignored when targeting a remote server)
    n_shards: int = 2
    max_batch_size: int = 16
    max_batch_latency_ms: float = 5.0
    queue_size: int = 512
    stage: StageConfig = field(default_factory=lambda: _BENCH_STAGE)


@dataclass
class WireBenchResult:
    """Throughput/latency per (connections, in-flight) grid point."""

    n_instances: int
    n_warmup: int
    n_measured: int
    address: str
    rows: List[Dict[str, float]]
    #: every grid point produced bit-identical measured predictions
    predictions_identical: bool

    def render(self) -> str:
        lines = [
            f"wire bench: {self.n_instances} instances behind the asyncio "
            f"front door at {self.address}",
            f"{self.n_warmup} warmup + {self.n_measured} measured queries, "
            "all over length-prefixed binary frames (one predict per frame, "
            "pipelined per connection)",
        ]
        base_qps = self.rows[0]["qps"] if self.rows else 1.0
        for row in self.rows:
            lines.append(
                f"conns={row['connections']:<2.0f} inflight={row['inflight']:<3.0f} "
                f"{row['qps']:8.0f} q/s   "
                f"p50={row['p50_ms']:7.2f} ms  p95={row['p95_ms']:7.2f} ms  "
                f"p99={row['p99_ms']:7.2f} ms   "
                f"{row['qps'] / base_qps:5.2f}x vs first row"
            )
        verdict = "bit-identical" if self.predictions_identical else "DIVERGED (bug!)"
        lines.append(f"measured predictions across the whole grid: {verdict}")
        return "\n".join(lines)


async def _wire_warm(host: str, port: int, traces, warmups) -> None:
    """Replay every instance's warmup (fused predict/observe, live
    sequence numbers) through one pipelined wire connection."""
    from .wire import AsyncWireClient

    client = await AsyncWireClient.connect(host, port, name="loadgen-warm")
    try:
        futures = []
        for trace, warmup in zip(traces, warmups):
            instance_id = trace.instance.instance_id
            for record in warmup:
                # per-instance op order is submission order (ingress
                # sequencing), so the warm state matches a direct replay
                futures.append(client.submit_predict(instance_id, record))
                futures.append(client.submit_observe(instance_id, record))
                await client.drain()
        for future in futures:
            await future
    finally:
        await client.close()


async def _wire_fire(
    host: str, port: int, measured, n_connections: int, inflight: int
) -> Tuple[float, List[float], List[float]]:
    """One grid point: closed-loop async connections, each keeping
    ``inflight`` predictions outstanding over a shared work stream."""
    from .wire import AsyncWireClient

    n_connections = max(1, n_connections)
    predictions: List[Optional[float]] = [None] * len(measured)
    # per-connection latency lists, merged only after the wall-clock
    # window closes: percentile computation never reads a list a driver
    # is still appending to (same discipline as the threaded drivers,
    # where the append really is concurrent)
    latencies: List[List[float]] = [[] for _ in range(n_connections)]
    # a plain shared iterator is safe: consumers only advance it between
    # awaits of the same event loop
    iterator = iter(enumerate(measured))

    async def one(lat: List[float], client, i: int, instance_id: str, record) -> None:
        t0 = time.perf_counter()
        components = await client.predict_components(instance_id, record)
        lat.append(time.perf_counter() - t0)
        predictions[i] = components.prediction.exec_time

    async def connection(worker_index: int) -> None:
        lat = latencies[worker_index]
        client = await AsyncWireClient.connect(host, port, name=f"loadgen-{worker_index}")
        try:
            pending = set()
            for i, (instance_id, record) in iterator:
                if len(pending) >= inflight:
                    done, pending = await asyncio.wait(
                        pending, return_when=asyncio.FIRST_COMPLETED
                    )
                    for task in done:
                        task.result()
                pending.add(asyncio.create_task(one(lat, client, i, instance_id, record)))
            if pending:
                await asyncio.gather(*pending)
        finally:
            await client.close()

    t0 = time.perf_counter()
    await asyncio.gather(*(connection(w) for w in range(n_connections)))
    wall = time.perf_counter() - t0
    merged = [v for lat in latencies for v in lat]
    return wall, merged, [float(p) for p in predictions]


def run_wire_bench(
    config: Optional[WireBenchConfig] = None,
    address: Optional[Tuple[str, int]] = None,
) -> WireBenchResult:
    """Load-generate against the wire front door; see module docs.

    With ``address=None`` (the default) a gateway + wire server is
    self-hosted in-process; otherwise the load generator targets an
    already-running ``python -m repro.service serve``.  Registration,
    warmup and measurement all travel over the wire, and — because
    predictions never mutate predictor state — the same warmed fleet
    serves every grid point, whose measured predictions must therefore
    be bit-identical (asserted, not assumed).
    """
    from .wire import WireClient, WireServer

    config = config or WireBenchConfig()
    gen = FleetGenerator(FleetConfig(seed=config.seed, volume_scale=config.volume_scale))
    traces = [
        gen.generate_trace(gen.sample_instance(index), config.duration_days)
        for index in range(config.n_instances)
    ]
    warmups, measured = [], []
    for trace in traces:
        n_warmup = int(len(trace) * config.warmup_fraction)
        warmups.append([trace[i] for i in range(n_warmup)])
        measured.extend(
            (trace.instance.instance_id, trace[i]) for i in range(n_warmup, len(trace))
        )
    if not measured:
        raise ValueError(
            "wire bench has no measurement segment — raise duration_days/"
            "volume_scale or lower warmup_fraction"
        )
    measured.sort(key=lambda pair: pair[1].arrival_time)

    gateway = server = None
    try:
        if address is None:
            gateway = FleetGateway(
                GatewayConfig(
                    n_shards=config.n_shards,
                    queue_size=config.queue_size,
                    service=ServiceConfig(
                        max_batch_size=config.max_batch_size,
                        max_batch_latency_ms=config.max_batch_latency_ms,
                    ),
                ),
                stage_config=config.stage,
                random_state=config.seed,
            )
            server = WireServer(gateway)
            address = server.start()
        host, port = address
        with WireClient(host, port, name="loadgen-admin") as admin:
            for trace in traces:
                try:
                    admin.register_instance(trace.instance)
                except ValueError:
                    pass  # already registered (rerun against a live server)
        asyncio.run(_wire_warm(host, port, traces, warmups))

        rows: List[Dict[str, float]] = []
        reference: Optional[List[float]] = None
        identical = True
        for n_connections in config.connection_counts:
            for inflight in config.inflight_counts:
                wall, latencies, predictions = asyncio.run(
                    _wire_fire(host, port, measured, n_connections, inflight)
                )
                lat_ms = np.array(latencies) * 1000.0
                rows.append(
                    {
                        "connections": float(n_connections),
                        "inflight": float(inflight),
                        "wall_s": wall,
                        "qps": len(measured) / wall,
                        "p50_ms": float(np.percentile(lat_ms, 50)),
                        "p95_ms": float(np.percentile(lat_ms, 95)),
                        "p99_ms": float(np.percentile(lat_ms, 99)),
                    }
                )
                if reference is None:
                    reference = predictions
                elif predictions != reference:
                    identical = False
    finally:
        if server is not None:
            server.close()
        if gateway is not None:
            gateway.close()
    return WireBenchResult(
        n_instances=config.n_instances,
        n_warmup=sum(len(w) for w in warmups),
        n_measured=len(measured),
        address=f"{host}:{port}",
        rows=rows,
        predictions_identical=identical,
    )
