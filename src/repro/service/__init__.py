"""Online serving layer: the paper's predictor as a long-lived service.

The Stage predictor is not an offline artifact — in Redshift it answers
a prediction per arriving query under strict latency budgets.  This
package provides that deployment shape:

- :class:`PredictionService` — micro-batching, many-client serving over
  one :class:`~repro.core.stage.StagePredictor`, bit-identical to the
  offline replay for the same op stream;
- :class:`MicroBatchScheduler` — the sequenced batch scheduler;
- :class:`ModelRegistry` — persistence for global models and bit-for-bit
  warm-restart service snapshots;
- :func:`run_service_bench` — the throughput/latency benchmark behind
  ``python -m repro.service`` and ``results/service_bench.txt``.
"""

from repro.core.config import ServiceConfig

from .bench import ServiceBenchConfig, ServiceBenchResult, run_service_bench
from .registry import ModelRegistry
from .scheduler import MicroBatchScheduler
from .server import PredictionService

__all__ = [
    "ModelRegistry",
    "MicroBatchScheduler",
    "PredictionService",
    "ServiceBenchConfig",
    "ServiceBenchResult",
    "ServiceConfig",
    "run_service_bench",
]
