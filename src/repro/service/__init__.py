"""Online serving layer: the paper's predictor as a long-lived service.

The Stage predictor is not an offline artifact — in Redshift it answers
a prediction per arriving query under strict latency budgets.  This
package provides that deployment shape:

- :class:`PredictionService` — micro-batching, many-client serving over
  one :class:`~repro.core.stage.StagePredictor`, bit-identical to the
  offline replay for the same op stream;
- :class:`MicroBatchScheduler` — the sequenced batch scheduler;
- :class:`FleetGateway` — the sharded multi-process fleet tier: many
  per-instance services behind one thread-safe front door, with crash
  containment, backpressure and whole-fleet warm restart;
- :class:`ModelRegistry` — persistence for global models, bit-for-bit
  warm-restart service snapshots and whole-fleet gateway snapshots;
- :func:`run_service_bench` / :func:`run_gateway_bench` — the
  throughput/latency benchmarks behind ``python -m repro.service``
  (``results/service_bench.txt`` and ``results/gateway_bench.txt``).

Predictions served by every tier carry calibrated intervals
(``Prediction.interval_low/interval_high``) derived per source —
Welford variance for cache hits, ensemble member spread for the local
model, a residual-variance head for the global model — and both
``PredictionService.stats()`` and the gateway's fleet roll-up report
interval-width percentiles from mergeable fixed-bin histograms.  The
interval arrays obey the same bit-parity contracts as the points
(direct vs ``via_service`` vs ``via_gateway``, any shard/batch/client
count); see ``examples/uncertainty_serving.py``.
"""

from repro.core.config import GatewayConfig, ServiceConfig

from .bench import (
    GatewayBenchConfig,
    GatewayBenchResult,
    ServiceBenchConfig,
    ServiceBenchResult,
    run_gateway_bench,
    run_service_bench,
)
from .gateway import FleetGateway, GatewayBackpressureError, ShardCrashedError, shard_for
from .registry import ModelRegistry
from .scheduler import MicroBatchScheduler
from .server import PredictionService

__all__ = [
    "FleetGateway",
    "GatewayBackpressureError",
    "GatewayBenchConfig",
    "GatewayBenchResult",
    "GatewayConfig",
    "ModelRegistry",
    "MicroBatchScheduler",
    "PredictionService",
    "ServiceBenchConfig",
    "ServiceBenchResult",
    "ServiceConfig",
    "ShardCrashedError",
    "run_gateway_bench",
    "run_service_bench",
    "shard_for",
]
