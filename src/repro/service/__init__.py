"""Online serving layer: the paper's predictor as a long-lived service.

The Stage predictor is not an offline artifact — in Redshift it answers
a prediction per arriving query under strict latency budgets.  This
package provides that deployment shape:

- :class:`PredictionService` — micro-batching, many-client serving over
  one :class:`~repro.core.stage.StagePredictor`, bit-identical to the
  offline replay for the same op stream;
- :class:`MicroBatchScheduler` — the sequenced batch scheduler;
- :class:`FleetGateway` — the sharded multi-process fleet tier: many
  per-instance services behind one thread-safe front door, with crash
  containment, backpressure and whole-fleet warm restart;
- :class:`ModelRegistry` — persistence for global models, bit-for-bit
  warm-restart service snapshots and whole-fleet gateway snapshots;
- :class:`WireServer` / :class:`WireClient` — the network front door:
  an asyncio TCP server speaking a length-prefixed binary frame
  protocol in front of the gateway, with per-session lifecycle,
  ingress sequencing (the determinism contract extends over the
  socket), RETRY_AFTER admission control and fleet admin ops
  (MIGRATE / RESIZE / ROUTES — see ``repro.service.wire`` and
  ``python -m repro.service serve``/``loadgen``);
- :class:`PredictorClient` — the one futures-based client protocol all
  three serving tiers implement (:func:`shared_client` adapts an
  in-process tier into the client-factory shape, and
  :func:`replay_trace_via_client` is the single replay driver the
  harness's every ``via_*`` mode now runs through);
- :class:`FleetController` / :func:`plan_rebalance` — the elastic
  control plane: a load-watching rebalancer over the gateway's
  versioned routing table, executing live cut-sequence migrations and
  shard-set resizes without dropping in-flight ops;
- :func:`run_service_bench` / :func:`run_gateway_bench` /
  :func:`run_wire_bench` — the throughput/latency benchmarks behind
  ``python -m repro.service`` (``results/service_bench.txt``,
  ``results/gateway_bench.txt`` and ``results/wire_bench.txt``).

Predictions served by every tier carry calibrated intervals
(``Prediction.interval_low/interval_high``) derived per source —
Welford variance for cache hits, ensemble member spread for the local
model, a residual-variance head for the global model — and both
``PredictionService.stats()`` and the gateway's fleet roll-up report
interval-width percentiles from mergeable fixed-bin histograms.  The
interval arrays obey the same bit-parity contracts as the points
(direct vs ``via_service`` vs ``via_gateway``, any shard/batch/client
count); see ``examples/uncertainty_serving.py``.
"""

from repro.core.config import ControlConfig, GatewayConfig, ServiceConfig, WireConfig

from .bench import (
    GatewayBenchConfig,
    GatewayBenchResult,
    ServiceBenchConfig,
    ServiceBenchResult,
    WireBenchConfig,
    WireBenchResult,
    run_gateway_bench,
    run_service_bench,
    run_wire_bench,
)
from .client import PredictorClient, replay_trace_via_client, shared_client
from .control import (
    FleetController,
    PlannedMigration,
    RebalancePlan,
    instance_loads,
    plan_rebalance,
    shard_loads,
)
from .gateway import FleetGateway, GatewayBackpressureError, ShardCrashedError, shard_for
from .registry import ModelRegistry
from .scheduler import MicroBatchScheduler
from .server import PredictionService
from .wire import AsyncWireClient, WireClient, WireError, WireServer

__all__ = [
    "AsyncWireClient",
    "ControlConfig",
    "FleetController",
    "FleetGateway",
    "GatewayBackpressureError",
    "GatewayBenchConfig",
    "GatewayBenchResult",
    "GatewayConfig",
    "ModelRegistry",
    "MicroBatchScheduler",
    "PlannedMigration",
    "PredictionService",
    "PredictorClient",
    "RebalancePlan",
    "ServiceBenchConfig",
    "ServiceBenchResult",
    "ServiceConfig",
    "ShardCrashedError",
    "WireBenchConfig",
    "WireBenchResult",
    "WireClient",
    "WireConfig",
    "WireError",
    "WireServer",
    "instance_loads",
    "plan_rebalance",
    "replay_trace_via_client",
    "run_gateway_bench",
    "run_service_bench",
    "run_wire_bench",
    "shard_for",
    "shard_loads",
    "shared_client",
]
