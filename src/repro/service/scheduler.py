"""Micro-batching request scheduler for the online serving layer.

One worker thread owns all predictor state; client threads only enqueue
operations and wait on futures.  Operations carry *sequence numbers* and
are executed strictly in sequence order (a reorder buffer holds early
arrivals), which is the scheduler's determinism contract:

    results depend only on the sequence-ordered op stream — never on
    client thread interleaving, batch boundaries, or wall-clock timing.

Within that order the worker batches the expensive work: a ``predict``
whose answer needs the local ensemble is *deferred* (the underlying
:class:`~repro.core.stage.BatchRouter` snapshots the frozen ensemble),
and the worker flushes one batched ensemble call once
``max_batch_size`` predictions are pending or the in-sequence op
stream stalls with nothing left to pull — whichever comes first.  The
``max_batch_latency_ms`` window only bounds the one case where more
work is verifiably in flight (ops queued past a sequence gap): the
worker waits up to the window for the gap to fill, then flushes
anyway.  Cache hits and cold-start routes resolve immediately — they
never wait for the batch window.  Observes
(and the local retrains they trigger) also run on the worker thread, so
client ``predict`` calls never block behind a retrain.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from contextlib import contextmanager
from typing import Dict, List, Optional, Tuple

from repro.core.config import ServiceConfig
from repro.core.stage import BatchRouter, RoutedSlot

__all__ = ["MicroBatchScheduler"]

#: op kinds understood by the scheduler
PREDICT = "predict"
OBSERVE = "observe"


class _Op:
    __slots__ = ("kind", "record", "future")

    def __init__(self, kind, record, future):
        self.kind = kind
        self.record = record
        self.future = future


class MicroBatchScheduler:
    """Sequenced, micro-batching executor over one :class:`BatchRouter`.

    Parameters
    ----------
    router:
        The batch router owning the predictor state.  Only the worker
        thread ever touches it.
    config:
        Batching knobs (:class:`~repro.core.config.ServiceConfig`).
    """

    def __init__(self, router: BatchRouter, config: Optional[ServiceConfig] = None):
        self.router = router
        self.config = config or ServiceConfig()
        if self.config.max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if self.config.max_batch_latency_ms < 0:
            raise ValueError("max_batch_latency_ms must be >= 0")
        self._lock = threading.Lock()
        self._cv = threading.Condition(self._lock)
        #: reorder buffer: sequence number -> queued op
        self._ops: Dict[int, _Op] = {}
        self._next_submit_seq = 0
        self._next_exec_seq = 0
        self._busy = False
        self._paused = False
        self._closed = False
        self.stats = {
            "n_predicts": 0,
            "n_observes": 0,
            "n_immediate": 0,
            "n_deferred": 0,
            "n_batches": 0,
            "max_batch_size": 0,
        }
        #: lazily started on the first submit: a scheduler that never
        #: sees an op never owns a thread, and its cold lifecycle paths
        #: (drain/close/snapshot on a never-started service) stay trivial
        self._worker: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    # client side
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def _ensure_worker(self) -> None:
        """Start the worker thread on first use (locked)."""
        if self._worker is None:
            self._worker = threading.Thread(
                target=self._run, name="prediction-service-worker", daemon=True
            )
            self._worker.start()

    def _raise_if_undrainable(self) -> None:
        """Turn a would-be hang into an explicit error (locked).

        Queued ops can only ever be applied by a live worker thread; if
        it is gone (or was never started, which ``submit`` prevents but a
        crashed thread cannot), waiting on them would stall until the
        drain timeout for no reason.
        """
        if not self._ops:
            return
        if self._worker is None or not self._worker.is_alive():
            raise RuntimeError(
                f"scheduler worker is not running; {len(self._ops)} "
                "queued op(s) can never drain"
            )

    def submit(self, kind: str, record, seq: Optional[int] = None) -> Future:
        """Enqueue one op; returns its future.

        ``seq`` defaults to the next submission slot (live mode, where
        arrival order *is* sequence order).  Replay-style callers may
        assign explicit sequence numbers from concurrent threads; every
        sequence number must be submitted exactly once, with no gaps,
        or the stream stalls behind the missing op.
        """
        if kind not in (PREDICT, OBSERVE):
            raise ValueError(f"unknown op kind {kind!r}")
        future: Future = Future()
        with self._cv:
            if self._closed:
                raise RuntimeError("scheduler is closed")
            self._ensure_worker()
            if seq is None:
                seq = self._next_submit_seq
            elif seq < self._next_exec_seq or seq in self._ops:
                raise ValueError(f"sequence number {seq} already used")
            self._next_submit_seq = max(self._next_submit_seq, seq + 1)
            self._ops[seq] = _Op(kind, record, future)
            self._cv.notify_all()
        return future

    @property
    def next_submit_seq(self) -> int:
        """The next unclaimed sequence number (explicit-seq submitters
        must base their stream here so it lands after every prior op)."""
        with self._lock:
            return self._next_submit_seq

    def reserve(self, count: int) -> int:
        """Atomically claim ``count`` sequence slots; returns the base.

        The caller owns ``[base, base + count)`` and must submit every
        slot exactly once (a skipped slot stalls the stream behind the
        gap).  This is the primitive replay drivers use to interleave
        explicit-seq submissions from concurrent clients.
        """
        if count < 0:
            raise ValueError("count must be >= 0")
        with self._lock:
            if self._closed:
                raise RuntimeError("scheduler is closed")
            base = self._next_submit_seq
            self._next_submit_seq = base + count
            return base

    def drain_through(self, seq: int, timeout: Optional[float] = None) -> None:
        """Block until every op below ``seq`` is applied and flushed.

        Unlike :meth:`drain` this does not require the whole stream to
        be quiet — only the prefix ``[0, seq)``.  Used by the migration
        cutover to wait out stragglers below the cut without stalling on
        ops that were intentionally diverted elsewhere.
        """
        if timeout is None:
            timeout = self.config.drain_timeout_s
        with self._cv:
            if self._next_exec_seq >= seq and not self._busy:
                return
            self._raise_if_undrainable()
            drained = self._cv.wait_for(
                lambda: self._next_exec_seq >= seq and not self._busy,
                timeout=timeout,
            )
            if not drained:
                self._raise_if_undrainable()
        if not drained:
            raise TimeoutError(f"scheduler did not reach sequence {seq} in time")

    def advance_to_seq(self, seq: int) -> None:
        """Jump the execution cursor forward to ``seq`` (restore path).

        A restored scheduler resumes a stream whose prefix was executed
        elsewhere (before a snapshot, or on a migration source shard):
        the state already reflects ops ``[0, seq)``, so execution must
        resume at ``seq``.  Only valid while idle with no queued ops.
        """
        if seq < 0:
            raise ValueError("seq must be >= 0")
        with self._cv:
            if self._ops or self._busy:
                raise RuntimeError("cannot advance a scheduler with queued or in-flight ops")
            if seq < self._next_exec_seq:
                raise ValueError(
                    f"cannot rewind execution cursor from {self._next_exec_seq} to {seq}"
                )
            self._next_exec_seq = seq
            self._next_submit_seq = max(self._next_submit_seq, seq)

    def drain(self, timeout: Optional[float] = None) -> None:
        """Block until every submitted op is applied and flushed.

        A never-started scheduler drains immediately (there is nothing
        to wait for); queued ops with no live worker raise an explicit
        :class:`RuntimeError` instead of stalling out the timeout.
        """
        if timeout is None:
            timeout = self.config.drain_timeout_s
        with self._cv:
            self._raise_if_undrainable()
            drained = self._cv.wait_for(lambda: not self._ops and not self._busy, timeout=timeout)
            if not drained:
                self._raise_if_undrainable()
        if not drained:
            raise TimeoutError("scheduler did not drain in time")

    @contextmanager
    def paused(self):
        """Hold the worker idle (e.g. while snapshotting predictor state).

        Entering waits for the in-flight micro-batch to finish; until
        exit the worker applies no further ops, so the predictor state
        is frozen at a consistent op-stream prefix.  Submissions are
        still accepted — they queue and execute on resume.
        """
        with self._cv:
            self._paused = True
            self._cv.wait_for(lambda: not self._busy)
        try:
            yield
        finally:
            with self._cv:
                self._paused = False
                self._cv.notify_all()

    def close(self, timeout: Optional[float] = None) -> None:
        """Stop the worker after the queued (gap-free) ops are applied.

        Idempotent: a second (or later) close is a no-op, and closing a
        never-started scheduler only marks it closed.
        """
        if timeout is None:
            timeout = self.config.drain_timeout_s
        with self._cv:
            if self._closed:
                return
            self._closed = True
            worker = self._worker
            self._cv.notify_all()
        if worker is not None:
            worker.join(timeout)
        # ops stranded behind a sequence gap can never run
        with self._cv:
            stranded, self._ops = self._ops, {}
        for op in stranded.values():
            op.future.set_exception(RuntimeError("scheduler closed"))

    # ------------------------------------------------------------------
    # worker side
    # ------------------------------------------------------------------
    def _pop_ready(self) -> Optional[_Op]:
        """Take the next in-sequence op, if it has arrived (locked)."""
        op = self._ops.pop(self._next_exec_seq, None)
        if op is not None:
            self._next_exec_seq += 1
        return op

    def _pop_ready_run(self, predict_limit: int) -> List[_Op]:
        """Take the maximal in-sequence run of same-kind ops (locked).

        The run stops at the first missing sequence number, at a kind
        change, or — for predicts — at ``predict_limit``, which callers
        set to the micro-batch headroom so a run can never overfill the
        pending window past ``max_batch_size``.
        """
        run: List[_Op] = []
        while True:
            op = self._ops.get(self._next_exec_seq)
            if op is None:
                break
            if run and op.kind != run[0].kind:
                break
            if op.kind == PREDICT and len(run) >= predict_limit:
                break
            del self._ops[self._next_exec_seq]
            self._next_exec_seq += 1
            run.append(op)
        return run

    def _run(self) -> None:
        while True:
            with self._cv:
                # wait while paused (even when closing: resume must land
                # first) or while the next in-sequence op is missing
                while (not self._closed or self._paused) and (
                    self._paused or self._next_exec_seq not in self._ops
                ):
                    self._cv.wait()
                if self._next_exec_seq not in self._ops:
                    return  # closed, nothing runnable
                self._busy = True
            try:
                self._run_batch()
            finally:
                with self._cv:
                    self._busy = False
                    self._cv.notify_all()

    def _run_batch(self) -> None:
        """Collect and execute one micro-batch of in-sequence ops.

        Ops are pulled as maximal same-kind *runs* so a window of
        consecutive predicts goes through the router's vectorized
        :meth:`~repro.core.stage.BatchRouter.route_batch` in one call —
        bit-identical to routing each op alone (the determinism contract
        already makes batch boundaries invisible), but paying the cache
        probe and state reads once per run instead of once per op.
        """
        cfg = self.config
        stats = self.stats
        deadline: Optional[float] = None
        pending: List[Tuple[RoutedSlot, Future]] = []
        while True:
            with self._cv:
                # a pause request ends the batch at the next run boundary
                run = (
                    []
                    if self._paused
                    else self._pop_ready_run(cfg.max_batch_size - len(pending))
                )
                if not run:
                    if not pending:
                        break  # idle: return to the blocking outer wait
                    # The in-sequence stream stalled (queue empty, gap, or
                    # pause) with deferrals pending.  Under closed-loop
                    # clients the deferred futures are exactly what the
                    # stream is blocked on, so waiting out the batch
                    # window would stall everyone for nothing — flush now
                    # unless more work is verifiably in flight (already
                    # queued past a gap), in which case wait briefly for
                    # the gap to fill, bounded by the batch window.
                    if not self._ops:
                        break
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                    self._cv.wait(timeout=remaining)
                    continue
            if run[0].kind == OBSERVE:
                for op in run:
                    stats["n_observes"] += 1
                    try:
                        self.router.observe(op.record)
                    except Exception as exc:  # surface, don't kill worker
                        op.future.set_exception(exc)
                    else:
                        op.future.set_result(None)
                continue
            stats["n_predicts"] += len(run)
            try:
                slots = self.router.route_batch([op.record for op in run])
            except Exception as exc:
                for op in run:
                    op.future.set_exception(exc)
                continue
            for op, slot in zip(run, slots):
                if slot.ready and not (
                    self.router.collect_cache_hit_local
                    and slot.components.local_ready
                    and slot.components.local is None
                ):
                    # cache hit or cold-start route: answer immediately
                    stats["n_immediate"] += 1
                    op.future.set_result(slot.components)
                else:
                    # Not ready, or a cache hit whose collected local
                    # answer the router will fill in (by mutation) at the
                    # flush: resolving early would hand callers — and the
                    # gateway's pickling response path — an incomplete
                    # components object.  Component collection is a
                    # replay/diagnostic mode, so the added latency is
                    # irrelevant.
                    stats["n_deferred"] += 1
                    pending.append((slot, op.future))
            if len(pending) >= cfg.max_batch_size:
                break
            if pending and deadline is None:
                deadline = time.monotonic() + cfg.max_batch_latency_ms / 1000.0
        # Serve the batch: one ensemble call for every deferred route
        # (plus any component-collection deferrals riding the window).
        if self.router.has_pending:
            try:
                self.router.flush()
            except Exception as exc:
                for _, future in pending:
                    future.set_exception(exc)
                return
        if pending:
            stats["n_batches"] += 1
            stats["max_batch_size"] = max(stats["max_batch_size"], len(pending))
            for slot, future in pending:
                future.set_result(slot.components)
