"""The long-lived, many-client prediction service.

:class:`PredictionService` is the online face of one instance's
:class:`~repro.core.stage.StagePredictor` — the deployment shape the
paper describes (the predictor runs *inside* the cluster, answering a
prediction per arriving query under tight latency budgets).  It wires
the predictor into the micro-batch scheduler and exposes:

- :meth:`predict` / :meth:`predict_async` — route one query; cache hits
  answer immediately, model-bound queries ride the current micro-batch;
- :meth:`observe` — the feedback path: applies the paper's dedup rule
  (cache hits never enter the training pool) and triggers local retrains
  on the worker thread, never on a client thread;
- :meth:`snapshot` / :meth:`restore` — warm restart through a
  :class:`~repro.service.registry.ModelRegistry`: a restarted service
  reproduces the pre-restart service's predictions bit-for-bit;
- :meth:`stats` — cache/routing accounting plus scheduler batching
  counters.

Determinism contract (inherited from the scheduler + batch router):
results depend only on the sequence-ordered op stream, never on batch
sizes, latency budgets, client threading or flush timing.  The replay
harness's ``via_service`` mode and ``tests/test_service.py`` hold the
service to bit-identical parity with the offline replay.
"""

from __future__ import annotations

from concurrent.futures import Future
from typing import Optional

from repro.core.config import ServiceConfig, StageConfig
from repro.core.interfaces import Prediction
from repro.core.stage import BatchRouter, StagePredictor
from repro.global_model.model import GlobalModel
from repro.workload.instance import InstanceProfile
from repro.workload.query import QueryRecord

from .registry import ModelRegistry
from .scheduler import OBSERVE, PREDICT, MicroBatchScheduler

__all__ = ["PredictionService"]


class PredictionService:
    """Online, batch-scheduling serving layer over one Stage predictor.

    Parameters
    ----------
    instance:
        The cluster this service serves.
    global_model:
        The fleet-shared model (or ``None`` for cache+local only).
    stage_config / random_state:
        Forwarded to :class:`StagePredictor`.
    service_config:
        Micro-batching knobs (:class:`~repro.core.config.ServiceConfig`).
    """

    def __init__(
        self,
        instance: InstanceProfile,
        global_model: Optional[GlobalModel] = None,
        stage_config: Optional[StageConfig] = None,
        service_config: Optional[ServiceConfig] = None,
        random_state: int = 0,
    ):
        stage = StagePredictor(
            instance,
            global_model=global_model,
            config=stage_config,
            random_state=random_state,
        )
        self._init_from_stage(stage, service_config)

    def _init_from_stage(
        self, stage: StagePredictor, service_config: Optional[ServiceConfig]
    ) -> None:
        self.config = service_config or ServiceConfig()
        if self.config.defer_retrains_to_troughs:
            if stage.forecast is None:
                raise ValueError(
                    "defer_retrains_to_troughs requires a forecast-enabled "
                    "StageConfig (set StageConfig.forecast)"
                )
            # equivalent to ForecastConfig(defer_retrains=True) on the
            # stage config — the parity tests hold the two spellings to
            # bit-identical replays
            stage.defer_retrains = True
        self.stage = stage
        self.router = BatchRouter(stage, collect_cache_hit_local=self.config.collect_components)
        self.scheduler = MicroBatchScheduler(self.router, self.config)

    @classmethod
    def from_stage(
        cls,
        stage: StagePredictor,
        service_config: Optional[ServiceConfig] = None,
    ) -> "PredictionService":
        """Serve an existing (e.g. snapshot-restored) Stage predictor."""
        service = cls.__new__(cls)
        service._init_from_stage(stage, service_config)
        return service

    # ------------------------------------------------------------------
    # the online protocol
    # ------------------------------------------------------------------
    @property
    def instance_id(self) -> str:
        """The one instance this service serves."""
        return self.stage.instance.instance_id

    def _resolve_record(self, record, addressed_record):
        """Accept both calling forms of the submission methods.

        The single-service form is ``predict_async(record, seq=...)``;
        the :class:`~repro.service.PredictorClient` protocol form is
        ``predict_async(instance_id, record, seq=...)`` (instance ids
        are strings, query records never are).  The addressed form must
        name this service's own instance — a one-instance tier still
        rejects misrouted traffic instead of silently absorbing it.
        """
        if isinstance(record, str):
            if record != self.instance_id:
                raise KeyError(
                    f"instance {record!r} is not served by this service "
                    f"(it serves {self.instance_id!r})"
                )
            if addressed_record is None:
                raise TypeError("the addressed form requires a record")
            return addressed_record
        if addressed_record is not None:
            raise TypeError("unexpected second positional argument (record given twice?)")
        return record

    def predict_async(
        self, record, addressed_record=None, seq: Optional[int] = None
    ) -> Future:
        """Submit one prediction; the future resolves to its
        :class:`~repro.core.stage.RoutedComponents`.

        Callable as ``predict_async(record)`` or, per the
        :class:`~repro.service.PredictorClient` protocol, as
        ``predict_async(instance_id, record)``.
        """
        record = self._resolve_record(record, addressed_record)
        return self.scheduler.submit(PREDICT, record, seq=seq)

    def predict(
        self,
        record: QueryRecord,
        seq: Optional[int] = None,
        timeout: Optional[float] = None,
    ) -> Prediction:
        """Blocking :meth:`predict_async`; returns the routed prediction."""
        if timeout is None:
            timeout = self.config.drain_timeout_s
        return self.predict_async(record, seq=seq).result(timeout).prediction

    def observe(
        self, record, addressed_record=None, seq: Optional[int] = None
    ) -> Future:
        """Feed back one executed query (dedup rule, cache update,
        possibly a local retrain — all on the worker thread).  Accepts
        both calling forms, like :meth:`predict_async`."""
        record = self._resolve_record(record, addressed_record)
        return self.scheduler.submit(OBSERVE, record, seq=seq)

    #: protocol-name alias (:class:`~repro.service.PredictorClient`)
    observe_async = observe

    def reserve_sequence(self, instance_id: str, count: int) -> int:
        """Claim ``count`` consecutive sequence slots (protocol form of
        :meth:`MicroBatchScheduler.reserve`); returns the base."""
        if instance_id != self.instance_id:
            raise KeyError(
                f"instance {instance_id!r} is not served by this service "
                f"(it serves {self.instance_id!r})"
            )
        return self.scheduler.reserve(count)

    # ------------------------------------------------------------------
    # replay hook (offline harness + scenario engine)
    # ------------------------------------------------------------------
    def replay_components(self, trace, n_clients: int = 1, timeout: Optional[float] = None):
        """Replay a trace's fused predict/observe op stream, concurrently.

        ``n_clients`` threads submit the stream with explicit sequence
        numbers (query ``i``'s predict is op ``base + 2i``, its observe
        op ``base + 2i + 1``, with ``base`` the scheduler's next free
        slot — a warm service replays as well as a fresh one), so the
        sequencer reconstructs arrival order regardless of client
        interleaving — any client count and any batch knobs reproduce
        the direct replay bit-for-bit.  This is the hook behind
        ``replay_instance(via_service=True)`` and the scenario engine's
        ``via_service`` matrix; replay discipline (outcomes already
        known, so clients never wait between ops) is what distinguishes
        it from the live :meth:`predict` path.  The service must be the
        replay's for the duration: concurrent live submissions would
        race the explicit sequence numbers.

        Returns the per-query :class:`~repro.core.stage.RoutedComponents`
        list, in trace order.  Submit failures on any client thread and
        worker-side observe failures are both re-raised: a swallowed
        observe would silently diverge the predictor state from the
        direct replay.
        """
        from .client import replay_trace_via_client, shared_client

        if timeout is None:
            timeout = self.config.drain_timeout_s
        if self.scheduler.closed:
            # without this guard the client threads all die on submit and
            # the failure surfaces as a generic scheduler error; say what
            # the caller actually did wrong
            raise RuntimeError("cannot replay through a closed service")
        return replay_trace_via_client(
            shared_client(self), trace, n_clients=n_clients, timeout=timeout
        )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has run (new ops are rejected)."""
        return self.scheduler.closed

    def drain(self, timeout: Optional[float] = None) -> None:
        """Block until every submitted op is applied and flushed."""
        self.scheduler.drain(timeout)

    def close(self, timeout: Optional[float] = None) -> None:
        self.scheduler.close(timeout)

    def __enter__(self) -> "PredictionService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    # persistence (warm restart)
    # ------------------------------------------------------------------
    def snapshot(self, registry: ModelRegistry, name: str) -> str:
        """Drain, then persist this service's full state under ``name``.

        The scheduler is paused for the duration of the write, so the
        snapshot is a consistent op-stream prefix even with concurrent
        clients: late submissions queue and execute after the snapshot.
        """
        self.drain()
        with self.scheduler.paused():
            return registry.save_service_state(self.stage, name, service_config=self.config)

    @classmethod
    def restore(
        cls,
        registry: ModelRegistry,
        name: str,
        service_config: Optional[ServiceConfig] = None,
    ) -> "PredictionService":
        """Rebuild a service from a snapshot (bit-for-bit warm restart)."""
        return registry.load_service(name, service_config=service_config)

    # ------------------------------------------------------------------
    def maintenance_window(self) -> Optional[dict]:
        """The forecast-recommended slot for heavy maintenance.

        ANALYZE-style refreshes (statistics rebuilds, vacuum passes —
        anything that competes with serving) should land in a forecast
        load trough.  Returns ``{"start_s": ..., "bin_seconds": ...}``
        for the next trough bin after the last observed arrival, or
        ``None`` when forecasting is off, the forecaster is cold, or no
        trough exists within one seasonal cycle.  Purely advisory: reads
        forecast state, changes nothing, so it never perturbs parity.
        """
        forecast = self.stage.forecast
        if forecast is None or forecast.arrivals.last_bin is None:
            return None
        last_seen = forecast.arrivals.last_bin * forecast.bin_seconds
        start = forecast.next_trough(last_seen)
        if start is None:
            return None
        return {"start_s": start, "bin_seconds": forecast.bin_seconds}

    def stats(self) -> dict:
        """Routing/cache accounting plus scheduler batching counters.

        The ``stage`` sub-dict *is* the ``stage_stats`` the replay
        harness reports (one shared definition), so serving and replay
        accounting line up key-for-key.
        """
        # lazy: repro.harness imports repro.service for its serving modes
        from repro.harness.replay import stage_stats_of

        return {
            "stage": stage_stats_of(self.stage),
            "scheduler": dict(self.scheduler.stats),
        }
