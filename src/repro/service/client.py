"""One client protocol for every serving tier.

Four tiers can serve a Stage prediction — in-process
:class:`~repro.service.PredictionService`, the sharded multi-process
:class:`~repro.service.FleetGateway`, and the TCP
:class:`~repro.service.WireClient` — and all of them speak the same
futures-based surface: :class:`PredictorClient`.  The replay harness,
the scenario engine and the fleet control plane program against this
protocol only, so a new tier (or a test double) plugs in by implementing
five methods instead of growing another ``via_*`` special case.

:func:`replay_trace_via_client` is the one replay driver built on it:
given a *client factory* (a zero-arg callable returning a context
manager over a :class:`PredictorClient`) it replays an instance's fused
predict/observe stream from any number of concurrent clients,
reserving the whole sequence range up front so every interleaving —
thread, shard, connection — reproduces the direct replay bit-for-bit.
"""

from __future__ import annotations

import contextlib
import threading
from concurrent.futures import Future
from typing import Callable, ContextManager, List, Optional, Protocol, runtime_checkable

__all__ = ["PredictorClient", "replay_trace_via_client", "shared_client"]


@runtime_checkable
class PredictorClient(Protocol):
    """The unified predictor-client surface, implemented by every tier.

    All submission methods are futures-based and thread-safe; ``seq``
    is the per-instance sequence number (``None`` = live mode, where
    arrival order is sequence order).
    """

    def predict_async(self, instance_id: str, record, seq: Optional[int] = None) -> Future:
        """Submit one prediction; resolves to its routed components."""
        ...

    def observe_async(self, instance_id: str, record, seq: Optional[int] = None) -> Future:
        """Feed back one executed query; resolves to ``None``."""
        ...

    def reserve_sequence(self, instance_id: str, count: int) -> int:
        """Claim ``count`` consecutive sequence slots; returns the base."""
        ...

    def stats(self) -> dict:
        """Serving-side accounting (tier-shaped; see each tier's docs)."""
        ...

    def close(self) -> None:
        """Release the client's resources."""
        ...


#: a zero-arg callable yielding a context manager over one client —
#: the unit of connection scope for :func:`replay_trace_via_client`
ClientFactory = Callable[[], ContextManager[PredictorClient]]


def shared_client(client: PredictorClient) -> ClientFactory:
    """A factory handing every caller the same client, never closing it.

    The in-process tiers (service, gateway) multiplex any number of
    threads over one client object; only connection-oriented tiers (the
    wire client) need a real per-caller factory.
    """
    return lambda: contextlib.nullcontext(client)


def replay_trace_via_client(
    client_factory: ClientFactory,
    trace,
    n_clients: int = 1,
    timeout: float = 300.0,
):
    """Replay one instance's fused predict/observe stream, concurrently.

    ``n_clients`` workers each open their own client from the factory
    and submit a strided slice of the trace with explicit sequence
    numbers drawn from one up-front reservation (predict at
    ``base + 2i``, observe at ``base + 2i + 1``), then wait out their
    own futures before closing — so connection-scoped clients stay open
    until their responses land, and any interleaving reproduces the
    direct replay bit-for-bit.  Returns per-query components in trace
    order.

    A *submission* failure means reserved slots were never submitted:
    the sequence stream now has a gap the backend's scheduler will wait
    behind, so it is wrapped in an explicit :class:`RuntimeError`
    telling the caller to close the backend.  A failure carried by a
    *response* future propagates as-is.
    """
    instance_id = trace.instance.instance_id
    n_clients = max(1, int(n_clients))
    with client_factory() as admin:
        base = admin.reserve_sequence(instance_id, 2 * len(trace))
    futures: List[Optional[Future]] = [None] * len(trace)
    observe_futures: List[Optional[Future]] = [None] * len(trace)
    submit_errors: List[Optional[BaseException]] = [None] * n_clients
    wait_errors: List[Optional[BaseException]] = [None] * n_clients
    abort = threading.Event()

    def worker(worker_index: int) -> None:
        try:
            with client_factory() as client:
                mine = []
                try:
                    for i in range(worker_index, len(trace), n_clients):
                        if abort.is_set():
                            return
                        record = trace[i]
                        futures[i] = client.predict_async(
                            instance_id, record, seq=base + 2 * i
                        )
                        observe_futures[i] = client.observe_async(
                            instance_id, record, seq=base + 2 * i + 1
                        )
                        mine.append((futures[i], observe_futures[i]))
                except BaseException as exc:
                    submit_errors[worker_index] = exc
                    abort.set()  # siblings stop instead of waiting out timeouts
                    return
                for predict_future, observe_future in mine:
                    if abort.is_set():
                        return
                    predict_future.result(timeout=timeout)
                    observe_future.result(timeout=timeout)
        except BaseException as exc:
            wait_errors[worker_index] = exc
            abort.set()

    threads = [
        threading.Thread(target=worker, args=(w,), name=f"replay-client-{w}")
        for w in range(n_clients)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    for error in submit_errors:
        if error is not None:
            # the reserved slots that were never submitted leave a gap
            # the backend's scheduler will wait behind, so the instance
            # cannot serve again — closing the backend (which fails
            # gap-stranded ops explicitly) is the only exit
            raise RuntimeError(
                f"replay submission failed; instance {instance_id!r}'s "
                "sequence stream now has a gap — close the serving backend"
            ) from error
    for error in wait_errors:
        if error is not None:
            raise error
    return [future.result(timeout=timeout) for future in futures]
