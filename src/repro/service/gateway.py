"""Fleet gateway: a sharded, multi-process serving tier.

Stage runs *inside* every Redshift instance in a fleet, so the
production shape of this reproduction is not one
:class:`~repro.service.PredictionService` but thousands of them behind a
single front door.  :class:`FleetGateway` is that front door: it shards
per-instance services across ``n_shards`` OS worker processes (built
from the same :func:`repro.parallelism.pool_context` every pool in the
repo uses, so ``REPRO_MP_START_METHOD`` governs it too) and exposes a
thread-safe client API — ``predict(instance_id, record)`` /
``observe(instance_id, record)`` returning futures.

Architecture
------------
- **Routing.** :func:`shard_for` maps an instance id to its shard — a
  pure function of ``(instance_id, n_shards)`` built on the workload
  layer's :func:`~repro.workload.seeding.derive_seed`, so the map is
  stable across runs, processes and machines (never Python's salted
  ``hash``).  Each shard process owns one ``PredictionService`` per
  instance assigned to it; ops travel over a **bounded** per-shard
  request queue (backpressure: a full queue fails the enqueue with
  :class:`GatewayBackpressureError` after ``enqueue_timeout_s``).
- **Determinism contract** (the PR 3/4 contract, lifted to the fleet):
  results depend only on each instance's sequenced op stream — never on
  shard count, shard assignment, client threading, queue bounds or
  batch knobs.  Every instance op carries an explicit per-instance
  sequence number assigned at the gateway, and the shard-side scheduler
  executes in sequence order, so ``FleetSweeper`` direct, ``via_service``
  and ``via_gateway`` replays are bit-identical (arrays *and*
  cache/counter accounting) for any shard/client count.
- **Crash containment.** A shard process dying fails exactly that
  shard's in-flight futures with :class:`ShardCrashedError` (carrying
  the instance id); other shards keep serving, and :meth:`close` still
  drains and joins cleanly.
- **Snapshot/restore.** :meth:`snapshot` quiesces the fleet and writes
  one :class:`~repro.service.ModelRegistry` fleet snapshot: each shard
  saves its members' states, the parent writes the fleet-shared global
  model once plus a single manifest spanning all shards.  Because shard
  assignment never affects results, :meth:`restore` rebuilds the fleet
  bit-for-bit under *any* shard count.
"""

from __future__ import annotations

import itertools
import queue
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass
from functools import partial
from typing import Dict, List, Optional, Tuple

from repro.core.config import GatewayConfig, ServiceConfig, StageConfig
from repro.global_model.model import GlobalModel
from repro.ml.intervals import (
    merge_width_bins,
    new_width_bins,
    width_percentile_from_bins,
)
from repro.parallelism import pool_context
from repro.workload.instance import InstanceProfile
from repro.workload.seeding import derive_seed

from .registry import ModelRegistry
from .scheduler import OBSERVE, PREDICT
from .server import PredictionService

__all__ = [
    "FleetGateway",
    "GatewayBackpressureError",
    "ShardCrashedError",
    "shard_for",
]


def shard_for(instance_id: str, n_shards: int) -> int:
    """The shard owning ``instance_id`` — a pure, stable function.

    Built on :func:`~repro.workload.seeding.derive_seed` (keyed blake2b),
    so the same ``(instance_id, n_shards)`` maps to the same shard in
    every process and on every run — a restored fleet re-routes
    identically, and the routing property tests can rely on it.
    """
    if n_shards < 1:
        raise ValueError("n_shards must be >= 1")
    return derive_seed("gateway-shard", instance_id) % n_shards


class ShardCrashedError(RuntimeError):
    """A shard worker process died with this op in flight (or routed to
    it afterwards).  Carries enough context to re-route or report."""

    def __init__(self, shard_index: int, instance_id: Optional[str] = None):
        self.shard_index = shard_index
        self.instance_id = instance_id
        detail = f" (instance {instance_id!r})" if instance_id is not None else ""
        super().__init__(f"gateway shard {shard_index} crashed{detail}")


class GatewayBackpressureError(TimeoutError):
    """A shard's bounded request queue stayed full past the enqueue
    timeout — the fleet is over capacity, shed load or add shards.

    Carries the shed op's ``instance_id`` (``None`` for control ops,
    mirroring :class:`ShardCrashedError`) and a machine-readable
    ``retry_after_s`` back-off hint, so protocol layers (the wire
    front door's RETRY_AFTER frame) never have to parse the message.
    """

    def __init__(
        self,
        shard_index: int,
        timeout_s: float,
        instance_id: Optional[str] = None,
        retry_after_s: Optional[float] = None,
    ):
        self.shard_index = shard_index
        self.timeout_s = timeout_s
        self.instance_id = instance_id
        self.retry_after_s = retry_after_s if retry_after_s is not None else timeout_s
        detail = f" (instance {instance_id!r})" if instance_id is not None else ""
        super().__init__(
            f"gateway shard {shard_index} request queue full for "
            f"{timeout_s:.1f}s{detail}; retry after {self.retry_after_s:.1f}s"
        )


# ---------------------------------------------------------------------------
# shard worker process
# ---------------------------------------------------------------------------
#: control op kinds (instance ops reuse the scheduler's PREDICT/OBSERVE)
_REGISTER = "register"
_DRAIN = "drain"
_STATS = "stats"
_SNAPSHOT = "snapshot"
_RESTORE = "restore"
_SLEEP = "sleep"  # fault-injection/backpressure test hook: hold the shard busy
_SHUTDOWN = "shutdown"

_OK = "ok"
_ERR = "err"


@dataclass(frozen=True)
class _ShardInit:
    """Everything a shard worker needs, shipped once at process start
    (the fleet-shared global model rides here, never per-op)."""

    stage_config: Optional[StageConfig]
    service_config: ServiceConfig
    random_state: int
    global_model: Optional[GlobalModel]


def _relay_response(response_q, op_id: int, future: Future) -> None:
    """Done-callback bridging a service future back to the parent."""
    exc = future.exception()
    if exc is not None:
        response_q.put((op_id, _ERR, exc))
    else:
        response_q.put((op_id, _OK, future.result()))


def _shard_main(shard_index: int, request_q, response_q, init: _ShardInit) -> None:
    """One shard worker: owns its instances' services, applies ops.

    Instance ops (predict/observe) are submitted to the owning service's
    sequenced scheduler and answered asynchronously via done-callbacks,
    so the shard loop never blocks behind a micro-batch; control ops are
    answered synchronously in queue order.
    """
    services: Dict[str, PredictionService] = {}
    while True:
        try:
            op_id, kind, payload = request_q.get()
        except (EOFError, OSError, KeyboardInterrupt):
            return
        try:
            if kind in (PREDICT, OBSERVE):
                instance_id, record, seq = payload
                service = services[instance_id]
                future = service.scheduler.submit(kind, record, seq=seq)
                future.add_done_callback(partial(_relay_response, response_q, op_id))
                continue
            if kind == _REGISTER:
                (instance,) = payload
                if instance.instance_id in services:
                    raise ValueError(f"instance {instance.instance_id!r} already registered")
                services[instance.instance_id] = PredictionService(
                    instance,
                    global_model=init.global_model,
                    stage_config=init.stage_config,
                    service_config=init.service_config,
                    random_state=init.random_state,
                )
                result = instance.instance_id
            elif kind == _DRAIN:
                for service in services.values():
                    service.drain()
                result = len(services)
            elif kind == _STATS:
                result = {iid: service.stats() for iid, service in services.items()}
            elif kind == _SNAPSHOT:
                registry_root, name = payload
                registry = ModelRegistry(registry_root)
                result = []
                for instance_id in sorted(services):
                    service = services[instance_id]
                    service.drain()
                    with service.scheduler.paused():
                        registry.save_fleet_member(service.stage, name)
                    result.append(instance_id)
            elif kind == _RESTORE:
                registry_root, name, instance_ids = payload
                registry = ModelRegistry(registry_root)
                for instance_id in instance_ids:
                    if instance_id in services:
                        raise ValueError(f"instance {instance_id!r} already registered")
                    stage = registry.load_fleet_member(
                        name, instance_id, global_model=init.global_model
                    )
                    services[instance_id] = PredictionService.from_stage(
                        stage, service_config=init.service_config
                    )
                result = list(instance_ids)
            elif kind == _SLEEP:
                (seconds,) = payload
                time.sleep(seconds)
                result = None
            elif kind == _SHUTDOWN:
                for service in services.values():
                    service.close()
                response_q.put((op_id, _OK, None))
                return
            else:
                raise ValueError(f"unknown gateway op kind {kind!r}")
        except Exception as exc:  # surface to the caller, keep the shard alive
            response_q.put((op_id, _ERR, exc))
        else:
            response_q.put((op_id, _OK, result))


# ---------------------------------------------------------------------------
# parent-side shard handle
# ---------------------------------------------------------------------------
class _Shard:
    """Parent-side state for one shard worker process."""

    __slots__ = (
        "index",
        "process",
        "request_q",
        "response_q",
        "listener",
        "pending",
        "pending_lock",
        "submit_lock",
        "crashed",
        "shutdown_op_id",
        "shutdown_acked",
    )

    def __init__(self, index: int, process, request_q, response_q):
        self.index = index
        self.process = process
        self.request_q = request_q
        self.response_q = response_q
        self.listener: Optional[threading.Thread] = None
        #: op id -> (future, instance id or None) awaiting a response
        self.pending: Dict[int, Tuple[Future, Optional[str]]] = {}
        self.pending_lock = threading.Lock()
        #: serializes sequence-number assignment with the enqueue itself,
        #: so a backpressure failure can roll the counter back safely
        self.submit_lock = threading.Lock()
        self.crashed = False
        self.shutdown_op_id: Optional[int] = None
        self.shutdown_acked = False


# ---------------------------------------------------------------------------
# the gateway
# ---------------------------------------------------------------------------
class FleetGateway:
    """Sharded multi-process serving tier over per-instance services.

    Parameters
    ----------
    config:
        Shard/queue knobs (:class:`~repro.core.config.GatewayConfig`);
        its ``service`` field carries the per-instance micro-batching
        knobs.  All capacity dials — never affect a prediction bit.
    stage_config / random_state:
        Forwarded to every instance's :class:`StagePredictor`.
    global_model:
        The fleet-shared model, shipped to each shard **once** at
        process start (the pool-initializer idiom), or ``None``.
    """

    def __init__(
        self,
        config: Optional[GatewayConfig] = None,
        stage_config: Optional[StageConfig] = None,
        global_model: Optional[GlobalModel] = None,
        random_state: int = 0,
    ):
        # GatewayConfig.__post_init__ validates the knobs, so any config
        # that reaches here is structurally sound
        self.config = config or GatewayConfig()
        self.stage_config = stage_config
        self.global_model = global_model
        self.random_state = random_state
        self._closed = False
        self._lifecycle_lock = threading.Lock()
        self._op_ids = itertools.count()
        self._op_id_lock = threading.Lock()
        #: instance id -> shard index (registration map)
        self._instances: Dict[str, int] = {}
        #: instance id -> next unclaimed per-instance sequence number
        self._instance_seq: Dict[str, int] = {}
        self._registry_lock = threading.Lock()

        ctx = pool_context()
        init = _ShardInit(
            stage_config=stage_config,
            service_config=self.config.service,
            random_state=random_state,
            global_model=global_model,
        )
        self._shards: List[_Shard] = []
        for index in range(self.config.n_shards):
            request_q = ctx.Queue(maxsize=self.config.queue_size)
            response_q = ctx.Queue()
            process = ctx.Process(
                target=_shard_main,
                args=(index, request_q, response_q, init),
                name=f"fleet-gateway-shard-{index}",
                daemon=True,
            )
            shard = _Shard(index, process, request_q, response_q)
            self._shards.append(shard)
        # start everything only after construction can no longer fail
        for shard in self._shards:
            shard.process.start()
            shard.listener = threading.Thread(
                target=self._listen,
                args=(shard,),
                name=f"fleet-gateway-listener-{shard.index}",
                daemon=True,
            )
            shard.listener.start()

    # ------------------------------------------------------------------
    # response listeners (one thread per shard)
    # ------------------------------------------------------------------
    def _listen(self, shard: _Shard) -> None:
        while True:
            try:
                op_id, status, value = shard.response_q.get(timeout=0.2)
            except queue.Empty:
                if not shard.process.is_alive():
                    # late responses may still sit in the pipe buffer
                    self._drain_responses_nowait(shard)
                    if not shard.shutdown_acked:
                        self._mark_crashed(shard)
                    return
                continue
            except (EOFError, OSError, ValueError):
                # ValueError: close() closed the queue under a deadline
                # too tight for this listener to exit first
                self._mark_crashed(shard)
                return
            self._dispatch_response(shard, op_id, status, value)
            if shard.shutdown_acked:
                return

    def _drain_responses_nowait(self, shard: _Shard) -> None:
        while True:
            try:
                op_id, status, value = shard.response_q.get_nowait()
            except (queue.Empty, EOFError, OSError, ValueError):
                return
            self._dispatch_response(shard, op_id, status, value)

    def _dispatch_response(self, shard: _Shard, op_id: int, status: str, value) -> None:
        with shard.pending_lock:
            entry = shard.pending.pop(op_id, None)
        if op_id == shard.shutdown_op_id:
            shard.shutdown_acked = True
        if entry is None:
            return
        future, _ = entry
        if status == _OK:
            future.set_result(value)
        else:
            future.set_exception(value)

    def _mark_crashed(self, shard: _Shard) -> None:
        """Fail everything in flight on a dead shard; contain the blast."""
        shard.crashed = True
        with shard.pending_lock:
            pending, shard.pending = shard.pending, {}
        for future, instance_id in pending.values():
            if not future.done():
                future.set_exception(ShardCrashedError(shard.index, instance_id))

    # ------------------------------------------------------------------
    # submission plumbing
    # ------------------------------------------------------------------
    def _next_op_id(self) -> int:
        with self._op_id_lock:
            return next(self._op_ids)

    def _register_pending(self, shard: _Shard, instance_id: Optional[str]) -> Tuple[int, Future]:
        op_id = self._next_op_id()
        future: Future = Future()
        with shard.pending_lock:
            shard.pending[op_id] = (future, instance_id)
        return op_id, future

    def _pop_pending(self, shard: _Shard, op_id: int):
        with shard.pending_lock:
            return shard.pending.pop(op_id, None)

    def _check_open(self, shard: _Shard, instance_id: Optional[str]) -> None:
        if self._closed:
            raise RuntimeError("gateway is closed")
        if shard.crashed:
            raise ShardCrashedError(shard.index, instance_id)

    def _enqueue(
        self, shard: _Shard, op_id: int, message: tuple, instance_id: Optional[str] = None
    ) -> None:
        try:
            shard.request_q.put(message, timeout=self.config.enqueue_timeout_s)
        except queue.Full:
            self._pop_pending(shard, op_id)
            raise GatewayBackpressureError(
                shard.index,
                self.config.enqueue_timeout_s,
                instance_id=instance_id,
                retry_after_s=self.config.retry_after_s,
            ) from None

    def _crash_race_check(self, shard: _Shard, op_id: int, instance_id: Optional[str]) -> None:
        """Close the enqueue-vs-failure-sweep race, identically for
        control and instance ops.

        If the shard died between the enqueue and here, the listener's
        sweep may have already failed our pending future — or may not
        have seen it yet.  Whoever pops the pending entry owns the
        failure: if we win, raise directly (the message is stranded in
        the dead shard's request queue either way); if the sweep won,
        the future already carries :class:`ShardCrashedError`.
        """
        if shard.crashed:
            if self._pop_pending(shard, op_id) is not None:
                raise ShardCrashedError(shard.index, instance_id)

    def _submit_control(self, shard: _Shard, kind: str, payload: tuple = ()) -> Future:
        self._check_open(shard, None)
        op_id, future = self._register_pending(shard, None)
        self._enqueue(shard, op_id, (op_id, kind, payload))
        self._crash_race_check(shard, op_id, None)
        return future

    def _submit_instance_op(
        self, kind: str, instance_id: str, record, seq: Optional[int]
    ) -> Future:
        shard = self._shard_of(instance_id)
        self._check_open(shard, instance_id)
        op_id, future = self._register_pending(shard, instance_id)
        if seq is None:
            # live mode: claim the instance's next slot.  Assignment and
            # enqueue share the shard's submit lock so a backpressure
            # failure can roll the counter back without leaving a gap
            # for the ops behind it to stall on.
            with shard.submit_lock:
                seq = self._instance_seq[instance_id]
                self._instance_seq[instance_id] = seq + 1
                try:
                    self._enqueue(
                        shard, op_id, (op_id, kind, (instance_id, record, seq)), instance_id
                    )
                except GatewayBackpressureError:
                    self._instance_seq[instance_id] = seq
                    raise
        else:
            # replay mode: the caller reserved its range upfront
            self._enqueue(shard, op_id, (op_id, kind, (instance_id, record, seq)), instance_id)
        self._crash_race_check(shard, op_id, instance_id)
        return future

    def _shard_of(self, instance_id: str) -> _Shard:
        try:
            index = self._instances[instance_id]
        except KeyError:
            raise KeyError(
                f"instance {instance_id!r} is not registered with this gateway"
            ) from None
        return self._shards[index]

    def _live_shards(self) -> List[_Shard]:
        return [shard for shard in self._shards if not shard.crashed]

    def reserve_sequence(self, instance_id: str, count: int) -> int:
        """Claim ``count`` consecutive sequence slots for ``instance_id``.

        Returns the first reserved number.  Replay-style submitters
        (:meth:`replay_components`, the wire protocol's RESERVE op)
        reserve their whole range up front and then submit with explicit
        ``seq`` values, so any client/connection interleaving reproduces
        the same op stream.  Every reserved slot must eventually be
        submitted: the shard scheduler executes in sequence order and
        waits behind gaps.
        """
        if count < 0:
            raise ValueError("count must be >= 0")
        shard = self._shard_of(instance_id)
        with shard.submit_lock:
            base = self._instance_seq[instance_id]
            self._instance_seq[instance_id] = base + count
        return base

    # ------------------------------------------------------------------
    # fleet management
    # ------------------------------------------------------------------
    @property
    def n_shards(self) -> int:
        return self.config.n_shards

    @property
    def instance_ids(self) -> Tuple[str, ...]:
        with self._registry_lock:
            return tuple(sorted(self._instances))

    def register_instance(
        self, instance: InstanceProfile, timeout: Optional[float] = None
    ) -> int:
        """Create ``instance``'s service on its shard; returns the shard
        index.  Every instance must be registered before its first op."""
        instance_id = instance.instance_id
        if self._closed:
            raise RuntimeError("gateway is closed")
        with self._registry_lock:
            if instance_id in self._instances:
                raise ValueError(f"instance {instance_id!r} already registered")
        shard = self._shards[shard_for(instance_id, self.n_shards)]
        future = self._submit_control(shard, _REGISTER, (instance,))
        future.result(timeout if timeout is not None else self.config.drain_timeout_s)
        with self._registry_lock:
            self._instances[instance_id] = shard.index
            self._instance_seq.setdefault(instance_id, 0)
        return shard.index

    # ------------------------------------------------------------------
    # the online protocol
    # ------------------------------------------------------------------
    def predict_async(self, instance_id: str, record, seq: Optional[int] = None) -> Future:
        """Submit one prediction for ``instance_id``; resolves to its
        :class:`~repro.core.stage.RoutedComponents`."""
        return self._submit_instance_op(PREDICT, instance_id, record, seq)

    def predict(
        self,
        instance_id: str,
        record,
        seq: Optional[int] = None,
        timeout: Optional[float] = None,
    ):
        """Blocking :meth:`predict_async`; returns the routed prediction."""
        if timeout is None:
            timeout = self.config.drain_timeout_s
        return self.predict_async(instance_id, record, seq=seq).result(timeout).prediction

    def observe(self, instance_id: str, record, seq: Optional[int] = None) -> Future:
        """Feed back one executed query to its instance's service."""
        return self._submit_instance_op(OBSERVE, instance_id, record, seq)

    # ------------------------------------------------------------------
    # replay hook (harness / scenario engine)
    # ------------------------------------------------------------------
    def replay_components(self, trace, n_clients: int = 1, timeout: Optional[float] = None):
        """Replay one instance's fused predict/observe stream, concurrently.

        The gateway analogue of
        :meth:`PredictionService.replay_components`: ``n_clients``
        threads submit with explicit per-instance sequence numbers
        reserved up front, so any client interleaving — and any shard
        count — reproduces the direct replay bit-for-bit.  Returns the
        per-query components in trace order.
        """
        import threading as _threading

        if timeout is None:
            timeout = self.config.drain_timeout_s
        instance_id = trace.instance.instance_id
        if self._closed:
            raise RuntimeError("gateway is closed")
        base = self.reserve_sequence(instance_id, 2 * len(trace))
        futures: List[Optional[Future]] = [None] * len(trace)
        observe_futures: List[Optional[Future]] = [None] * len(trace)
        n_clients = max(1, int(n_clients))
        errors: List[Optional[BaseException]] = [None] * n_clients
        abort = _threading.Event()

        def client(worker_index: int) -> None:
            try:
                for i in range(worker_index, len(trace), n_clients):
                    if abort.is_set():
                        return
                    record = trace[i]
                    futures[i] = self.predict_async(instance_id, record, seq=base + 2 * i)
                    observe_futures[i] = self.observe(instance_id, record, seq=base + 2 * i + 1)
            except BaseException as exc:
                errors[worker_index] = exc
                abort.set()  # siblings stop instead of waiting out timeouts

        threads = [
            _threading.Thread(target=client, args=(w,)) for w in range(n_clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        for error in errors:
            if error is not None:
                # the reserved sequence slots that were never submitted
                # leave a gap the shard scheduler will wait behind, so
                # this instance cannot serve again — close() (which
                # fails gap-stranded ops explicitly) is the only exit
                raise RuntimeError(
                    f"replay submission failed; instance {instance_id!r}'s "
                    "sequence stream now has a gap — close the gateway"
                ) from error
        components = [future.result(timeout=timeout) for future in futures]
        for future in observe_futures:
            future.result(timeout=timeout)
        return components

    # ------------------------------------------------------------------
    # fleet-wide barriers and accounting
    # ------------------------------------------------------------------
    def drain(self, timeout: Optional[float] = None) -> None:
        """Block until every live shard has applied its queued ops."""
        if self._closed:
            raise RuntimeError("gateway is closed")
        if timeout is None:
            timeout = self.config.drain_timeout_s
        futures = [self._submit_control(shard, _DRAIN) for shard in self._live_shards()]
        for future in futures:
            future.result(timeout)

    def stats(self) -> dict:
        """Aggregated fleet metrics plus per-shard and per-instance views.

        Per-instance ``stage`` sub-dicts match the replay harness's
        ``stage_stats`` key-for-key (the parity suites compare them
        directly); the ``fleet`` roll-up sums them across shards.
        """
        shard_futures = [
            (shard, self._submit_control(shard, _STATS)) for shard in self._live_shards()
        ]
        instances: Dict[str, dict] = {}
        shards = []
        for shard, future in shard_futures:
            per_instance = future.result(self.config.drain_timeout_s)
            instances.update(per_instance)
            shards.append(
                {
                    "shard": shard.index,
                    "alive": shard.process.is_alive(),
                    "n_instances": len(per_instance),
                }
            )
        for shard in self._shards:
            if shard.crashed:
                shards.append({"shard": shard.index, "alive": False, "n_instances": 0})
        shards.sort(key=lambda row: row["shard"])
        fleet = {
            "n_predicts": 0,
            "n_observes": 0,
            "n_immediate": 0,
            "n_deferred": 0,
            "n_batches": 0,
            "cache_hits": 0,
            "cache_misses": 0,
            "n_local_retrains": 0,
            "byte_size": 0,
        }
        width_bins = new_width_bins()
        for stats in instances.values():
            scheduler, stage = stats["scheduler"], stats["stage"]
            for key in ("n_predicts", "n_observes", "n_immediate", "n_deferred", "n_batches"):
                fleet[key] += scheduler[key]
            fleet["cache_hits"] += stage["cache_hits"]
            fleet["cache_misses"] += stage["cache_misses"]
            fleet["n_local_retrains"] += stage["n_local_retrains"]
            fleet["byte_size"] += stage["byte_size"]
            # integer histograms merge exactly (elementwise addition),
            # so the fleet percentiles are independent of shard count
            # and of the order instances report in
            width_bins = merge_width_bins(width_bins, stage["interval_width_bins"])
        lookups = fleet["cache_hits"] + fleet["cache_misses"]
        fleet["cache_hit_rate"] = fleet["cache_hits"] / lookups if lookups else 0.0
        fleet["interval_width_bins"] = tuple(width_bins)
        fleet["interval_width_p50"] = width_percentile_from_bins(width_bins, 0.5)
        fleet["interval_width_p90"] = width_percentile_from_bins(width_bins, 0.9)
        return {
            "n_shards": self.n_shards,
            "n_instances": len(instances),
            "fleet": fleet,
            "shards": shards,
            "instances": instances,
        }

    # ------------------------------------------------------------------
    # persistence (whole-fleet warm restart)
    # ------------------------------------------------------------------
    def snapshot(self, registry: ModelRegistry, name: str) -> str:
        """Drain, then persist the whole fleet under ``name``.

        Each shard saves the member states it owns; the parent writes
        the fleet-shared global model once and the single manifest
        spanning all shards.  A crashed shard makes the snapshot fail
        explicitly (its members' states cannot be captured).
        """
        stranded = sorted(
            instance_id
            for instance_id, index in self._instances.items()
            if self._shards[index].crashed
        )
        if stranded:
            # fail before any member write: a partial save under an
            # existing name would mix snapshot epochs on disk
            raise RuntimeError(
                f"cannot snapshot fleet {name!r}: instances {stranded} "
                "live on crashed shards (their state is unrecoverable)"
            )
        self.drain()
        futures = [
            self._submit_control(shard, _SNAPSHOT, (registry.root, name))
            for shard in self._live_shards()
        ]
        saved: List[str] = []
        for future in futures:
            saved.extend(future.result(self.config.drain_timeout_s))
        missing = sorted(set(self._instances) - set(saved))
        if missing:
            # the manifest is what makes a snapshot restorable — never
            # write it over stale member state from an earlier snapshot
            raise RuntimeError(f"fleet snapshot {name!r} missed instances {missing}")
        registry.save_fleet_manifest(
            name, sorted(self._instances), self.n_shards, global_model=self.global_model
        )
        return registry.fleet_snapshot_path(name)

    @classmethod
    def restore(
        cls,
        registry: ModelRegistry,
        name: str,
        config: Optional[GatewayConfig] = None,
        stage_config: Optional[StageConfig] = None,
        random_state: int = 0,
    ) -> "FleetGateway":
        """Rebuild a fleet from a snapshot — under any shard count.

        The manifest's recorded shard count is provenance only; the new
        gateway re-routes every instance with :func:`shard_for` under its
        own ``config.n_shards`` and each shard loads the member states it
        now owns.  Warm restart is bit-for-bit, retrains included.
        """
        manifest = registry.load_fleet_manifest(name)
        global_model = registry.load_fleet_global(name) if manifest["has_global_model"] else None
        gateway = cls(
            config,
            stage_config=stage_config,
            global_model=global_model,
            random_state=random_state,
        )
        try:
            by_shard: Dict[int, List[str]] = {}
            for instance_id in manifest["instances"]:
                by_shard.setdefault(shard_for(instance_id, gateway.n_shards), []).append(
                    instance_id
                )
            futures = [
                (
                    index,
                    ids,
                    gateway._submit_control(
                        gateway._shards[index], _RESTORE, (registry.root, name, ids)
                    ),
                )
                for index, ids in sorted(by_shard.items())
            ]
            for index, ids, future in futures:
                future.result(gateway.config.drain_timeout_s)
                with gateway._registry_lock:
                    for instance_id in ids:
                        gateway._instances[instance_id] = index
                        gateway._instance_seq[instance_id] = 0
        except BaseException:
            gateway.close()
            raise
        return gateway

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    def close(self, timeout: Optional[float] = None) -> None:
        """Shut the fleet down: drain live shards, join every process.

        Safe after crashes (dead shards are terminated and their pending
        futures have already failed) and idempotent.
        """
        with self._lifecycle_lock:
            if self._closed:
                return
            self._closed = True
        if timeout is None:
            timeout = self.config.drain_timeout_s
        # one shared monotonic deadline governs both loops below: the
        # shutdown broadcast and the join sweep draw on the same budget,
        # so close(timeout=T) stays bounded by ~T even on a wedged
        # many-shard fleet (past the deadline every wait degrades to a
        # non-blocking poll and the hard terminate takes over)
        deadline = time.monotonic() + timeout
        for shard in self._shards:
            if shard.crashed:
                continue
            op_id, _ = self._register_pending(shard, None)
            shard.shutdown_op_id = op_id
            budget = min(
                self.config.shutdown_enqueue_timeout_s,
                max(deadline - time.monotonic(), 0.0),
            )
            try:
                shard.request_q.put((op_id, _SHUTDOWN, ()), timeout=budget)
            except queue.Full:
                # wedged shard: give up on a clean drain, terminate below
                self._pop_pending(shard, op_id)
        for shard in self._shards:
            if shard.listener is not None:
                shard.listener.join(max(deadline - time.monotonic(), 0.0))
            shard.process.join(max(deadline - time.monotonic(), 0.0))
            if shard.process.is_alive():
                shard.process.terminate()
                shard.process.join(5.0)
            self._mark_crashed(shard)  # fail anything still pending
            # never let queue feeder threads hold interpreter shutdown
            for q in (shard.request_q, shard.response_q):
                q.close()
                q.cancel_join_thread()

    def __enter__(self) -> "FleetGateway":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    # fault-injection instrumentation (tests only)
    # ------------------------------------------------------------------
    def _stall(self, shard_index: int, seconds: float) -> Future:
        """Hold one shard's loop busy for ``seconds`` — the hook the
        fault/backpressure suites use to fill queues deterministically."""
        return self._submit_control(self._shards[shard_index], _SLEEP, (float(seconds),))
