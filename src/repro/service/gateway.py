"""Fleet gateway: a sharded, multi-process serving tier.

Stage runs *inside* every Redshift instance in a fleet, so the
production shape of this reproduction is not one
:class:`~repro.service.PredictionService` but thousands of them behind a
single front door.  :class:`FleetGateway` is that front door: it shards
per-instance services across ``n_shards`` OS worker processes (built
from the same :func:`repro.parallelism.pool_context` every pool in the
repo uses, so ``REPRO_MP_START_METHOD`` governs it too) and exposes a
thread-safe client API — ``predict(instance_id, record)`` /
``observe(instance_id, record)`` returning futures.

Architecture
------------
- **Routing.** The gateway owns an explicit, versioned routing table
  (``instance id -> shard index``, exposed by :meth:`FleetGateway.routes`).
  Registration seeds each entry from :func:`shard_for` — a pure function
  of ``(instance_id, n_shards)`` built on the workload layer's
  :func:`~repro.workload.seeding.derive_seed`, so an untouched fleet
  routes byte-identically to the static map on every run and machine
  (never Python's salted ``hash``).  The control plane
  (:meth:`migrate_instance`, :meth:`resize`,
  :class:`~repro.service.FleetController`) rewrites entries live; every
  rewrite bumps the table version.  Each shard process owns one
  ``PredictionService`` per instance assigned to it.
- **Batched transport.** Ops travel in *envelopes*: the submitting
  thread flushes the per-shard outbox into one ``request_q.put``
  inline — unless a flush is already in flight, in which case that
  flusher ships everything that accumulated as the next envelope (one
  pickle, one queue hop for however many ops piled up, and no handoff
  to a dedicated sender thread on the fast path) — and the shard
  symmetrically batches acks + responses into ``(credits, responses)``
  envelopes on the way back.  Capacity is
  enforced by a **credit** scheme equivalent to the old bounded queue:
  the parent holds ``queue_size`` credits per shard, each op costs one
  credit to submit, and the shard returns the credit the moment its
  loop dequeues that op from an envelope — so "ops submitted but not
  yet picked up" is capped exactly as before, and an exhausted shard
  fails the submit with :class:`GatewayBackpressureError` after
  ``enqueue_timeout_s``.  Envelope boundaries are invisible: every
  instance op carries its explicit sequence number and the shard-side
  scheduler reorders by sequence, so packing never affects results.
- **Live migration.** :meth:`migrate_instance` moves one instance
  between shards under traffic with a *cut-sequence* protocol: the
  instance's next unclaimed sequence number becomes the cut; ops below
  it keep flowing to the source shard (whose scheduler drains through
  the cut, then snapshots the quiesced predictor via the
  :class:`~repro.service.ModelRegistry` per-instance state path), ops
  at-or-above it buffer at the gateway; the routing entry then cuts
  over atomically and the buffer flushes to the target.  No sequence
  gap ever opens, so migration placement is invisible in results.
- **Determinism contract** (the PR 3/4 contract, lifted to the fleet):
  results depend only on each instance's sequenced op stream — never on
  shard count, shard assignment, client threading, queue bounds or
  batch knobs.  Every instance op carries an explicit per-instance
  sequence number assigned at the gateway, and the shard-side scheduler
  executes in sequence order, so ``FleetSweeper`` direct, ``via_service``
  and ``via_gateway`` replays are bit-identical (arrays *and*
  cache/counter accounting) for any shard/client count.
- **Crash containment.** A shard process dying fails exactly that
  shard's in-flight futures with :class:`ShardCrashedError` (carrying
  the instance id); other shards keep serving, and :meth:`close` still
  drains and joins cleanly.
- **Snapshot/restore.** :meth:`snapshot` quiesces the fleet and writes
  one :class:`~repro.service.ModelRegistry` fleet snapshot: each shard
  saves its members' states, the parent writes the fleet-shared global
  model once plus a single manifest spanning all shards.  Because shard
  assignment never affects results, :meth:`restore` rebuilds the fleet
  bit-for-bit under *any* shard count.
"""

from __future__ import annotations

import itertools
import shutil
import tempfile
import threading
import time
from multiprocessing import connection as mp_connection
from concurrent.futures import Future
from dataclasses import dataclass, replace
from functools import partial
from typing import Dict, List, Optional, Tuple

from repro.core.config import GatewayConfig, ServiceConfig, StageConfig
from repro.global_model.model import GlobalModel
from repro.ml.intervals import (
    merge_width_bins,
    new_width_bins,
    width_percentile_from_bins,
)
from repro.parallelism import pool_context
from repro.workload.instance import InstanceProfile
from repro.workload.seeding import derive_seed

from .registry import ModelRegistry
from .scheduler import OBSERVE, PREDICT
from .server import PredictionService

__all__ = [
    "FleetGateway",
    "GatewayBackpressureError",
    "ShardCrashedError",
    "shard_for",
]


def shard_for(instance_id: str, n_shards: int) -> int:
    """The shard owning ``instance_id`` — a pure, stable function.

    Built on :func:`~repro.workload.seeding.derive_seed` (keyed blake2b),
    so the same ``(instance_id, n_shards)`` maps to the same shard in
    every process and on every run — a restored fleet re-routes
    identically, and the routing property tests can rely on it.
    """
    if n_shards < 1:
        raise ValueError("n_shards must be >= 1")
    return derive_seed("gateway-shard", instance_id) % n_shards


class ShardCrashedError(RuntimeError):
    """A shard worker process died with this op in flight (or routed to
    it afterwards).  Carries enough context to re-route or report."""

    def __init__(self, shard_index: int, instance_id: Optional[str] = None):
        self.shard_index = shard_index
        self.instance_id = instance_id
        detail = f" (instance {instance_id!r})" if instance_id is not None else ""
        super().__init__(f"gateway shard {shard_index} crashed{detail}")


class GatewayBackpressureError(TimeoutError):
    """A shard's bounded request queue stayed full past the enqueue
    timeout — the fleet is over capacity, shed load or add shards.

    Carries the shed op's ``instance_id`` (``None`` for control ops,
    mirroring :class:`ShardCrashedError`) and a machine-readable
    ``retry_after_s`` back-off hint, so protocol layers (the wire
    front door's RETRY_AFTER frame) never have to parse the message.
    """

    def __init__(
        self,
        shard_index: int,
        timeout_s: float,
        instance_id: Optional[str] = None,
        retry_after_s: Optional[float] = None,
    ):
        self.shard_index = shard_index
        self.timeout_s = timeout_s
        self.instance_id = instance_id
        self.retry_after_s = retry_after_s if retry_after_s is not None else timeout_s
        detail = f" (instance {instance_id!r})" if instance_id is not None else ""
        super().__init__(
            f"gateway shard {shard_index} request queue full for "
            f"{timeout_s:.1f}s{detail}; retry after {self.retry_after_s:.1f}s"
        )


# ---------------------------------------------------------------------------
# shard worker process
# ---------------------------------------------------------------------------
#: control op kinds (instance ops reuse the scheduler's PREDICT/OBSERVE)
_REGISTER = "register"
_DRAIN = "drain"
_STATS = "stats"
_SNAPSHOT = "snapshot"
_RESTORE = "restore"
_DETACH = "detach"  # migration: drain through the cut, save instance state
_RELEASE = "release"  # migration: drop the detached instance's service
_ATTACH = "attach"  # migration: load instance state, resume at the cut
_SLEEP = "sleep"  # fault-injection/backpressure test hook: hold the shard busy
_SHUTDOWN = "shutdown"

_OK = "ok"
_ERR = "err"


@dataclass(frozen=True)
class _ShardInit:
    """Everything a shard worker needs, shipped once at process start
    (the fleet-shared global model rides here, never per-op)."""

    stage_config: Optional[StageConfig]
    service_config: ServiceConfig
    random_state: int
    global_model: Optional[GlobalModel]


#: how long an unaccompanied credit ack may wait for a response
#: envelope to carry it before the lazy flusher ships it alone (s)
_ACK_GRACE_S = 0.002


class _WorkerOutbox:
    """Shard-side response batcher.

    Credit acks and op responses accumulate under one lock.  Responses
    are flushed *inline* by the completing thread — unless a flush is
    already in flight, in which case that flusher ships whatever
    accumulated as a single ``(credits, responses)`` envelope on its
    next pass: one pickle and one parent wakeup for a whole micro-batch
    of scheduler completions, with no dedicated responder thread on the
    fast path.  Acks piggyback on those response envelopes (a fast op's
    credit release and its answer cost the parent a single wakeup); only
    when an op is slow enough that no response has shipped within a
    short grace does a lazy background flusher send the acks alone,
    which keeps the credit-return bound for ops queued behind a stalled
    one.  An op's ack is always appended before the op is handled, so
    the parent can never see a response whose credit it has not already
    been returned.
    """

    def __init__(self, shard_index: int, response_q):
        self.shard_index = shard_index
        self._response_q = response_q
        self._cond = threading.Condition()
        self._acks = 0
        self._responses: List[tuple] = []
        self._sending = False
        self._stopped = False
        self._ack_flusher = threading.Thread(
            target=self._ack_loop,
            name=f"gateway-shard-{shard_index}-ack-flusher",
            daemon=True,
        )
        self._ack_flusher.start()

    def ack(self) -> None:
        """Return one credit: this op left the queue and is being handled."""
        with self._cond:
            self._acks += 1
            if self._acks == 1 and not self._sending:
                self._cond.notify_all()  # arm the lazy flusher's grace timer

    def put(self, response: tuple) -> None:
        with self._cond:
            self._responses.append(response)
            if self._sending:
                return  # the in-flight flusher ships it next pass
            self._sending = True
        self._flush()

    def _flush(self) -> None:
        while True:
            with self._cond:
                if not self._acks and not self._responses:
                    self._sending = False
                    self._cond.notify_all()
                    return
                acks, self._acks = self._acks, 0
                responses, self._responses = self._responses, []
            try:
                self._response_q.put((acks, responses))
            except (ValueError, OSError):
                with self._cond:
                    self._sending = False
                    self._cond.notify_all()
                return

    def _ack_loop(self) -> None:
        """Ship acks that no response envelope carried within the grace."""
        while True:
            with self._cond:
                while not self._stopped and (not self._acks or self._sending):
                    self._cond.wait()
                if self._stopped:
                    return
                # give an imminent response flush a chance to carry
                # these acks in its own envelope
                self._cond.wait(timeout=_ACK_GRACE_S)
                if self._stopped:
                    return
                if not self._acks or self._sending:
                    continue
                self._sending = True
            self._flush()

    def close(self) -> None:
        """Flush everything still queued, then stop the lazy flusher."""
        with self._cond:
            self._stopped = True
            self._cond.notify_all()
        self._ack_flusher.join(5.0)
        with self._cond:
            self._cond.wait_for(lambda: not self._sending, timeout=5.0)
            if not self._acks and not self._responses:
                return
            self._sending = True
        self._flush()


def _relay_response(outbox: _WorkerOutbox, op_id: int, future: Future) -> None:
    """Done-callback bridging a service future back to the parent."""
    exc = future.exception()
    if exc is not None:
        outbox.put((op_id, _ERR, exc))
    else:
        outbox.put((op_id, _OK, future.result()))


def _shard_main(shard_index: int, request_q, response_q, init: _ShardInit) -> None:
    """One shard worker: owns its instances' services, applies ops.

    The request queue carries *envelopes* (lists of ops).  Each op's
    credit is acked the moment the loop reaches it — before it is
    handled — which reproduces the old bounded-queue occupancy exactly:
    ops behind a slow op in the same envelope keep their credits held
    just as they used to keep their queue slots.  Instance ops
    (predict/observe) are submitted to the owning service's sequenced
    scheduler and answered asynchronously via done-callbacks, so the
    shard loop never blocks behind a micro-batch; control ops are
    answered synchronously in arrival order.
    """
    services: Dict[str, PredictionService] = {}
    outbox = _WorkerOutbox(shard_index, response_q)
    while True:
        try:
            envelope = request_q.get()
        except (EOFError, OSError, KeyboardInterrupt):
            outbox.close()
            return
        for op_id, kind, payload in envelope:
            outbox.ack()  # the op left the queue: return its credit now
            if not _apply_shard_op(shard_index, services, outbox, init, op_id, kind, payload):
                outbox.close()
                return


def _apply_shard_op(
    shard_index: int,
    services: Dict[str, PredictionService],
    outbox: _WorkerOutbox,
    init: _ShardInit,
    op_id: int,
    kind: str,
    payload: tuple,
) -> bool:
    """Handle one op; returns False when the shard should shut down."""
    try:
        if kind in (PREDICT, OBSERVE):
            instance_id, record, seq = payload
            service = services[instance_id]
            future = service.scheduler.submit(kind, record, seq=seq)
            future.add_done_callback(partial(_relay_response, outbox, op_id))
            return True
        if kind == _REGISTER:
            (instance,) = payload
            if instance.instance_id in services:
                raise ValueError(f"instance {instance.instance_id!r} already registered")
            services[instance.instance_id] = PredictionService(
                instance,
                global_model=init.global_model,
                stage_config=init.stage_config,
                service_config=init.service_config,
                random_state=init.random_state,
            )
            result = instance.instance_id
        elif kind == _DRAIN:
            for service in services.values():
                service.drain()
            result = len(services)
        elif kind == _STATS:
            result = {iid: service.stats() for iid, service in services.items()}
        elif kind == _SNAPSHOT:
            registry_root, name = payload
            registry = ModelRegistry(registry_root)
            result = []
            for instance_id in sorted(services):
                service = services[instance_id]
                service.drain()
                with service.scheduler.paused():
                    registry.save_fleet_member(service.stage, name)
                result.append(instance_id)
        elif kind == _RESTORE:
            registry_root, name, instance_ids = payload
            registry = ModelRegistry(registry_root)
            for instance_id in instance_ids:
                if instance_id in services:
                    raise ValueError(f"instance {instance_id!r} already registered")
                stage = registry.load_fleet_member(
                    name, instance_id, global_model=init.global_model
                )
                services[instance_id] = PredictionService.from_stage(
                    stage, service_config=init.service_config
                )
            result = list(instance_ids)
        elif kind == _DETACH:
            # Migration source side.  Stragglers below the cut are
            # still flowing through this loop, so the drain must not
            # block it: a side thread waits out the prefix, pauses
            # the scheduler, saves the quiesced predictor, and
            # answers the op itself.
            instance_id, cut_seq, registry_root, state_name = payload
            service = services[instance_id]

            def _detach(
                op_id=op_id,
                service=service,
                cut_seq=cut_seq,
                registry_root=registry_root,
                state_name=state_name,
            ):
                try:
                    service.scheduler.drain_through(cut_seq)
                    with service.scheduler.paused():
                        ModelRegistry(registry_root).save_instance_state(
                            service.stage, state_name
                        )
                        counters = dict(service.scheduler.stats)
                    outbox.put(
                        (op_id, _OK, {"next_seq": cut_seq, "scheduler_stats": counters})
                    )
                except Exception as exc:
                    outbox.put((op_id, _ERR, exc))

            threading.Thread(
                target=_detach,
                name=f"gateway-shard-{shard_index}-detach-{instance_id}",
                daemon=True,
            ).start()
            return True
        elif kind == _RELEASE:
            (instance_id,) = payload
            service = services.pop(instance_id)
            service.close()
            result = instance_id
        elif kind == _ATTACH:
            registry_root, state_name, instance_id, next_seq, scheduler_stats = payload
            if instance_id in services:
                raise ValueError(f"instance {instance_id!r} already registered")
            stage = ModelRegistry(registry_root).load_instance_state(
                state_name, global_model=init.global_model
            )
            service = PredictionService.from_stage(
                stage, service_config=init.service_config
            )
            # resume exactly at the cut: the prefix ran on the source
            service.scheduler.advance_to_seq(next_seq)
            service.scheduler.stats.update(scheduler_stats)
            services[instance_id] = service
            result = instance_id
        elif kind == _SLEEP:
            (seconds,) = payload
            time.sleep(seconds)
            result = None
        elif kind == _SHUTDOWN:
            for service in services.values():
                service.close()
            outbox.put((op_id, _OK, None))
            return False
        else:
            raise ValueError(f"unknown gateway op kind {kind!r}")
    except Exception as exc:  # surface to the caller, keep the shard alive
        outbox.put((op_id, _ERR, exc))
    else:
        outbox.put((op_id, _OK, result))
    return True


# ---------------------------------------------------------------------------
# parent-side shard handle
# ---------------------------------------------------------------------------
class _Shard:
    """Parent-side state for one shard worker process."""

    __slots__ = (
        "index",
        "process",
        "request_q",
        "response_q",
        "listener",
        "outbox",
        "outbox_cond",
        "sending",
        "credits",
        "depth",
        "credits_cond",
        "pending",
        "pending_lock",
        "crashed",
        "shutdown_op_id",
        "shutdown_acked",
    )

    def __init__(self, index: int, process, request_q, response_q, credits: int):
        self.index = index
        self.process = process
        self.request_q = request_q
        self.response_q = response_q
        self.listener: Optional[threading.Thread] = None
        #: ops awaiting the next envelope (FIFO); flushed inline by the
        #: submitting thread unless a flush is already in flight
        self.outbox: List[tuple] = []
        self.outbox_cond = threading.Condition()
        #: True while some thread is shipping envelopes from the outbox
        self.sending = False
        #: submit capacity: one credit per op the shard has not yet
        #: dequeued; ``queue_size`` total, exactly the old queue bound
        self.credits = credits
        #: ops submitted and not yet acked (the live queue-depth stat)
        self.depth = 0
        self.credits_cond = threading.Condition()
        #: op id -> (future, instance id or None) awaiting a response
        self.pending: Dict[int, Tuple[Future, Optional[str]]] = {}
        self.pending_lock = threading.Lock()
        self.crashed = False
        self.shutdown_op_id: Optional[int] = None
        self.shutdown_acked = False


class _Migration:
    """In-flight migration state for one instance (parent side).

    Ops at-or-above ``cut_seq`` buffer here (with their caller-held
    futures) until the routing entry cuts over to the target shard.
    All mutation happens under the instance's submit lock.
    """

    __slots__ = ("instance_id", "source", "target", "cut_seq", "buffer")

    def __init__(self, instance_id: str, source: _Shard, target: _Shard, cut_seq: int):
        self.instance_id = instance_id
        self.source = source
        self.target = target
        self.cut_seq = cut_seq
        self.buffer: List[Tuple[str, object, int, Future]] = []


# ---------------------------------------------------------------------------
# the gateway
# ---------------------------------------------------------------------------
class FleetGateway:
    """Sharded multi-process serving tier over per-instance services.

    Parameters
    ----------
    config:
        Shard/queue knobs (:class:`~repro.core.config.GatewayConfig`);
        its ``service`` field carries the per-instance micro-batching
        knobs.  All capacity dials — never affect a prediction bit.
    stage_config / random_state:
        Forwarded to every instance's :class:`StagePredictor`.
    global_model:
        The fleet-shared model, shipped to each shard **once** at
        process start (the pool-initializer idiom), or ``None``.
    """

    def __init__(
        self,
        config: Optional[GatewayConfig] = None,
        stage_config: Optional[StageConfig] = None,
        global_model: Optional[GlobalModel] = None,
        random_state: int = 0,
    ):
        # GatewayConfig.__post_init__ validates the knobs, so any config
        # that reaches here is structurally sound
        self.config = config or GatewayConfig()
        self.stage_config = stage_config
        self.global_model = global_model
        self.random_state = random_state
        self._closed = False
        self._lifecycle_lock = threading.Lock()
        self._op_ids = itertools.count()
        self._op_id_lock = threading.Lock()
        #: the routing table: instance id -> shard index.  Seeded from
        #: :func:`shard_for` at registration, rewritten live by the
        #: control plane; every rewrite bumps ``_routes_version``.
        self._instances: Dict[str, int] = {}
        #: instance id -> next unclaimed per-instance sequence number
        self._instance_seq: Dict[str, int] = {}
        #: instance id -> submit lock serializing sequence claims, the
        #: enqueue (or migration-buffer append) they pair with, and
        #: routing-entry reads/writes for that instance
        self._instance_locks: Dict[str, threading.Lock] = {}
        #: instance id -> in-flight migration (cut-seq buffering state)
        self._migrations: Dict[str, _Migration] = {}
        self._routes_version = 0
        self._registry_lock = threading.Lock()
        #: serializes topology changes (resize, migrate, register,
        #: snapshot) against each other; never held by the data path
        self._resize_lock = threading.RLock()

        self._ctx = pool_context()
        self._shard_init = _ShardInit(
            stage_config=stage_config,
            service_config=self.config.service,
            random_state=random_state,
            global_model=global_model,
        )
        self._shards: List[_Shard] = []
        for index in range(self.config.n_shards):
            self._shards.append(self._build_shard(index))
        # start everything only after construction can no longer fail
        for shard in self._shards:
            self._start_shard(shard)

    def _build_shard(self, index: int) -> _Shard:
        # SimpleQueues: puts pickle and write in the calling thread (no
        # per-queue feeder thread on the hot path), and capacity is
        # enforced by the credit scheme (see _acquire_credit), not the
        # queue itself, so an envelope put can never block meaningfully
        request_q = self._ctx.SimpleQueue()
        response_q = self._ctx.SimpleQueue()
        process = self._ctx.Process(
            target=_shard_main,
            args=(index, request_q, response_q, self._shard_init),
            name=f"fleet-gateway-shard-{index}",
            daemon=True,
        )
        return _Shard(index, process, request_q, response_q, self.config.queue_size)

    def _start_shard(self, shard: _Shard) -> None:
        shard.process.start()
        shard.listener = threading.Thread(
            target=self._listen,
            args=(shard,),
            name=f"fleet-gateway-listener-{shard.index}",
            daemon=True,
        )
        shard.listener.start()

    # ------------------------------------------------------------------
    # per-shard request transport (parent side, inline flushing)
    # ------------------------------------------------------------------
    def _flush_outbox(self, shard: _Shard) -> None:
        """Ship outbox envelopes until it runs dry (single flusher).

        Only the thread that flipped ``shard.sending`` runs this loop.
        Everything other submitters appended while a ``request_q.put``
        was in flight ships as a single envelope on the next pass — one
        pickle and one shard wakeup per batch, with append order (and
        therefore per-shard op order) preserved.
        """
        while True:
            with shard.outbox_cond:
                if not shard.outbox:
                    shard.sending = False
                    shard.outbox_cond.notify_all()
                    return
                batch, shard.outbox = shard.outbox, []
            try:
                shard.request_q.put(batch)
            except (ValueError, OSError, AssertionError):
                # queue closed under us during teardown
                with shard.outbox_cond:
                    shard.sending = False
                    shard.outbox_cond.notify_all()
                return

    # ------------------------------------------------------------------
    # response listeners (one thread per shard)
    # ------------------------------------------------------------------
    def _listen(self, shard: _Shard) -> None:
        """Dispatch response envelopes until shutdown-ack or crash.

        Blocks on a dual fd wait — the response pipe *and* the worker's
        process sentinel — so an idle fleet costs zero wakeups (the old
        loop polled ``get(timeout=0.2)``, spinning 5x/s per shard) and a
        dead worker is still noticed immediately.  Pure fd waits only:
        no parent-side ``put`` is involved in the wakeup, so a worker
        killed while holding the queue's shared write lock can never
        wedge this thread.
        """
        reader = shard.response_q._reader
        process_sentinel = shard.process.sentinel
        while True:
            try:
                ready = mp_connection.wait([reader, process_sentinel])
            except OSError:
                self._mark_crashed(shard)
                return
            if reader in ready:
                try:
                    if not reader.poll():
                        continue
                    envelope = shard.response_q.get()
                except (EOFError, OSError, ValueError):
                    # ValueError: close() closed the queue under a
                    # deadline too tight for this listener to exit first
                    self._mark_crashed(shard)
                    return
                self._dispatch_envelope(shard, envelope)
                if shard.shutdown_acked:
                    return
                continue
            # the process died; late responses may still sit in the pipe
            self._drain_responses_nowait(shard)
            if not shard.shutdown_acked:
                self._mark_crashed(shard)
            return

    def _dispatch_envelope(self, shard: _Shard, envelope) -> None:
        credits, responses = envelope
        if credits:
            self._release_credits(shard, credits)
        for op_id, status, value in responses:
            self._dispatch_response(shard, op_id, status, value)

    def _drain_responses_nowait(self, shard: _Shard) -> None:
        while True:
            try:
                if not shard.response_q._reader.poll():
                    return
                envelope = shard.response_q.get()
            except (EOFError, OSError, ValueError):
                return
            self._dispatch_envelope(shard, envelope)

    def _dispatch_response(self, shard: _Shard, op_id: int, status: str, value) -> None:
        with shard.pending_lock:
            entry = shard.pending.pop(op_id, None)
        if op_id == shard.shutdown_op_id:
            shard.shutdown_acked = True
        if entry is None:
            return
        future, _ = entry
        if status == _OK:
            future.set_result(value)
        else:
            future.set_exception(value)

    def _mark_crashed(self, shard: _Shard) -> None:
        """Fail everything in flight on a dead shard; contain the blast."""
        shard.crashed = True
        with shard.credits_cond:
            # wake submitters blocked on credits: none are coming back
            shard.credits_cond.notify_all()
        with shard.pending_lock:
            pending, shard.pending = shard.pending, {}
        for future, instance_id in pending.values():
            if not future.done():
                future.set_exception(ShardCrashedError(shard.index, instance_id))

    def _release_credits(self, shard: _Shard, credits: int) -> None:
        with shard.credits_cond:
            shard.credits += credits
            shard.depth -= credits
            shard.credits_cond.notify_all()

    # ------------------------------------------------------------------
    # submission plumbing
    # ------------------------------------------------------------------
    def _next_op_id(self) -> int:
        with self._op_id_lock:
            return next(self._op_ids)

    def _register_pending(
        self, shard: _Shard, instance_id: Optional[str], future: Optional[Future] = None
    ) -> Tuple[int, Future]:
        op_id = self._next_op_id()
        if future is None:
            future = Future()
        with shard.pending_lock:
            shard.pending[op_id] = (future, instance_id)
        return op_id, future

    def _pop_pending(self, shard: _Shard, op_id: int):
        with shard.pending_lock:
            return shard.pending.pop(op_id, None)

    def _check_open(self, shard: _Shard, instance_id: Optional[str]) -> None:
        if self._closed:
            raise RuntimeError("gateway is closed")
        if shard.crashed:
            raise ShardCrashedError(shard.index, instance_id)

    def _acquire_credit(
        self, shard: _Shard, timeout: float, op_id: int, instance_id: Optional[str]
    ) -> None:
        """Take one submit credit, or shed the op after ``timeout``.

        Credits mirror the old bounded request queue exactly: the shard
        returns each op's credit when its loop dequeues that op, so
        "submitted but not yet picked up" is capped at ``queue_size``
        and a saturated shard raises the same
        :class:`GatewayBackpressureError` a full queue used to.  A
        crashed shard never returns credits; its waiters are woken by
        :meth:`_mark_crashed` and fall through (the op fails via the
        pending sweep / :meth:`_crash_race_check` instead).
        """
        deadline = time.monotonic() + timeout
        with shard.credits_cond:
            while shard.credits <= 0 and not shard.crashed:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    self._pop_pending(shard, op_id)
                    raise GatewayBackpressureError(
                        shard.index,
                        timeout,
                        instance_id=instance_id,
                        retry_after_s=self.config.retry_after_s,
                    )
                shard.credits_cond.wait(remaining)
            if shard.crashed:
                return
            shard.credits -= 1
            shard.depth += 1

    def _outbox_append(self, shard: _Shard, message: tuple) -> None:
        with shard.outbox_cond:
            shard.outbox.append(message)
            if shard.sending:
                return  # the in-flight flusher ships it with the next envelope
            shard.sending = True
        self._flush_outbox(shard)

    def _enqueue(
        self, shard: _Shard, op_id: int, message: tuple, instance_id: Optional[str] = None
    ) -> None:
        self._acquire_credit(shard, self.config.enqueue_timeout_s, op_id, instance_id)
        self._outbox_append(shard, message)

    def _crash_race_check(self, shard: _Shard, op_id: int, instance_id: Optional[str]) -> None:
        """Close the enqueue-vs-failure-sweep race, identically for
        control and instance ops.

        If the shard died between the enqueue and here, the listener's
        sweep may have already failed our pending future — or may not
        have seen it yet.  Whoever pops the pending entry owns the
        failure: if we win, raise directly (the message is stranded in
        the dead shard's request queue either way); if the sweep won,
        the future already carries :class:`ShardCrashedError`.
        """
        if shard.crashed:
            if self._pop_pending(shard, op_id) is not None:
                raise ShardCrashedError(shard.index, instance_id)

    def _submit_control(self, shard: _Shard, kind: str, payload: tuple = ()) -> Future:
        self._check_open(shard, None)
        op_id, future = self._register_pending(shard, None)
        self._enqueue(shard, op_id, (op_id, kind, payload))
        self._crash_race_check(shard, op_id, None)
        return future

    def _instance_lock(self, instance_id: str) -> threading.Lock:
        try:
            return self._instance_locks[instance_id]
        except KeyError:
            raise KeyError(
                f"instance {instance_id!r} is not registered with this gateway"
            ) from None

    def _submit_instance_op(
        self, kind: str, instance_id: str, record, seq: Optional[int]
    ) -> Future:
        lock = self._instance_lock(instance_id)
        with lock:
            # Sequence claim, routing-entry read, migration check and
            # enqueue (or buffer append) all happen under the instance's
            # submit lock: a backpressure failure can roll the counter
            # back without leaving a gap, a migration's cut sequence
            # linearizes against every claim, and a cutover can never
            # interleave with a half-routed op.
            migration = self._migrations.get(instance_id)
            shard = self._shards[self._instances[instance_id]]
            self._check_open(shard, instance_id)
            if seq is None:
                claimed = True
                seq = self._instance_seq[instance_id]
                self._instance_seq[instance_id] = seq + 1
            else:
                claimed = False  # replay mode: range reserved upfront
            if migration is not None and seq >= migration.cut_seq:
                # hold the op at the gateway until the cutover; the
                # target's reorder buffer makes flush order irrelevant
                future: Future = Future()
                migration.buffer.append((kind, record, seq, future))
                return future
            op_id, future = self._register_pending(shard, instance_id)
            try:
                self._enqueue(
                    shard, op_id, (op_id, kind, (instance_id, record, seq)), instance_id
                )
            except GatewayBackpressureError:
                if claimed:
                    self._instance_seq[instance_id] = seq
                raise
        self._crash_race_check(shard, op_id, instance_id)
        return future

    def _shard_of(self, instance_id: str) -> _Shard:
        try:
            index = self._instances[instance_id]
        except KeyError:
            raise KeyError(
                f"instance {instance_id!r} is not registered with this gateway"
            ) from None
        return self._shards[index]

    def _live_shards(self) -> List[_Shard]:
        return [shard for shard in self._shards if not shard.crashed]

    def reserve_sequence(self, instance_id: str, count: int) -> int:
        """Claim ``count`` consecutive sequence slots for ``instance_id``.

        Returns the first reserved number.  Replay-style submitters
        (:meth:`replay_components`, the wire protocol's RESERVE op)
        reserve their whole range up front and then submit with explicit
        ``seq`` values, so any client/connection interleaving reproduces
        the same op stream.  Every reserved slot must eventually be
        submitted: the shard scheduler executes in sequence order and
        waits behind gaps.
        """
        if count < 0:
            raise ValueError("count must be >= 0")
        lock = self._instance_lock(instance_id)
        with lock:
            base = self._instance_seq[instance_id]
            self._instance_seq[instance_id] = base + count
        return base

    # ------------------------------------------------------------------
    # fleet management
    # ------------------------------------------------------------------
    @property
    def n_shards(self) -> int:
        return self.config.n_shards

    @property
    def instance_ids(self) -> Tuple[str, ...]:
        with self._registry_lock:
            return tuple(sorted(self._instances))

    def register_instance(
        self, instance: InstanceProfile, timeout: Optional[float] = None
    ) -> int:
        """Create ``instance``'s service on its shard; returns the shard
        index.  Every instance must be registered before its first op.

        The routing entry is seeded from :func:`shard_for` under the
        *current* shard count, so an untouched fleet's table is
        byte-identical to the static map.
        """
        instance_id = instance.instance_id
        if self._closed:
            raise RuntimeError("gateway is closed")
        with self._resize_lock:
            with self._registry_lock:
                if instance_id in self._instances:
                    raise ValueError(f"instance {instance_id!r} already registered")
            shard = self._shards[shard_for(instance_id, self.n_shards)]
            future = self._submit_control(shard, _REGISTER, (instance,))
            future.result(timeout if timeout is not None else self.config.drain_timeout_s)
            with self._registry_lock:
                self._instances[instance_id] = shard.index
                self._instance_seq.setdefault(instance_id, 0)
                self._instance_locks.setdefault(instance_id, threading.Lock())
            return shard.index

    def routes(self) -> dict:
        """The live routing table: version, shard count, assignments.

        ``assignments`` maps every registered instance id to its current
        shard index, sorted by id.  An untouched fleet reports version 0
        with assignments byte-identical to ``shard_for``; every
        migration or resize bumps the version.
        """
        with self._registry_lock:
            return {
                "version": self._routes_version,
                "n_shards": self.n_shards,
                "assignments": dict(sorted(self._instances.items())),
            }

    # ------------------------------------------------------------------
    # the online protocol
    # ------------------------------------------------------------------
    def predict_async(self, instance_id: str, record, seq: Optional[int] = None) -> Future:
        """Submit one prediction for ``instance_id``; resolves to its
        :class:`~repro.core.stage.RoutedComponents`."""
        return self._submit_instance_op(PREDICT, instance_id, record, seq)

    def predict(
        self,
        instance_id: str,
        record,
        seq: Optional[int] = None,
        timeout: Optional[float] = None,
    ):
        """Blocking :meth:`predict_async`; returns the routed prediction."""
        if timeout is None:
            timeout = self.config.drain_timeout_s
        return self.predict_async(instance_id, record, seq=seq).result(timeout).prediction

    def observe(self, instance_id: str, record, seq: Optional[int] = None) -> Future:
        """Feed back one executed query to its instance's service."""
        return self._submit_instance_op(OBSERVE, instance_id, record, seq)

    #: protocol-name alias (:class:`~repro.service.PredictorClient`)
    observe_async = observe

    # ------------------------------------------------------------------
    # control plane: live migration and resharding
    # ------------------------------------------------------------------
    def migrate_instance(
        self, instance_id: str, target_shard: int, timeout: Optional[float] = None
    ) -> dict:
        """Move one live instance to ``target_shard`` under traffic.

        The cut-sequence protocol: the instance's next unclaimed
        sequence number becomes the *cut*.  Ops below it (all already
        claimed, hence already enqueued) keep flowing to the source
        shard, whose scheduler drains through the cut and then snapshots
        the quiesced predictor as a
        :meth:`~repro.service.ModelRegistry.save_instance_state`
        artifact; ops at-or-above it buffer at the gateway.  The target
        shard restores the state with its execution cursor advanced to
        the cut, the routing entry flips atomically (bumping the table
        version), and the buffer flushes.  No sequence gap ever opens,
        so the move is invisible in results — only placement changes.

        Returns a summary dict (source/target shard, cut sequence,
        routing version, buffered op count).  Raises
        :class:`ShardCrashedError` if either end is dead, and
        ``RuntimeError`` on a concurrent migration of the same instance.
        """
        if timeout is None:
            timeout = self.config.drain_timeout_s
        with self._resize_lock:
            if self._closed:
                raise RuntimeError("gateway is closed")
            return self._migrate_locked(instance_id, target_shard, timeout)

    def _migrate_locked(self, instance_id: str, target_index: int, timeout: float) -> dict:
        if not 0 <= target_index < len(self._shards):
            raise ValueError(
                f"target shard {target_index} out of range "
                f"(fleet has {len(self._shards)} shards)"
            )
        lock = self._instance_lock(instance_id)
        target = self._shards[target_index]
        with lock:
            if self._closed:
                raise RuntimeError("gateway is closed")
            if instance_id in self._migrations:
                raise RuntimeError(f"instance {instance_id!r} is already migrating")
            source = self._shards[self._instances[instance_id]]
            if source.index == target_index:
                with self._registry_lock:
                    version = self._routes_version
                return {
                    "instance_id": instance_id,
                    "source": source.index,
                    "target": target_index,
                    "cut_seq": self._instance_seq[instance_id],
                    "routes_version": version,
                    "buffered_ops": 0,
                }
            if source.crashed:
                raise ShardCrashedError(source.index, instance_id)
            if target.crashed:
                raise ShardCrashedError(target.index, instance_id)
            # every sequence below the cut is already claimed *and*
            # enqueued (claims pair with their enqueue under this lock),
            # so the source can always drain through the cut
            cut_seq = self._instance_seq[instance_id]
            migration = _Migration(instance_id, source, target, cut_seq)
            self._migrations[instance_id] = migration
        scratch = tempfile.mkdtemp(prefix="repro-gateway-migrate-")
        try:
            handoff = self._submit_control(
                source, _DETACH, (instance_id, cut_seq, scratch, instance_id)
            ).result(timeout)
            self._submit_control(source, _RELEASE, (instance_id,)).result(timeout)
            self._submit_control(
                target,
                _ATTACH,
                (
                    scratch,
                    instance_id,
                    instance_id,
                    handoff["next_seq"],
                    handoff["scheduler_stats"],
                ),
            ).result(timeout)
        except BaseException:
            self._abort_migration(migration)
            raise
        finally:
            shutil.rmtree(scratch, ignore_errors=True)
        with lock:
            with self._registry_lock:
                self._instances[instance_id] = target_index
                self._routes_version += 1
                version = self._routes_version
            buffered, migration.buffer = migration.buffer, []
            del self._migrations[instance_id]
        self._flush_buffered(target, instance_id, buffered)
        return {
            "instance_id": instance_id,
            "source": source.index,
            "target": target_index,
            "cut_seq": cut_seq,
            "routes_version": version,
            "buffered_ops": len(buffered),
        }

    def _abort_migration(self, migration: _Migration) -> None:
        """Fail everything the doomed migration buffered (the routing
        entry stays on the source; dropped sequences leave a gap there,
        the same terminal state a failed replay reaches)."""
        lock = self._instance_locks.get(migration.instance_id)
        if lock is None:
            buffered, migration.buffer = migration.buffer, []
            self._migrations.pop(migration.instance_id, None)
        else:
            with lock:
                buffered, migration.buffer = migration.buffer, []
                self._migrations.pop(migration.instance_id, None)
        for _kind, _record, seq, future in buffered:
            if not future.done():
                future.set_exception(
                    RuntimeError(
                        f"migration of instance {migration.instance_id!r} failed; "
                        f"buffered op (seq {seq}) was dropped and its sequence "
                        "stream now has a gap — close the gateway"
                    )
                )

    def _flush_buffered(
        self, target: _Shard, instance_id: str, buffered: List[Tuple[str, object, int, Future]]
    ) -> None:
        """Enqueue the cutover buffer on the target, reusing the futures
        callers already hold.  Order is irrelevant (the scheduler's
        reorder buffer sorts by sequence), but a backpressure loss here
        would open a gap, so one failure fails the rest explicitly."""
        failed: Optional[BaseException] = None
        for kind, record, seq, future in buffered:
            if failed is None and not target.crashed:
                op_id, _ = self._register_pending(target, instance_id, future=future)
                try:
                    self._enqueue(
                        target, op_id, (op_id, kind, (instance_id, record, seq)), instance_id
                    )
                except GatewayBackpressureError as exc:
                    failed = exc
                else:
                    if target.crashed:
                        # crash race: whoever pops the pending entry
                        # owns the failure (mirrors _crash_race_check)
                        if self._pop_pending(target, op_id) is not None:
                            failed = ShardCrashedError(target.index, instance_id)
                        else:
                            continue
                    else:
                        continue
            if not future.done():
                future.set_exception(
                    RuntimeError(
                        f"migration cutover of instance {instance_id!r} could not "
                        f"flush buffered op (seq {seq}); its sequence stream now "
                        "has a gap — close the gateway"
                    )
                )

    def resize(self, n_shards: int, timeout: Optional[float] = None) -> dict:
        """Grow or shrink the shard set to ``n_shards``, live.

        Growth spawns the new worker processes first; every instance
        whose canonical placement (``shard_for`` under the new count)
        differs from its current shard is then migrated — so a resized
        fleet's routing table is byte-identical to a fleet *built* at
        ``n_shards`` — and a shrink finally retires the (now empty)
        trailing shards.  In-flight ops are never dropped: each move is
        a cut-sequence migration.

        Returns a summary dict; the fleet keeps serving throughout.
        """
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        if timeout is None:
            timeout = self.config.drain_timeout_s
        with self._resize_lock:
            if self._closed:
                raise RuntimeError("gateway is closed")
            previous = len(self._shards)
            if n_shards == previous:
                with self._registry_lock:
                    version = self._routes_version
                return {
                    "n_shards": n_shards,
                    "previous": previous,
                    "migrated": [],
                    "routes_version": version,
                }
            for index in range(previous, n_shards):
                shard = self._build_shard(index)
                self._start_shard(shard)
                self._shards.append(shard)
            try:
                with self._registry_lock:
                    assignments = dict(self._instances)
                moves = sorted(
                    (instance_id, shard_for(instance_id, n_shards))
                    for instance_id, current in assignments.items()
                    if shard_for(instance_id, n_shards) != current
                )
                migrated = []
                for instance_id, target_index in moves:
                    self._migrate_locked(instance_id, target_index, timeout)
                    migrated.append(instance_id)
            except BaseException:
                # keep config honest about however many shards now exist
                self.config = replace(self.config, n_shards=len(self._shards))
                raise
            for shard in self._shards[n_shards:]:
                self._retire_shard(shard, timeout)
            del self._shards[n_shards:]
            self.config = replace(self.config, n_shards=n_shards)
            with self._registry_lock:
                self._routes_version += 1
                version = self._routes_version
            return {
                "n_shards": n_shards,
                "previous": previous,
                "migrated": migrated,
                "routes_version": version,
            }

    def _request_shutdown(self, shard: _Shard, deadline: float) -> None:
        """Best-effort clean-shutdown op, bounded by the shared deadline.

        A wedged shard (no credits coming back) fails the acquire within
        the budget and falls through to the hard terminate in the reap
        phase — exactly the old full-queue behavior.
        """
        op_id, _ = self._register_pending(shard, None)
        shard.shutdown_op_id = op_id
        budget = min(
            self.config.shutdown_enqueue_timeout_s,
            max(deadline - time.monotonic(), 0.0),
        )
        try:
            self._acquire_credit(shard, budget, op_id, None)
        except GatewayBackpressureError:
            return  # pending entry already popped; terminate below
        self._outbox_append(shard, (op_id, _SHUTDOWN, ()))

    def _reap_shard(self, shard: _Shard, deadline: float) -> None:
        """Join / terminate one shard and release its transport."""
        shard.process.join(max(deadline - time.monotonic(), 0.0))
        if shard.process.is_alive():
            shard.process.terminate()
            shard.process.join(5.0)
        # let any in-flight inline outbox flush finish before closing
        # the request queue under it
        with shard.outbox_cond:
            shard.outbox_cond.wait_for(lambda: not shard.sending, timeout=1.0)
        # the listener's dual wait saw the process sentinel fire when
        # the join/terminate above completed, so it is already exiting
        if shard.listener is not None:
            shard.listener.join(max(deadline - time.monotonic(), 1.0))
        self._mark_crashed(shard)  # fail anything still pending
        for q in (shard.request_q, shard.response_q):
            q.close()

    def _retire_shard(self, shard: _Shard, timeout: float) -> None:
        """Shut one (instance-free) shard down and reap its resources."""
        deadline = time.monotonic() + timeout
        if not shard.crashed:
            self._request_shutdown(shard, deadline)
        self._reap_shard(shard, deadline)

    # ------------------------------------------------------------------
    # replay hook (harness / scenario engine)
    # ------------------------------------------------------------------
    def replay_components(self, trace, n_clients: int = 1, timeout: Optional[float] = None):
        """Replay one instance's fused predict/observe stream, concurrently.

        The gateway analogue of
        :meth:`PredictionService.replay_components`, routed through the
        one :func:`~repro.service.replay_trace_via_client` driver:
        ``n_clients`` threads submit with explicit per-instance sequence
        numbers reserved up front, so any client interleaving — and any
        shard count — reproduces the direct replay bit-for-bit.  Returns
        the per-query components in trace order.
        """
        from .client import replay_trace_via_client, shared_client

        if timeout is None:
            timeout = self.config.drain_timeout_s
        if self._closed:
            raise RuntimeError("gateway is closed")
        return replay_trace_via_client(
            shared_client(self), trace, n_clients=n_clients, timeout=timeout
        )

    # ------------------------------------------------------------------
    # fleet-wide barriers and accounting
    # ------------------------------------------------------------------
    def drain(self, timeout: Optional[float] = None) -> None:
        """Block until every live shard has applied its queued ops."""
        if self._closed:
            raise RuntimeError("gateway is closed")
        if timeout is None:
            timeout = self.config.drain_timeout_s
        futures = [self._submit_control(shard, _DRAIN) for shard in self._live_shards()]
        for future in futures:
            future.result(timeout)

    def stats(self) -> dict:
        """Aggregated fleet metrics plus per-shard and per-instance views.

        Per-instance ``stage`` sub-dicts match the replay harness's
        ``stage_stats`` key-for-key (the parity suites compare them
        directly); the ``fleet`` roll-up sums them across shards.
        """
        shard_futures = [
            (shard, self._submit_control(shard, _STATS)) for shard in self._live_shards()
        ]
        instances: Dict[str, dict] = {}
        shards = []
        for shard, future in shard_futures:
            per_instance = future.result(self.config.drain_timeout_s)
            instances.update(per_instance)
            shards.append(
                {
                    "shard": shard.index,
                    "alive": shard.process.is_alive(),
                    "n_instances": len(per_instance),
                    # live pressure: ops sitting in the bounded request
                    # queue right now (the rebalancer's primary signal)
                    "queue_depth": self._queue_depth(shard),
                    # cumulative per-shard load, summed from the owned
                    # instances' scheduler counters
                    "n_predicts": sum(
                        s["scheduler"]["n_predicts"] for s in per_instance.values()
                    ),
                    "n_observes": sum(
                        s["scheduler"]["n_observes"] for s in per_instance.values()
                    ),
                }
            )
        for shard in self._shards:
            if shard.crashed:
                shards.append(
                    {
                        "shard": shard.index,
                        "alive": False,
                        "n_instances": 0,
                        "queue_depth": 0,
                        "n_predicts": 0,
                        "n_observes": 0,
                    }
                )
        shards.sort(key=lambda row: row["shard"])
        fleet = {
            "n_predicts": 0,
            "n_observes": 0,
            "n_immediate": 0,
            "n_deferred": 0,
            "n_batches": 0,
            "cache_hits": 0,
            "cache_misses": 0,
            "n_local_retrains": 0,
            "byte_size": 0,
        }
        width_bins = new_width_bins()
        for stats in instances.values():
            scheduler, stage = stats["scheduler"], stats["stage"]
            for key in ("n_predicts", "n_observes", "n_immediate", "n_deferred", "n_batches"):
                fleet[key] += scheduler[key]
            fleet["cache_hits"] += stage["cache_hits"]
            fleet["cache_misses"] += stage["cache_misses"]
            fleet["n_local_retrains"] += stage["n_local_retrains"]
            fleet["byte_size"] += stage["byte_size"]
            # integer histograms merge exactly (elementwise addition),
            # so the fleet percentiles are independent of shard count
            # and of the order instances report in
            width_bins = merge_width_bins(width_bins, stage["interval_width_bins"])
        lookups = fleet["cache_hits"] + fleet["cache_misses"]
        fleet["cache_hit_rate"] = fleet["cache_hits"] / lookups if lookups else 0.0
        fleet["interval_width_bins"] = tuple(width_bins)
        fleet["interval_width_p50"] = width_percentile_from_bins(width_bins, 0.5)
        fleet["interval_width_p90"] = width_percentile_from_bins(width_bins, 0.9)
        return {
            "n_shards": self.n_shards,
            "n_instances": len(instances),
            "fleet": fleet,
            "shards": shards,
            "instances": instances,
            "routes": self.routes(),
        }

    @staticmethod
    def _queue_depth(shard: _Shard) -> int:
        """Live depth of one shard's submit window: ops submitted but
        not yet dequeued by the worker loop.  A parent-side counter
        (credits taken minus acks received), so it works on every
        platform — no ``sem_getvalue`` dependency."""
        with shard.credits_cond:
            return int(shard.depth)

    # ------------------------------------------------------------------
    # persistence (whole-fleet warm restart)
    # ------------------------------------------------------------------
    def snapshot(self, registry: ModelRegistry, name: str) -> str:
        """Drain, then persist the whole fleet under ``name``.

        Each shard saves the member states it owns; the parent writes
        the fleet-shared global model once and the single manifest
        spanning all shards.  A crashed shard makes the snapshot fail
        explicitly (its members' states cannot be captured), and so does
        an in-flight migration (its instance's state is mid-handoff).
        """
        with self._resize_lock:
            migrating = sorted(self._migrations)
            if migrating:
                raise RuntimeError(
                    f"cannot snapshot fleet {name!r}: instances {migrating} "
                    "are migrating (their state is mid-handoff)"
                )
            stranded = sorted(
                instance_id
                for instance_id, index in self._instances.items()
                if self._shards[index].crashed
            )
            if stranded:
                # fail before any member write: a partial save under an
                # existing name would mix snapshot epochs on disk
                raise RuntimeError(
                    f"cannot snapshot fleet {name!r}: instances {stranded} "
                    "live on crashed shards (their state is unrecoverable)"
                )
            self.drain()
            futures = [
                self._submit_control(shard, _SNAPSHOT, (registry.root, name))
                for shard in self._live_shards()
            ]
            saved: List[str] = []
            for future in futures:
                saved.extend(future.result(self.config.drain_timeout_s))
            missing = sorted(set(self._instances) - set(saved))
            if missing:
                # the manifest is what makes a snapshot restorable — never
                # write it over stale member state from an earlier snapshot
                raise RuntimeError(f"fleet snapshot {name!r} missed instances {missing}")
            registry.save_fleet_manifest(
                name, sorted(self._instances), self.n_shards, global_model=self.global_model
            )
            return registry.fleet_snapshot_path(name)

    @classmethod
    def restore(
        cls,
        registry: ModelRegistry,
        name: str,
        config: Optional[GatewayConfig] = None,
        stage_config: Optional[StageConfig] = None,
        random_state: int = 0,
    ) -> "FleetGateway":
        """Rebuild a fleet from a snapshot — under any shard count.

        The manifest's recorded shard count is provenance only; the new
        gateway re-routes every instance with :func:`shard_for` under its
        own ``config.n_shards`` and each shard loads the member states it
        now owns.  Warm restart is bit-for-bit, retrains included.
        """
        manifest = registry.load_fleet_manifest(name)
        global_model = registry.load_fleet_global(name) if manifest["has_global_model"] else None
        gateway = cls(
            config,
            stage_config=stage_config,
            global_model=global_model,
            random_state=random_state,
        )
        try:
            by_shard: Dict[int, List[str]] = {}
            for instance_id in manifest["instances"]:
                by_shard.setdefault(shard_for(instance_id, gateway.n_shards), []).append(
                    instance_id
                )
            futures = [
                (
                    index,
                    ids,
                    gateway._submit_control(
                        gateway._shards[index], _RESTORE, (registry.root, name, ids)
                    ),
                )
                for index, ids in sorted(by_shard.items())
            ]
            for index, ids, future in futures:
                future.result(gateway.config.drain_timeout_s)
                with gateway._registry_lock:
                    for instance_id in ids:
                        gateway._instances[instance_id] = index
                        gateway._instance_seq[instance_id] = 0
                        gateway._instance_locks[instance_id] = threading.Lock()
        except BaseException:
            gateway.close()
            raise
        return gateway

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    def close(self, timeout: Optional[float] = None) -> None:
        """Shut the fleet down: drain live shards, join every process.

        Safe after crashes (dead shards are terminated and their pending
        futures have already failed) and idempotent.
        """
        with self._lifecycle_lock:
            if self._closed:
                return
            self._closed = True
        if timeout is None:
            timeout = self.config.drain_timeout_s
        # one shared monotonic deadline governs both loops below: the
        # shutdown broadcast and the join sweep draw on the same budget,
        # so close(timeout=T) stays bounded by ~T even on a wedged
        # many-shard fleet (past the deadline every wait degrades to a
        # non-blocking poll and the hard terminate takes over)
        deadline = time.monotonic() + timeout
        for shard in self._shards:
            if not shard.crashed:
                self._request_shutdown(shard, deadline)
        for shard in self._shards:
            self._reap_shard(shard, deadline)
        # a migration interrupted by close: fail its buffered futures
        # (the control ops it was waiting on failed above, so its abort
        # path usually beat us here — this is the belt to that brace)
        for migration in list(self._migrations.values()):
            self._abort_migration(migration)

    def __enter__(self) -> "FleetGateway":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    # fault-injection instrumentation (tests only)
    # ------------------------------------------------------------------
    def _stall(self, shard_index: int, seconds: float) -> Future:
        """Hold one shard's loop busy for ``seconds`` — the hook the
        fault/backpressure suites use to fill queues deterministically."""
        return self._submit_control(self._shards[shard_index], _SLEEP, (float(seconds),))
