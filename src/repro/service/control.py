"""Fleet control plane: load-watching rebalancer over the gateway.

The paper's deployment is a fleet-wide predictor whose capacity tracks
the workload; this module is the control loop that makes the
reproduction's fleet elastic.  It reads one
:meth:`~repro.service.FleetGateway.stats` snapshot — per-shard live
queue depth (current pressure) plus cumulative per-instance op totals
(history) — plans instance migrations that even out shard load
(:func:`plan_rebalance`), and executes them through the gateway's
cut-sequence migration protocol (:class:`FleetController`).

Determinism: planning is a pure function of the stats snapshot and the
:class:`~repro.core.config.ControlConfig` (ties broken by sorted ids,
never dict order), and executing a plan only moves *where* instances'
sequenced op streams run — the reshard-parity suite holds replays with
live migrations and resizes to bit-identical results.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.config import ControlConfig

__all__ = [
    "FleetController",
    "PlannedMigration",
    "RebalancePlan",
    "instance_loads",
    "plan_rebalance",
    "shard_loads",
]


@dataclass(frozen=True)
class PlannedMigration:
    """One planned move: ``instance_id`` from ``source`` to ``target``,
    carrying ``load`` op-units of estimated instance load."""

    instance_id: str
    source: int
    target: int
    load: float


@dataclass(frozen=True)
class RebalancePlan:
    """A control cycle's output: the moves, and the loads they saw."""

    migrations: Tuple[PlannedMigration, ...]
    shard_loads: Dict[int, float]
    total_ops: int

    @property
    def empty(self) -> bool:
        return not self.migrations


def instance_loads(stats: dict, config: Optional[ControlConfig] = None) -> Dict[str, float]:
    """Per-instance load from a stats snapshot.

    ``load_source="trailing"`` (the default) reads cumulative op totals
    — history.  ``load_source="forecast"`` reads each instance's
    ``forecast_load`` stage stat (expected near-term arrivals from its
    workload forecaster), so the planner balances on where load is
    *going*; when no instance reports a positive forecast (forecasting
    off, or every forecaster still cold) it falls back to trailing
    totals rather than planning on an all-zero signal.
    """
    config = config or ControlConfig()
    if config.load_source == "forecast":
        loads = {
            instance_id: float(entry.get("stage", {}).get("forecast_load", 0.0))
            for instance_id, entry in stats["instances"].items()
        }
        if any(load > 0.0 for load in loads.values()):
            return loads
    return {
        instance_id: float(
            entry["scheduler"]["n_predicts"] + entry["scheduler"]["n_observes"]
        )
        for instance_id, entry in stats["instances"].items()
    }


def shard_loads(stats: dict, config: Optional[ControlConfig] = None) -> Dict[int, float]:
    """Estimated load per *live* shard: queued ops (weighted — queued
    work is current pressure) plus the cumulative op totals of the
    instances the routing table assigns to the shard."""
    config = config or ControlConfig()
    loads: Dict[int, float] = {
        row["shard"]: config.queue_depth_weight * float(row.get("queue_depth", 0))
        for row in stats["shards"]
        if row["alive"]
    }
    per_instance = instance_loads(stats, config)
    for instance_id, shard_index in stats["routes"]["assignments"].items():
        if shard_index in loads:
            loads[shard_index] += per_instance.get(instance_id, 0.0)
    return loads


def plan_rebalance(stats: dict, config: Optional[ControlConfig] = None) -> RebalancePlan:
    """Plan up to ``max_migrations_per_cycle`` moves toward balance.

    Deterministic greedy: repeatedly take the hottest and coldest live
    shard (ties broken by shard index); if their gap exceeds
    ``imbalance_tolerance`` of the mean shard load, move the largest
    instance on the hot shard that fits in half the gap (so the move
    cannot invert the imbalance), falling back to the smallest one that
    at least shrinks it.  Pure function of ``(stats, config)``.
    """
    config = config or ControlConfig()
    loads = shard_loads(stats, config)
    per_instance = instance_loads(stats, config)
    total_ops = int(sum(per_instance.values()))
    migrations: List[PlannedMigration] = []
    if len(loads) < 2 or total_ops < config.min_total_ops:
        return RebalancePlan(tuple(migrations), loads, total_ops)
    # instance -> shard, restricted to live shards, mutated as we plan
    placement = {
        instance_id: shard_index
        for instance_id, shard_index in stats["routes"]["assignments"].items()
        if shard_index in loads
    }
    working = dict(loads)
    mean_load = sum(working.values()) / len(working)
    for _ in range(config.max_migrations_per_cycle):
        hottest = max(sorted(working), key=lambda s: working[s])
        coldest = min(sorted(working), key=lambda s: working[s])
        gap = working[hottest] - working[coldest]
        if gap <= config.imbalance_tolerance * max(mean_load, 1.0):
            break
        candidates = sorted(
            (instance_id, per_instance.get(instance_id, 0.0))
            for instance_id, shard_index in placement.items()
            if shard_index == hottest
        )
        if not candidates:
            break
        # largest instance that fits in half the gap keeps the move from
        # inverting the imbalance; else the smallest strict improvement
        fitting = [c for c in candidates if 0 < c[1] <= gap / 2]
        if fitting:
            instance_id, load = max(fitting, key=lambda c: (c[1], c[0]))
        else:
            improving = [c for c in candidates if 0 < c[1] < gap]
            if not improving:
                break
            instance_id, load = min(improving, key=lambda c: (c[1], c[0]))
        migrations.append(PlannedMigration(instance_id, hottest, coldest, load))
        placement[instance_id] = coldest
        working[hottest] -= load
        working[coldest] += load
    return RebalancePlan(tuple(migrations), loads, total_ops)


class FleetController:
    """Executes rebalance plans against a live gateway.

    Use :meth:`step` for one synchronous control cycle (plan, then
    migrate), or :meth:`start`/:meth:`stop` (or the context manager) for
    the background watcher that cycles every
    ``config.cycle_interval_s``.  All planning is delegated to
    :func:`plan_rebalance`; every executed move lands in
    :attr:`history`.
    """

    def __init__(self, gateway, config: Optional[ControlConfig] = None):
        self.gateway = gateway
        self.config = config or ControlConfig()
        #: executed migration summaries (the dicts ``migrate_instance``
        #: returns), in execution order
        self.history: List[dict] = []
        self._stop = threading.Event()
        self._watcher: Optional[threading.Thread] = None
        self._lock = threading.Lock()
        self._n_cycles = 0
        self._n_errors = 0
        self._last_error: Optional[str] = None

    def plan(self) -> RebalancePlan:
        """One planning pass over a fresh stats snapshot (no execution)."""
        return plan_rebalance(self.gateway.stats(), self.config)

    def step(self) -> RebalancePlan:
        """One control cycle: plan, then execute every planned move."""
        plan = self.plan()
        for move in plan.migrations:
            info = self.gateway.migrate_instance(
                move.instance_id, move.target, timeout=self.config.migration_timeout_s
            )
            with self._lock:
                self.history.append(info)
        return plan

    # ------------------------------------------------------------------
    # background watcher
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start the background control loop (idempotent)."""
        with self._lock:
            if self._watcher is not None and self._watcher.is_alive():
                return
            self._stop.clear()
            self._watcher = threading.Thread(
                target=self._watch, name="fleet-controller", daemon=True
            )
            self._watcher.start()

    def stop(self, timeout: Optional[float] = None) -> bool:
        """Stop the background control loop and join it.

        Returns whether the watcher actually joined within ``timeout``
        (default: ``config.migration_timeout_s``).  On a failed join —
        a wedged migration, say — the thread reference is kept, so a
        later :meth:`start` sees it alive and will not leak a second
        watcher; only a successful join clears it.  No watcher running
        counts as a successful (trivial) stop.
        """
        self._stop.set()
        with self._lock:
            watcher = self._watcher
        if watcher is None:
            return True
        watcher.join(timeout if timeout is not None else self.config.migration_timeout_s)
        if watcher.is_alive():
            return False
        with self._lock:
            if self._watcher is watcher:
                self._watcher = None
        return True

    def _watch(self) -> None:
        while not self._stop.wait(self.config.cycle_interval_s):
            try:
                self.step()
            except RuntimeError:
                # gateway closed (or a migration raced shutdown): the
                # loop's work is over — exit instead of spinning on it
                return
            except Exception as exc:  # noqa: BLE001 - containment is the point
                # a failed plan or migration must not kill the control
                # loop: record it (surfaced via stats()) and keep
                # cycling — the next snapshot may well succeed
                with self._lock:
                    self._n_errors += 1
                    self._last_error = f"{type(exc).__name__}: {exc}"
            finally:
                with self._lock:
                    self._n_cycles += 1

    def stats(self) -> dict:
        """Control-loop health: cycles run, errors contained (count +
        last message), and migrations executed."""
        with self._lock:
            return {
                "n_cycles": self._n_cycles,
                "n_errors": self._n_errors,
                "last_error": self._last_error,
                "n_migrations": len(self.history),
                "watcher_alive": self._watcher is not None and self._watcher.is_alive(),
            }

    def __enter__(self) -> "FleetController":
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()
