"""Command-line entry point: ``python -m repro.service``.

Modes
-----
``bench`` (default)
    Drive a :class:`~repro.service.PredictionService` with a generated
    fleet trace and report throughput and latency percentiles for the
    request-at-a-time and micro-batched serving modes.  Writes the
    rendered report to ``results/service_bench.txt`` (``--out`` to
    change, ``--no-write`` to print only).

``bench --gateway``
    Fleet mode: stand a whole fleet of instances up behind one sharded
    :class:`~repro.service.FleetGateway` and sweep a shards × clients
    grid, verifying bit-identical predictions across the grid while
    measuring throughput.  Writes ``results/gateway_bench.txt``.

Examples
--------
::

    PYTHONPATH=src python -m repro.service bench --clients 16 \\
        --batch-size 16 --latency-ms 5
    PYTHONPATH=src python -m repro.service bench --gateway \\
        --shards 1 2 4 --gateway-clients 4 16
"""

from __future__ import annotations

import argparse
import os

from .bench import (
    GatewayBenchConfig,
    ServiceBenchConfig,
    run_gateway_bench,
    run_service_bench,
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="online prediction-service utilities",
    )
    sub = parser.add_subparsers(dest="mode")
    bench = sub.add_parser("bench", help="serving throughput/latency benchmark")
    defaults = ServiceBenchConfig()
    bench.add_argument("--seed", type=int, default=defaults.seed)
    bench.add_argument("--instance-index", type=int, default=defaults.instance_index)
    bench.add_argument("--duration-days", type=float, default=None)
    bench.add_argument("--volume-scale", type=float, default=None)
    bench.add_argument("--clients", type=int, default=defaults.n_clients)
    bench.add_argument("--batch-size", type=int, default=defaults.max_batch_size)
    bench.add_argument("--latency-ms", type=float, default=defaults.max_batch_latency_ms)
    gateway_defaults = GatewayBenchConfig()
    bench.add_argument(
        "--gateway",
        action="store_true",
        help="fleet mode: sweep a FleetGateway over a shards x clients grid",
    )
    bench.add_argument(
        "--shards",
        type=int,
        nargs="+",
        default=list(gateway_defaults.shard_counts),
        help="shard counts for the gateway sweep",
    )
    bench.add_argument(
        "--gateway-clients",
        type=int,
        nargs="+",
        default=list(gateway_defaults.client_counts),
        help="client counts for the gateway sweep",
    )
    bench.add_argument(
        "--instances",
        type=int,
        default=gateway_defaults.n_instances,
        help="fleet size for the gateway sweep",
    )
    bench.add_argument(
        "--out",
        default=None,
        help="report path (defaults to results/service_bench.txt, or "
        "results/gateway_bench.txt with --gateway)",
    )
    bench.add_argument(
        "--no-write",
        action="store_true",
        help="print the report without writing --out",
    )
    return parser


def main(argv=None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.mode is None:
        # bare ``python -m repro.service`` runs the benchmark defaults
        args = parser.parse_args(["bench"])
    # argparse rejects unknown modes, so only "bench" reaches here
    if args.gateway:
        gateway_defaults = GatewayBenchConfig()
        if args.duration_days is None:
            args.duration_days = gateway_defaults.duration_days
        if args.volume_scale is None:
            args.volume_scale = gateway_defaults.volume_scale
        config = GatewayBenchConfig(
            seed=args.seed,
            n_instances=args.instances,
            duration_days=args.duration_days,
            volume_scale=args.volume_scale,
            shard_counts=tuple(args.shards),
            client_counts=tuple(args.gateway_clients),
            max_batch_size=args.batch_size,
            max_batch_latency_ms=args.latency_ms,
        )
        result = run_gateway_bench(config)
        out = args.out or os.path.join("results", "gateway_bench.txt")
    else:
        defaults = ServiceBenchConfig()
        if args.duration_days is None:
            args.duration_days = defaults.duration_days
        if args.volume_scale is None:
            args.volume_scale = defaults.volume_scale
        config = ServiceBenchConfig(
            seed=args.seed,
            instance_index=args.instance_index,
            duration_days=args.duration_days,
            volume_scale=args.volume_scale,
            n_clients=args.clients,
            max_batch_size=args.batch_size,
            max_batch_latency_ms=args.latency_ms,
        )
        result = run_service_bench(config)
        out = args.out or os.path.join("results", "service_bench.txt")
    report = result.render()
    print(report)
    if not args.no_write:
        os.makedirs(os.path.dirname(out) or ".", exist_ok=True)
        with open(out, "w") as f:
            f.write(report + "\n")
        print(f"\nwrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
