"""Command-line entry point: ``python -m repro.service``.

Modes
-----
``bench`` (default)
    Drive a :class:`~repro.service.PredictionService` with a generated
    fleet trace and report throughput and latency percentiles for the
    request-at-a-time and micro-batched serving modes.  Writes the
    rendered report to ``results/service_bench.txt`` (``--out`` to
    change, ``--no-write`` to print only).

``bench --gateway``
    Fleet mode: stand a whole fleet of instances up behind one sharded
    :class:`~repro.service.FleetGateway` and sweep a shards × clients
    grid, verifying bit-identical predictions across the grid while
    measuring throughput.  Writes ``results/gateway_bench.txt``.

``serve``
    The network front door: bind a :class:`~repro.service.WireServer`
    (asyncio TCP, length-prefixed binary frames) over a fresh
    :class:`~repro.service.FleetGateway` and serve until interrupted.
    Clients register instances and submit predictions over the wire —
    see ``repro.service.wire`` for the protocol.

``loadgen``
    The standalone async load-generator client: sweeps TCP connections
    × per-connection in-flight ops against a wire server (self-hosted
    in-process by default, ``--connect HOST:PORT`` for a live one) and
    writes ``results/wire_bench.txt``.

Examples
--------
::

    PYTHONPATH=src python -m repro.service bench --clients 16 \\
        --batch-size 16 --latency-ms 5
    PYTHONPATH=src python -m repro.service bench --gateway \\
        --shards 1 2 4 --gateway-clients 4 16
    PYTHONPATH=src python -m repro.service serve --port 7171 --shards 2
    PYTHONPATH=src python -m repro.service loadgen \\
        --connections 1 4 --inflight 1 8
"""

from __future__ import annotations

import argparse
import os
import time

from .bench import (
    GatewayBenchConfig,
    ServiceBenchConfig,
    WireBenchConfig,
    run_gateway_bench,
    run_service_bench,
    run_wire_bench,
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="online prediction-service utilities",
    )
    sub = parser.add_subparsers(dest="mode")
    bench = sub.add_parser("bench", help="serving throughput/latency benchmark")
    defaults = ServiceBenchConfig()
    bench.add_argument("--seed", type=int, default=defaults.seed)
    bench.add_argument("--instance-index", type=int, default=defaults.instance_index)
    bench.add_argument("--duration-days", type=float, default=None)
    bench.add_argument("--volume-scale", type=float, default=None)
    bench.add_argument("--clients", type=int, default=defaults.n_clients)
    bench.add_argument("--batch-size", type=int, default=defaults.max_batch_size)
    bench.add_argument("--latency-ms", type=float, default=defaults.max_batch_latency_ms)
    gateway_defaults = GatewayBenchConfig()
    bench.add_argument(
        "--gateway",
        action="store_true",
        help="fleet mode: sweep a FleetGateway over a shards x clients grid",
    )
    bench.add_argument(
        "--shards",
        type=int,
        nargs="+",
        default=list(gateway_defaults.shard_counts),
        help="shard counts for the gateway sweep",
    )
    bench.add_argument(
        "--gateway-clients",
        type=int,
        nargs="+",
        default=list(gateway_defaults.client_counts),
        help="client counts for the gateway sweep",
    )
    bench.add_argument(
        "--instances",
        type=int,
        default=gateway_defaults.n_instances,
        help="fleet size for the gateway sweep",
    )
    bench.add_argument(
        "--out",
        default=None,
        help="report path (defaults to results/service_bench.txt, or "
        "results/gateway_bench.txt with --gateway)",
    )
    bench.add_argument(
        "--no-write",
        action="store_true",
        help="print the report without writing --out",
    )

    serve = sub.add_parser(
        "serve", help="asyncio TCP front door over a fresh FleetGateway"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=7171, help="TCP port (0 binds an ephemeral one)"
    )
    serve.add_argument("--shards", type=int, default=2)
    serve.add_argument("--queue-size", type=int, default=256)
    serve.add_argument("--idle-timeout", type=float, default=300.0)
    serve.add_argument(
        "--paper-profile",
        action="store_true",
        help="serve the published hyper-parameters instead of the fast profile",
    )

    loadgen = sub.add_parser(
        "loadgen", help="async wire load generator: connections x in-flight sweep"
    )
    wire_defaults = WireBenchConfig()
    loadgen.add_argument(
        "--connect",
        default=None,
        metavar="HOST:PORT",
        help="target a running wire server (default: self-hosted in-process)",
    )
    loadgen.add_argument("--seed", type=int, default=wire_defaults.seed)
    loadgen.add_argument("--instances", type=int, default=wire_defaults.n_instances)
    loadgen.add_argument(
        "--duration-days", type=float, default=wire_defaults.duration_days
    )
    loadgen.add_argument(
        "--volume-scale", type=float, default=wire_defaults.volume_scale
    )
    loadgen.add_argument("--shards", type=int, default=wire_defaults.n_shards)
    loadgen.add_argument(
        "--connections",
        type=int,
        nargs="+",
        default=list(wire_defaults.connection_counts),
        help="TCP connection counts to sweep",
    )
    loadgen.add_argument(
        "--inflight",
        type=int,
        nargs="+",
        default=list(wire_defaults.inflight_counts),
        help="per-connection in-flight op counts to sweep",
    )
    loadgen.add_argument(
        "--out",
        default=None,
        help="report path (defaults to results/wire_bench.txt)",
    )
    loadgen.add_argument(
        "--no-write",
        action="store_true",
        help="print the report without writing --out",
    )
    return parser


def _run_serve(args) -> int:
    from repro.core.config import GatewayConfig, WireConfig, fast_profile, paper_profile
    from repro.service import FleetGateway, WireServer

    stage = paper_profile() if args.paper_profile else fast_profile()
    gateway = FleetGateway(
        GatewayConfig(n_shards=args.shards, queue_size=args.queue_size),
        stage_config=stage,
    )
    server = WireServer(
        gateway,
        WireConfig(host=args.host, port=args.port, idle_timeout_s=args.idle_timeout),
    )
    try:
        host, port = server.start()
        print(
            f"wire front door listening on {host}:{port} "
            f"({args.shards} shard(s), {'paper' if args.paper_profile else 'fast'} "
            "profile); Ctrl-C to stop"
        )
        while True:
            time.sleep(1.0)
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        server.close()
        gateway.close()
    return 0


def _run_loadgen(args) -> int:
    address = None
    if args.connect is not None:
        host, _, port = args.connect.rpartition(":")
        if not host or not port.isdigit():
            raise SystemExit(f"--connect wants HOST:PORT, got {args.connect!r}")
        address = (host, int(port))
    config = WireBenchConfig(
        seed=args.seed,
        n_instances=args.instances,
        duration_days=args.duration_days,
        volume_scale=args.volume_scale,
        n_shards=args.shards,
        connection_counts=tuple(args.connections),
        inflight_counts=tuple(args.inflight),
    )
    result = run_wire_bench(config, address=address)
    report = result.render()
    print(report)
    if not args.no_write:
        out = args.out or os.path.join("results", "wire_bench.txt")
        os.makedirs(os.path.dirname(out) or ".", exist_ok=True)
        with open(out, "w") as f:
            f.write(report + "\n")
        print(f"\nwrote {out}")
    return 0


def main(argv=None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.mode is None:
        # bare ``python -m repro.service`` runs the benchmark defaults
        args = parser.parse_args(["bench"])
    if args.mode == "serve":
        return _run_serve(args)
    if args.mode == "loadgen":
        return _run_loadgen(args)
    # argparse rejects unknown modes, so only "bench" reaches here
    if args.gateway:
        gateway_defaults = GatewayBenchConfig()
        if args.duration_days is None:
            args.duration_days = gateway_defaults.duration_days
        if args.volume_scale is None:
            args.volume_scale = gateway_defaults.volume_scale
        config = GatewayBenchConfig(
            seed=args.seed,
            n_instances=args.instances,
            duration_days=args.duration_days,
            volume_scale=args.volume_scale,
            shard_counts=tuple(args.shards),
            client_counts=tuple(args.gateway_clients),
            max_batch_size=args.batch_size,
            max_batch_latency_ms=args.latency_ms,
        )
        result = run_gateway_bench(config)
        out = args.out or os.path.join("results", "gateway_bench.txt")
    else:
        defaults = ServiceBenchConfig()
        if args.duration_days is None:
            args.duration_days = defaults.duration_days
        if args.volume_scale is None:
            args.volume_scale = defaults.volume_scale
        config = ServiceBenchConfig(
            seed=args.seed,
            instance_index=args.instance_index,
            duration_days=args.duration_days,
            volume_scale=args.volume_scale,
            n_clients=args.clients,
            max_batch_size=args.batch_size,
            max_batch_latency_ms=args.latency_ms,
        )
        result = run_service_bench(config)
        out = args.out or os.path.join("results", "service_bench.txt")
    report = result.render()
    print(report)
    if not args.no_write:
        os.makedirs(os.path.dirname(out) or ".", exist_ok=True)
        with open(out, "w") as f:
            f.write(report + "\n")
        print(f"\nwrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
