"""Command-line entry point: ``python -m repro.service``.

Modes
-----
``bench`` (default)
    Drive a :class:`~repro.service.PredictionService` with a generated
    fleet trace and report throughput and latency percentiles for the
    request-at-a-time and micro-batched serving modes.  Writes the
    rendered report to ``results/service_bench.txt`` (``--out`` to
    change, ``--no-write`` to print only).

Example
-------
::

    PYTHONPATH=src python -m repro.service bench --clients 16 \\
        --batch-size 16 --latency-ms 5
"""

from __future__ import annotations

import argparse
import os

from .bench import ServiceBenchConfig, run_service_bench


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="online prediction-service utilities",
    )
    sub = parser.add_subparsers(dest="mode")
    bench = sub.add_parser("bench", help="serving throughput/latency benchmark")
    defaults = ServiceBenchConfig()
    bench.add_argument("--seed", type=int, default=defaults.seed)
    bench.add_argument("--instance-index", type=int, default=defaults.instance_index)
    bench.add_argument("--duration-days", type=float, default=defaults.duration_days)
    bench.add_argument("--volume-scale", type=float, default=defaults.volume_scale)
    bench.add_argument("--clients", type=int, default=defaults.n_clients)
    bench.add_argument("--batch-size", type=int, default=defaults.max_batch_size)
    bench.add_argument("--latency-ms", type=float, default=defaults.max_batch_latency_ms)
    bench.add_argument("--out", default=os.path.join("results", "service_bench.txt"))
    bench.add_argument(
        "--no-write",
        action="store_true",
        help="print the report without writing --out",
    )
    return parser


def main(argv=None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.mode is None:
        # bare ``python -m repro.service`` runs the benchmark defaults
        args = parser.parse_args(["bench"])
    # argparse rejects unknown modes, so only "bench" reaches here
    config = ServiceBenchConfig(
        seed=args.seed,
        instance_index=args.instance_index,
        duration_days=args.duration_days,
        volume_scale=args.volume_scale,
        n_clients=args.clients,
        max_batch_size=args.batch_size,
        max_batch_latency_ms=args.latency_ms,
    )
    result = run_service_bench(config)
    report = result.render()
    print(report)
    if not args.no_write:
        os.makedirs(os.path.dirname(args.out) or ".", exist_ok=True)
        with open(args.out, "w") as f:
            f.write(report + "\n")
        print(f"\nwrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
