"""Model registry: persistence for the online serving layer.

A :class:`ModelRegistry` is a directory holding two kinds of artifacts:

- **global models** — the fleet-shared GCN, stored as the ``.npz``
  produced by :mod:`repro.global_model.serialization` (the paper ships
  exactly one such artifact fleet-wide);
- **service snapshots** — one directory per named snapshot, pairing that
  ``.npz`` with a pickle of the per-instance state (exec-time cache
  contents and counters, local ensemble + training pool, running-median
  default, routing counters, configs);
- **fleet snapshots** — one directory per named
  :class:`~repro.service.FleetGateway` snapshot: a single manifest
  spanning every shard (``fleet.json``), the fleet-shared global model
  stored **once**, and one per-instance member state each shard wrote
  for the instances it owns.  Because shard assignment never affects
  results, a fleet snapshot can be restored under any shard count.

The snapshot contract is *bit-for-bit warm restart*: a service restored
from a snapshot produces exactly the predictions the snapshotted service
would have produced on the same subsequent op stream.  Everything that
seeds future behavior rides along — ``random_state``, the retrain
counter (which salts each retrain's ensemble seed), and the
partially-filled training pool — so even retrains after the restart
reproduce the uninterrupted run.
"""

from __future__ import annotations

import json
import os
import pickle
import zipfile
from typing import List, Optional, Sequence

from repro.core.config import ServiceConfig
from repro.core.stage import StagePredictor
from repro.global_model.model import GlobalModel
from repro.global_model.serialization import load_global_model, save_global_model

__all__ = ["ModelRegistry"]

_SNAPSHOT_FORMAT_VERSION = 1
_FLEET_FORMAT_VERSION = 1
_STATE_FILE = "state.pkl"
_GLOBAL_FILE = "global.npz"
_MANIFEST_FILE = "manifest.json"
_FLEET_MANIFEST_FILE = "fleet.json"
_FLEET_INSTANCES_DIR = "instances"
_INSTANCE_STATES_DIR = "instances"


class ModelRegistry:
    """Directory-backed store for global models and service snapshots."""

    def __init__(self, root: str):
        self.root = root
        os.makedirs(self._global_dir, exist_ok=True)
        os.makedirs(self._service_dir, exist_ok=True)
        os.makedirs(self._fleet_dir, exist_ok=True)
        os.makedirs(self._instances_dir, exist_ok=True)

    @property
    def _global_dir(self) -> str:
        return os.path.join(self.root, "global_models")

    @property
    def _service_dir(self) -> str:
        return os.path.join(self.root, "services")

    @property
    def _fleet_dir(self) -> str:
        return os.path.join(self.root, "fleets")

    @property
    def _instances_dir(self) -> str:
        return os.path.join(self.root, _INSTANCE_STATES_DIR)

    # ------------------------------------------------------------------
    # error-path helpers: every load failure names the artifact and, for
    # missing ones, lists what the registry actually holds — never a bare
    # FileNotFoundError on an internal path or a raw pickle traceback
    # ------------------------------------------------------------------
    def _require(self, path: str, kind: str, name: str, available: List[str]) -> None:
        if not os.path.exists(path):
            listing = ", ".join(repr(a) for a in available) if available else "none"
            raise FileNotFoundError(
                f"no {kind} named {name!r} in registry {self.root!r} "
                f"(available: {listing})"
            )

    @staticmethod
    def _read_pickle(path: str, kind: str, name: str) -> dict:
        try:
            with open(path, "rb") as f:
                return pickle.load(f)
        except (pickle.UnpicklingError, EOFError, AttributeError, IndexError) as exc:
            raise ValueError(
                f"{kind} {name!r} is corrupt or truncated ({path}): {exc}"
            ) from exc

    @staticmethod
    def _read_global(path: str, kind: str, name: str) -> GlobalModel:
        try:
            return load_global_model(path)
        except (zipfile.BadZipFile, OSError, KeyError) as exc:
            raise ValueError(
                f"{kind} {name!r} has a corrupt or truncated global model "
                f"({path}): {exc}"
            ) from exc

    # ------------------------------------------------------------------
    # fleet-shared global models
    # ------------------------------------------------------------------
    def global_model_path(self, name: str = "global") -> str:
        return os.path.join(self._global_dir, f"{name}.npz")

    def save_global_model(self, model: GlobalModel, name: str = "global") -> str:
        """Persist one fleet-wide global model; returns its path."""
        path = self.global_model_path(name)
        save_global_model(model, path)
        return path

    def load_global_model(self, name: str = "global") -> GlobalModel:
        path = self.global_model_path(name)
        self._require(path, "global model", name, self.list_global_models())
        return self._read_global(path, "global model", name)

    def list_global_models(self) -> List[str]:
        return sorted(
            os.path.splitext(f)[0]
            for f in os.listdir(self._global_dir)
            if f.endswith(".npz")
        )

    # ------------------------------------------------------------------
    # per-instance service snapshots
    # ------------------------------------------------------------------
    def service_snapshot_path(self, name: str) -> str:
        return os.path.join(self._service_dir, name)

    def list_service_snapshots(self) -> List[str]:
        return sorted(
            d
            for d in os.listdir(self._service_dir)
            if os.path.isdir(os.path.join(self._service_dir, d))
        )

    def save_service_state(
        self,
        stage: StagePredictor,
        name: str,
        service_config: Optional[ServiceConfig] = None,
    ) -> str:
        """Snapshot one quiesced Stage predictor under ``name``.

        The caller must have drained any in-flight operations first
        (:meth:`PredictionService.snapshot` does).  The global model is
        written through :mod:`~repro.global_model.serialization`; the
        per-instance state is pickled with the global model detached, so
        the fleet-shared artifact is never duplicated inside it.
        """
        path = self.service_snapshot_path(name)
        os.makedirs(path, exist_ok=True)
        global_model, stage.global_model = stage.global_model, None
        try:
            if global_model is not None:
                save_global_model(global_model, os.path.join(path, _GLOBAL_FILE))
            with open(os.path.join(path, _STATE_FILE), "wb") as f:
                pickle.dump(
                    {
                        "format_version": _SNAPSHOT_FORMAT_VERSION,
                        "service_config": service_config,
                        "stage": stage,
                    },
                    f,
                )
        finally:
            stage.global_model = global_model
        manifest = {
            "format_version": _SNAPSHOT_FORMAT_VERSION,
            "instance_id": stage.instance.instance_id,
            "has_global_model": global_model is not None,
            "cache_entries": len(stage.cache),
            "n_local_retrains": stage.local.n_retrains,
        }
        with open(os.path.join(path, _MANIFEST_FILE), "w") as f:
            json.dump(manifest, f, indent=2, sort_keys=True)
            f.write("\n")
        return path

    def load_service_state(self, name: str):
        """Load a snapshot; returns ``(stage, service_config)``.

        Raises a self-describing ``FileNotFoundError`` (naming the
        snapshot and listing what exists) when ``name`` is unknown, and
        ``ValueError`` when the on-disk state is corrupt or truncated.
        """
        path = self.service_snapshot_path(name)
        state_path = os.path.join(path, _STATE_FILE)
        self._require(state_path, "service snapshot", name, self.list_service_snapshots())
        payload = self._read_pickle(state_path, "service snapshot", name)
        version = payload.get("format_version")
        if version != _SNAPSHOT_FORMAT_VERSION:
            raise ValueError(f"unsupported service snapshot version {version}")
        stage: StagePredictor = payload["stage"]
        global_path = os.path.join(path, _GLOBAL_FILE)
        if os.path.exists(global_path):
            stage.global_model = self._read_global(global_path, "service snapshot", name)
        return stage, payload.get("service_config")

    def load_service(
        self,
        name: str,
        service_config: Optional[ServiceConfig] = None,
    ):
        """Rebuild a live :class:`PredictionService` from a snapshot.

        ``service_config`` overrides the snapshotted batching knobs when
        given (they are serving-side only and never affect predictions).
        """
        from .server import PredictionService

        stage, saved_config = self.load_service_state(name)
        return PredictionService.from_stage(stage, service_config=service_config or saved_config)

    # ------------------------------------------------------------------
    # whole-fleet gateway snapshots
    # ------------------------------------------------------------------
    def fleet_snapshot_path(self, name: str) -> str:
        return os.path.join(self._fleet_dir, name)

    def fleet_member_path(self, name: str, instance_id: str) -> str:
        return os.path.join(self.fleet_snapshot_path(name), _FLEET_INSTANCES_DIR, instance_id)

    def list_fleet_snapshots(self) -> List[str]:
        return sorted(
            d
            for d in os.listdir(self._fleet_dir)
            if os.path.isdir(os.path.join(self._fleet_dir, d))
        )

    def _write_member_state(self, path: str, stage: StagePredictor) -> str:
        """Pickle one predictor with the shared global model detached."""
        os.makedirs(path, exist_ok=True)
        global_model, stage.global_model = stage.global_model, None
        try:
            with open(os.path.join(path, _STATE_FILE), "wb") as f:
                pickle.dump({"format_version": _FLEET_FORMAT_VERSION, "stage": stage}, f)
        finally:
            stage.global_model = global_model
        return path

    def _read_member_state(
        self,
        state_path: str,
        kind: str,
        member: str,
        available: List[str],
        global_model: Optional[GlobalModel],
    ) -> StagePredictor:
        self._require(state_path, kind, member, available)
        payload = self._read_pickle(state_path, kind, member)
        version = payload.get("format_version")
        if version != _FLEET_FORMAT_VERSION:
            raise ValueError(f"unsupported fleet snapshot version {version}")
        stage: StagePredictor = payload["stage"]
        stage.global_model = global_model
        return stage

    def save_fleet_member(self, stage: StagePredictor, name: str) -> str:
        """Snapshot one quiesced per-instance predictor into fleet ``name``.

        Called from *inside* each shard worker process for the instances
        it owns.  The fleet-shared global model is always detached first
        — it is written exactly once, by :meth:`save_fleet_manifest`'s
        caller — so a thousand-instance fleet never stores a thousand
        copies of the same ``.npz``.
        """
        return self._write_member_state(
            self.fleet_member_path(name, stage.instance.instance_id), stage
        )

    def load_fleet_member(
        self,
        name: str,
        instance_id: str,
        global_model: Optional[GlobalModel] = None,
    ) -> StagePredictor:
        """Load one member predictor, re-attaching the shared model."""
        path = self.fleet_member_path(name, instance_id)
        instances_dir = os.path.join(self.fleet_snapshot_path(name), _FLEET_INSTANCES_DIR)
        available = sorted(os.listdir(instances_dir)) if os.path.isdir(instances_dir) else []
        return self._read_member_state(
            os.path.join(path, _STATE_FILE),
            "fleet member",
            f"{name}/{instance_id}",
            available,
            global_model,
        )

    # ------------------------------------------------------------------
    # standalone per-instance states (the migration primitive)
    # ------------------------------------------------------------------
    def instance_state_path(self, name: str) -> str:
        return os.path.join(self._instances_dir, name)

    def list_instance_states(self) -> List[str]:
        return sorted(
            d
            for d in os.listdir(self._instances_dir)
            if os.path.isdir(os.path.join(self._instances_dir, d))
        )

    def save_instance_state(self, stage: StagePredictor, name: str) -> str:
        """Snapshot one quiesced predictor *outside* any fleet snapshot.

        Same on-disk format as a fleet member (global model detached, so
        the artifact is shard- and fleet-agnostic), but addressed by a
        bare name: this is the handoff unit a live migration writes on
        the source shard and reads on the target shard, with no
        whole-fleet manifest in sight.
        """
        return self._write_member_state(self.instance_state_path(name), stage)

    def load_instance_state(
        self,
        name: str,
        global_model: Optional[GlobalModel] = None,
    ) -> StagePredictor:
        """Load one standalone state, re-attaching the shared model."""
        return self._read_member_state(
            os.path.join(self.instance_state_path(name), _STATE_FILE),
            "instance state",
            name,
            self.list_instance_states(),
            global_model,
        )

    def save_fleet_manifest(
        self,
        name: str,
        instance_ids: Sequence[str],
        n_shards: int,
        global_model: Optional[GlobalModel] = None,
    ) -> str:
        """Write the one manifest spanning every shard (plus the shared
        model, once).  ``n_shards`` is recorded as provenance only — the
        determinism contract lets a snapshot restore under any shard
        count — and the member states must already be on disk (the
        gateway sequences per-shard member saves before this call).
        """
        path = self.fleet_snapshot_path(name)
        os.makedirs(path, exist_ok=True)
        if global_model is not None:
            save_global_model(global_model, os.path.join(path, _GLOBAL_FILE))
        missing = [
            instance_id
            for instance_id in instance_ids
            if not os.path.exists(
                os.path.join(self.fleet_member_path(name, instance_id), _STATE_FILE)
            )
        ]
        if missing:
            raise ValueError(f"fleet snapshot {name!r} is missing member state for {missing}")
        manifest = {
            "format_version": _FLEET_FORMAT_VERSION,
            "n_shards": int(n_shards),
            "has_global_model": global_model is not None,
            "instances": sorted(instance_ids),
        }
        with open(os.path.join(path, _FLEET_MANIFEST_FILE), "w") as f:
            json.dump(manifest, f, indent=2, sort_keys=True)
            f.write("\n")
        return path

    def load_fleet_manifest(self, name: str) -> dict:
        path = os.path.join(self.fleet_snapshot_path(name), _FLEET_MANIFEST_FILE)
        self._require(path, "fleet snapshot", name, self.list_fleet_snapshots())
        try:
            with open(path) as f:
                manifest = json.load(f)
        except json.JSONDecodeError as exc:
            raise ValueError(
                f"fleet snapshot {name!r} has a corrupt manifest ({path}): {exc}"
            ) from exc
        version = manifest.get("format_version")
        if version != _FLEET_FORMAT_VERSION:
            raise ValueError(f"unsupported fleet snapshot version {version}")
        return manifest

    def load_fleet_global(self, name: str) -> GlobalModel:
        path = os.path.join(self.fleet_snapshot_path(name), _GLOBAL_FILE)
        self._require(path, "fleet snapshot global model", name, self.list_fleet_snapshots())
        return self._read_global(path, "fleet snapshot", name)
