"""Per-instance workload forecasters: arrival rate and template mix.

The forecaster is the proactive half of the serving story (ROADMAP
track "Workload forecasting and proactive control").  It folds an
instance's arrival stream onto a seasonal cycle of fixed-width time
bins and keeps two views of history:

- :class:`ArrivalRateForecaster` — how many queries each phase bin of
  the cycle has seen, normalized by how often the observation span has
  covered that bin.  Answers "how busy will the next half hour be?"
  (:meth:`~WorkloadForecast.forecast_load`) and "is now a trough?"
  (:meth:`~WorkloadForecast.is_trough`).
- :class:`TemplateMixForecaster` — which cache keys recur and when
  each is *due* to recur next (a per-template periodicity model over
  observed inter-arrival gaps).  Answers "which templates are worth
  keeping warm right now?" (:meth:`~WorkloadForecast.hot_keys`).

Determinism contract: forecast state is a pure function of the
observed ``(arrival_time, cache_key)`` stream — arrival times ride the
sequenced op stream, never wall-clock — so every consumer decision
(pre-warm, retrain deferral, rebalance load) is bit-identical across
``n_jobs``, backend tiers and multiprocessing start methods.  The only
random draw is the offline fit's history subsample, seeded with
``derive_seed(seed, "fit-subsample")`` from the instance-derived seed,
like every other stream in the repo.  All state is plain picklable
containers, so forecasters ride service snapshots and shard migrations
bit-for-bit.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.workload.arrival import SECONDS_PER_DAY
from repro.workload.seeding import derive_seed

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.config import ForecastConfig

__all__ = ["ArrivalRateForecaster", "TemplateMixForecaster", "WorkloadForecast"]


class ArrivalRateForecaster:
    """Seasonal-folded arrival counts over fixed-width time bins.

    ``bin_seconds``-wide bins are folded onto a ``period_days`` cycle:
    absolute bin ``b`` lands in phase ``b % n_bins``.  The expected
    per-bin count of a phase is its observed count divided by how many
    times the observation span has covered that phase — exact coverage,
    not an average, so half-seen cycles do not dilute the estimate.
    """

    def __init__(self, config: "ForecastConfig"):
        self.bin_seconds = config.bucket_minutes * 60.0
        self.n_bins = max(
            1, int(round(config.period_days * SECONDS_PER_DAY / self.bin_seconds))
        )
        self.phase_counts: List[int] = [0] * self.n_bins
        self.total = 0
        self.first_bin: Optional[int] = None
        self.last_bin: Optional[int] = None

    # ------------------------------------------------------------------
    def bin_index(self, time_s: float) -> int:
        """Absolute bin index of an arrival time."""
        return int(time_s // self.bin_seconds)

    def phase_of(self, time_s: float) -> int:
        """Phase bin (position in the seasonal cycle) of an arrival."""
        return self.bin_index(time_s) % self.n_bins

    def observe(self, time_s: float) -> None:
        b = self.bin_index(time_s)
        if self.first_bin is None or b < self.first_bin:
            self.first_bin = b
        if self.last_bin is None or b > self.last_bin:
            self.last_bin = b
        self.phase_counts[b % self.n_bins] += 1
        self.total += 1

    # ------------------------------------------------------------------
    @property
    def span_bins(self) -> int:
        """Bins covered by the observation span (0 before any observe)."""
        if self.first_bin is None:
            return 0
        return self.last_bin - self.first_bin + 1

    def coverage(self, phase: int) -> int:
        """How many absolute bins of the span fold onto ``phase``."""
        if self.first_bin is None:
            return 0
        span = self.span_bins
        full, rest = divmod(span, self.n_bins)
        return full + (1 if (phase - self.first_bin) % self.n_bins < rest else 0)

    def expected_count(self, phase: int) -> float:
        """Expected arrivals in one bin of ``phase`` (0.0 when unseen)."""
        coverage = self.coverage(phase)
        if coverage == 0:
            return 0.0
        return self.phase_counts[phase] / coverage

    @property
    def mean_per_bin(self) -> float:
        """Mean arrivals per bin over the observation span."""
        span = self.span_bins
        return self.total / span if span else 0.0


class TemplateMixForecaster:
    """Which cache keys recur, and when each is due to recur next.

    Tracks per key (the hash of a query's flattened feature vector) its
    observation count, first- and last-seen arrival times, plus how the
    mix folds onto phase bins.  The hot-key forecast is a per-template
    periodicity model: a recurring key's mean inter-arrival gap
    predicts its next arrival, so a bin's forecast-hot set is the keys
    *due* in it — not merely the globally frequent ones, which plain
    LRU already retains.  All containers are plain dicts in observation
    order, so pruning and ranking are deterministic.
    """

    def __init__(self, config: "ForecastConfig", n_bins: int):
        self.min_key_count = config.min_key_count
        self.max_keys_tracked = config.max_keys_tracked
        self.due_lookahead_bins = config.due_lookahead_bins
        self.alive_gap_multiple = config.alive_gap_multiple
        self.n_bins = n_bins
        #: key -> [count, first_seen_s, last_seen_s]
        self.key_stats: Dict[str, List[float]] = {}
        #: phase bin -> key -> count (the seasonal template mix)
        self.phase_keys: List[Dict[str, int]] = [dict() for _ in range(n_bins)]

    def observe(self, phase: int, time_s: float, key: str) -> None:
        bin_counts = self.phase_keys[phase]
        bin_counts[key] = bin_counts.get(key, 0) + 1
        entry = self.key_stats.get(key)
        if entry is None:
            self.key_stats[key] = [1, time_s, time_s]
            if len(self.key_stats) > self.max_keys_tracked:
                self._prune()
        else:
            entry[0] += 1
            entry[2] = max(entry[2], time_s)

    def _prune(self) -> None:
        """Bound the key universe: drop the rarest, longest-idle keys."""
        target = self.max_keys_tracked // 2
        victims = sorted(
            self.key_stats,
            key=lambda key: (self.key_stats[key][0], self.key_stats[key][2], key),
        )[: len(self.key_stats) - target]
        dropped = set(victims)
        for key in victims:
            del self.key_stats[key]
        for bin_counts in self.phase_keys:
            for key in [k for k in bin_counts if k in dropped]:
                del bin_counts[key]

    def mix(self, phase: int) -> Dict[str, int]:
        """The observed template mix of one phase bin (key -> count)."""
        return dict(self.phase_keys[phase])

    def hot_keys(self, bin_start_s: float, bin_seconds: float, k: int) -> List[str]:
        """The keys due to recur in the bin starting at ``bin_start_s``.

        A key qualifies when it has recurred (``count >=
        min_key_count``), is still *alive* (idle for less than
        ``alive_gap_multiple`` of its mean gap plus one bin — retired
        dashboard variants forecast nothing), and its predicted next
        arrival — last seen plus mean inter-arrival gap, clamped
        forward to the bin start — lands within ``due_lookahead_bins``
        bins.  Soonest-due first, ties broken on the key string, so the
        ranking is independent of observation order.
        """
        if k <= 0:
            return []
        due: List[Tuple[float, str]] = []
        for key, (count, first_seen, last_seen) in self.key_stats.items():
            if count < self.min_key_count:
                continue
            gap = (last_seen - first_seen) / (count - 1)
            idle = bin_start_s - last_seen
            if idle >= self.alive_gap_multiple * gap + bin_seconds:
                continue
            next_arrival = max(last_seen + gap, bin_start_s)
            if next_arrival < bin_start_s + self.due_lookahead_bins * bin_seconds:
                due.append((next_arrival, key))
        due.sort()
        return [key for _, key in due[:k]]


class WorkloadForecast:
    """One instance's combined arrival-rate + template-mix forecast.

    Parameters
    ----------
    config:
        The shared :class:`~repro.core.config.ForecastConfig`.
    seed:
        The forecaster's seed stream root — pass
        ``derive_seed(instance_seed, "forecast")`` so every instance
        gets an independent, reproducible stream.
    """

    def __init__(self, config: "ForecastConfig", seed: int = 0):
        self.config = config
        self.seed = int(seed)
        self.arrivals = ArrivalRateForecaster(config)
        self.mix = TemplateMixForecaster(config, self.arrivals.n_bins)
        self.n_observed = 0

    # ------------------------------------------------------------------
    # geometry
    # ------------------------------------------------------------------
    @property
    def bin_seconds(self) -> float:
        return self.arrivals.bin_seconds

    @property
    def n_bins(self) -> int:
        return self.arrivals.n_bins

    def bin_index(self, time_s: float) -> int:
        return self.arrivals.bin_index(time_s)

    def phase_of(self, time_s: float) -> int:
        return self.arrivals.phase_of(time_s)

    # ------------------------------------------------------------------
    # state updates
    # ------------------------------------------------------------------
    def observe(self, time_s: float, key: Optional[str] = None) -> None:
        """Fold one arrival (and its cache key, if any) into history."""
        phase = self.arrivals.phase_of(time_s)
        self.arrivals.observe(time_s)
        if key is not None:
            self.mix.observe(phase, time_s, key)
        self.n_observed += 1

    def fit(self, events: Iterable[Tuple[float, Optional[str]]]) -> "WorkloadForecast":
        """Offline fit on ``(arrival_time, cache_key)`` history.

        Histories larger than ``max_fit_events`` are subsampled with the
        forecaster's own seeded stream (indices re-sorted, so the kept
        events stay in arrival order); below the cap the fit is exactly
        the online observe loop.
        """
        events = list(events)
        if len(events) > self.config.max_fit_events:
            rng = np.random.default_rng(derive_seed(self.seed, "fit-subsample"))
            keep = np.sort(
                rng.choice(len(events), size=self.config.max_fit_events, replace=False)
            )
            events = [events[i] for i in keep]
        for time_s, key in events:
            self.observe(time_s, key)
        return self

    def fit_trace(self, trace) -> "WorkloadForecast":
        """Fit on a :class:`~repro.workload.trace.Trace` prefix, keying
        each record exactly as the cache would."""
        from repro.cache import ExecTimeCache

        return self.fit(
            (record.arrival_time, ExecTimeCache.key_for(record.features))
            for record in trace
        )

    # ------------------------------------------------------------------
    # forecasts
    # ------------------------------------------------------------------
    @property
    def warm(self) -> bool:
        """Whether enough history exists to trust trough/load calls."""
        return self.n_observed >= self.config.min_history

    def expected_rate(self, time_s: float) -> float:
        """Expected arrivals in the bin containing ``time_s``."""
        return self.arrivals.expected_count(self.phase_of(time_s))

    def is_trough(self, time_s: float) -> bool:
        """Whether the bin containing ``time_s`` is a forecast trough.

        Cold forecasters (< ``min_history`` observations) never report a
        trough — consumers fall back to their bounded-deferral paths.
        """
        if not self.warm:
            return False
        mean = self.arrivals.mean_per_bin
        if mean <= 0.0:
            return False
        return self.expected_rate(time_s) <= self.config.trough_fraction * mean

    def forecast_load(self, time_s: Optional[float] = None) -> float:
        """Expected arrivals over the next ``horizon_bins`` bins.

        The rebalancer's per-instance load signal.  Defaults to the
        horizon after the last observed arrival; cold forecasters report
        0.0 (the planner then falls back to trailing totals).
        """
        if not self.warm:
            return 0.0
        if time_s is None:
            if self.arrivals.last_bin is None:
                return 0.0
            base_bin = self.arrivals.last_bin
        else:
            base_bin = self.bin_index(time_s)
        return float(
            sum(
                self.arrivals.expected_count((base_bin + offset) % self.n_bins)
                for offset in range(1, self.config.horizon_bins + 1)
            )
        )

    def hot_keys(self, time_s: float, k: Optional[int] = None) -> List[str]:
        """Cache keys due to recur in the bin containing ``time_s``."""
        if k is None:
            k = self.config.top_templates
        bin_start = self.bin_index(time_s) * self.bin_seconds
        return self.mix.hot_keys(bin_start, self.bin_seconds, k)

    def next_trough(
        self, after_time_s: float, search_bins: Optional[int] = None
    ) -> Optional[float]:
        """Start time (seconds) of the next forecast trough bin strictly
        after ``after_time_s``, or ``None`` within the search window.

        The maintenance-window recommendation: schedule ANALYZE-style
        refreshes (and anything else heavy) at the returned time.
        Searches one full cycle by default.
        """
        if not self.warm:
            return None
        if search_bins is None:
            search_bins = self.n_bins
        base_bin = self.bin_index(after_time_s)
        for offset in range(1, search_bins + 1):
            start = (base_bin + offset) * self.bin_seconds
            if self.is_trough(start):
                return start
        return None
