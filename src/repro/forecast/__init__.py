"""Workload forecasting: proactive control inputs for the serving fleet.

Per-instance arrival-rate and template-mix forecasters fit on trace
history (:class:`WorkloadForecast`), configured by the shared
:class:`~repro.core.config.ForecastConfig` and consumed by three
layers: the predictor's cache pre-warmer
(:class:`~repro.core.stage.StagePredictor`), the service's
trough-scheduled retrains/maintenance windows
(:class:`~repro.service.PredictionService`), and the control plane's
forecast-driven rebalancer
(:func:`~repro.service.control.plan_rebalance` with
``ControlConfig.load_source="forecast"``).
"""

from .model import ArrivalRateForecaster, TemplateMixForecaster, WorkloadForecast

__all__ = ["ArrivalRateForecaster", "TemplateMixForecaster", "WorkloadForecast"]
