"""Quickstart: predict query execution times with the Stage hierarchy.

Builds a small synthetic Redshift-style instance, replays its query log
through a Stage predictor (exec-time cache -> local ensemble) next to the
AutoWLM baseline, and prints the paper's accuracy metrics.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import AutoWLMPredictor, FleetConfig, FleetGenerator, StagePredictor, fast_profile
from repro.core.metrics import bucketed_summary
from repro.harness.reporting import render_comparison_table


def main() -> None:
    # 1. Generate one synthetic customer instance and two days of queries.
    generator = FleetGenerator(FleetConfig(seed=42, volume_scale=0.4))
    instance = generator.sample_instance(0)
    trace = generator.generate_trace(instance, duration_days=2.0)
    print(
        f"instance {instance.instance_id}: {instance.hardware.name} x{instance.n_nodes}, "
        f"{len(trace)} queries over 2 days"
    )
    print("first plan:\n" + trace[0].plan.describe(max_depth=3))

    # 2. Replay the trace online: predict, then observe, one query at a time.
    stage = StagePredictor(instance, config=fast_profile())
    autowlm = AutoWLMPredictor(config=fast_profile().local)
    true, stage_preds, auto_preds = [], [], []
    for record in trace:
        stage_preds.append(stage.predict(record).exec_time)
        auto_preds.append(autowlm.predict(record).exec_time)
        stage.observe(record)
        autowlm.observe(record)
        true.append(record.exec_time)

    # 3. Report accuracy the way the paper does (Table 1 layout).
    true = np.asarray(true)
    print()
    print(
        render_comparison_table(
            "Stage vs AutoWLM (absolute error, seconds)",
            "Stage",
            bucketed_summary(true, np.asarray(stage_preds)),
            "AutoWLM",
            bucketed_summary(true, np.asarray(auto_preds)),
        )
    )
    print(
        f"\ncache hit rate: {stage.cache.hit_rate:.1%}   "
        f"local retrains: {stage.local.n_retrains}   "
        f"sources: {stage.source_counts}"
    )


if __name__ == "__main__":
    main()
