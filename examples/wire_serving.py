"""The network front door: predictions over real TCP.

Stage answers a prediction per arriving query *inside* Redshift, so the
outermost deployment shape is a socket, not an in-process call.  This
example stands a :class:`~repro.service.WireServer` (asyncio, compact
length-prefixed binary frames) in front of a sharded
:class:`~repro.service.FleetGateway` and shows (a) live predict/observe
traffic from a :class:`~repro.service.WireClient` — registration,
predictions with calibrated intervals and feedback all ride the wire,
(b) the fleet + per-session stats roll-up fetched over the same socket,
and (c) the determinism contract extending across TCP: a ``via_socket``
replay over multiple concurrent connections is bit-identical to the
direct in-process replay.

Run:  python examples/wire_serving.py
"""

import numpy as np

from repro.core.config import GatewayConfig, WireConfig, fast_profile
from repro.harness import replay_instance
from repro.service import FleetGateway, WireClient, WireServer
from repro.workload import FleetConfig, FleetGenerator


def main() -> None:
    gen = FleetGenerator(FleetConfig(seed=23, volume_scale=0.15))
    traces = [gen.generate_trace(gen.sample_instance(i), 1.0) for i in range(2)]

    gateway = FleetGateway(GatewayConfig(n_shards=2), stage_config=fast_profile())
    server = WireServer(gateway, WireConfig())  # port=0: ephemeral bind
    try:
        host, port = server.start()
        print(f"wire front door listening on {host}:{port}")

        # --- (a) live traffic over the socket --------------------------
        with WireClient(host, port, name="example-client") as client:
            for trace in traces:
                client.register_instance(trace.instance)
            trace = traces[0]
            instance_id = trace.instance.instance_id
            print(f"\nserving {trace.instance.instance_id} over TCP "
                  f"(session #{client.session_info['session_id']}):")
            for record in trace[:40]:
                p = client.predict(instance_id, record)
                client.observe(instance_id, record)
            print(
                f"  last prediction: {p.exec_time:.2f}s "
                f"[{p.interval_low:.2f}, {p.interval_high:.2f}]  {p.source}"
            )

            # --- (b) stats round-trip the same socket -------------------
            gateway.drain()
            stats = client.stats()
            fleet = stats["gateway"]["fleet"]
            session = stats["wire"]["sessions"][client.session_info["session_id"]]
            print(
                f"  fleet: {fleet['n_predicts']} predicts, "
                f"{fleet['cache_hits']} cache hits over "
                f"{stats['gateway']['n_shards']} shards"
            )
            print(
                f"  this session: {session['predicts']} predicts, "
                f"{session['observes']} observes, "
                f"{session['retry_after']} backpressure retries"
            )
    finally:
        server.close()
        gateway.close()

    # --- (c) bit-parity across the socket ------------------------------
    print("\nreplaying the same trace direct and via_socket (3 shards, "
          "3 concurrent TCP connections)...")
    direct = replay_instance(traces[0], config=fast_profile())
    via_socket = replay_instance(
        traces[0],
        config=fast_profile(),
        via_socket=True,
        gateway_config=GatewayConfig(n_shards=3),
        service_clients=3,
    )
    assert np.array_equal(direct.stage_pred, via_socket.stage_pred)
    assert np.array_equal(direct.stage_source, via_socket.stage_source)
    assert direct.stage_stats == via_socket.stage_stats
    print(
        "bit-identical arrays and accounting: the frame protocol, shard "
        "processes and connection interleaving are all invisible."
    )


if __name__ == "__main__":
    main()
