"""End-to-end: how much does a better predictor improve query latency?

Reproduces the paper's headline experiment (Figure 6) at example scale:
replay a small fleet through Stage / AutoWLM / the Optimal oracle, feed
each predictor's estimates to the workload-manager simulator, and report
latency improvements over AutoWLM.

Run:  python examples/workload_manager.py
"""

from repro.harness import SweepConfig, end_to_end_comparison, run_sweep
from repro.harness.reporting import render_simple_table


def main() -> None:
    print("running sweep (train global model + replay 6 instances)...")
    sweep = run_sweep(
        SweepConfig(
            seed=7,
            n_eval_instances=6,
            n_train_instances=6,
            duration_days=2.0,
            volume_scale=0.25,
        ),
        verbose=True,
    )

    e2e = end_to_end_comparison(sweep)
    rows = []
    for name in ("stage", "optimal"):
        imp = e2e["improvements"][name]
        rows.append(
            [
                name,
                f"{imp['mean']:+.1%}",
                f"{imp['median']:+.1%}",
                f"{imp['p90']:+.1%}",
            ]
        )
    print()
    print(
        render_simple_table(
            "Query latency improvement over the AutoWLM predictor",
            ["predictor", "mean", "median", "p90 (tail)"],
            rows,
        )
    )
    print(
        f"\ninstances where Stage regressed: "
        f"{e2e['fraction_instances_regressed']:.0%} "
        "(the paper reports regressions on <10% of instances;\n"
        " at this example scale — 6 instances, a few hundred queries each —\n"
        " a single cold instance can swing its own number wildly; "
        "benchmarks/ runs the full configuration)"
    )
    print("\nper-instance mean-latency improvement (sorted by Optimal's):")
    for entry in e2e["per_instance"]:
        print(
            f"  {entry['instance_id']}: stage {entry['stage_improvement']:+.1%}  "
            f"optimal {entry['optimal_improvement']:+.1%}"
        )


if __name__ == "__main__":
    main()
