"""Fleet serving: many instances behind one sharded gateway.

Stage runs inside *every* Redshift instance in a fleet, so the
production deployment is thousands of per-instance predictors behind a
single front door.  This example stands a small fleet up behind a
:class:`~repro.service.FleetGateway` — per-instance services sharded
across worker OS processes — drives interleaved traffic from concurrent
client threads, prints the aggregated fleet metrics, then snapshots the
whole warm fleet into a :class:`~repro.service.ModelRegistry` and
restores it under a *different* shard count, showing the warm restart
reproduces predictions exactly (shard assignment is not part of the
fleet's state).

Run:  python examples/fleet_gateway.py
"""

import tempfile
import threading

from repro import FleetConfig, FleetGenerator, fast_profile
from repro.core.config import GatewayConfig, ServiceConfig
from repro.service import FleetGateway, ModelRegistry, shard_for


def main() -> None:
    # 1. A small fleet: four synthetic customer instances.
    generator = FleetGenerator(FleetConfig(seed=11, volume_scale=0.25))
    traces = [
        generator.generate_trace(generator.sample_instance(i), duration_days=1.0)
        for i in range(4)
    ]

    # 2. One gateway, two shard processes; every instance registered on
    #    its hash-assigned shard.
    gateway = FleetGateway(
        GatewayConfig(n_shards=2, service=ServiceConfig(max_batch_size=16)),
        stage_config=fast_profile(),
    )
    for trace in traces:
        shard = gateway.register_instance(trace.instance)
        print(
            f"instance {trace.instance.instance_id}: {len(trace)} queries "
            f"-> shard {shard} (shard_for agrees: "
            f"{shard_for(trace.instance.instance_id, 2)})"
        )

    # 3. Warm the fleet with the first half of every instance's traffic
    #    (fused predict + observe, the feedback path).
    for trace in traces:
        instance_id = trace.instance.instance_id
        for record in trace[: len(trace) // 2]:
            gateway.predict_async(instance_id, record)
            gateway.observe(instance_id, record)
    gateway.drain()

    # 4. Serve interleaved fleet traffic from four concurrent clients.
    live = sorted(
        (
            (trace.instance.instance_id, record)
            for trace in traces
            for record in trace[len(trace) // 2 :]
        ),
        key=lambda pair: pair[1].arrival_time,
    )
    position = {"next": 0}
    lock = threading.Lock()
    predictions = [None] * len(live)

    def client() -> None:
        while True:
            with lock:
                i = position["next"]
                if i >= len(live):
                    return
                position["next"] = i + 1
            instance_id, record = live[i]
            predictions[i] = gateway.predict(instance_id, record).exec_time

    threads = [threading.Thread(target=client) for _ in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    gateway.drain()

    stats = gateway.stats()
    fleet = stats["fleet"]
    print(
        f"\nfleet metrics: {stats['n_instances']} instances on "
        f"{stats['n_shards']} shards, {fleet['n_predicts']} predicts, "
        f"cache hit rate {fleet['cache_hit_rate']:.0%}, "
        f"{fleet['n_local_retrains']} local retrains, "
        f"{fleet['n_batches']} micro-batches"
    )

    # 5. Snapshot the warm fleet, restore it under THREE shards, and
    #    verify the restored fleet answers identically.
    with tempfile.TemporaryDirectory() as tmp:
        registry = ModelRegistry(tmp)
        gateway.snapshot(registry, "warm-fleet")
        manifest = registry.load_fleet_manifest("warm-fleet")
        print(
            f"\nsnapshot 'warm-fleet': {len(manifest['instances'])} member "
            f"states + one manifest (saved from {manifest['n_shards']} shards)"
        )

        probe = [(iid, record) for iid, record in live[:50]]
        want = [gateway.predict(iid, record).exec_time for iid, record in probe]
        gateway.close()

        restored = FleetGateway.restore(
            registry, "warm-fleet", config=GatewayConfig(n_shards=3)
        )
        got = [restored.predict(iid, record).exec_time for iid, record in probe]
        restored.close()

    assert got == want
    print("restored under 3 shards: 50/50 probe predictions bit-identical")


if __name__ == "__main__":
    main()
