"""Online serving: the Stage predictor as a long-lived service.

Runs one synthetic instance's traffic through a :class:`PredictionService`
the way Redshift sees it — concurrent clients submitting queries, cache
hits answered immediately, model-bound predictions micro-batched, and
execution outcomes fed back through ``observe`` (dedup rule + local
retrains on the service's worker thread).  Then snapshots the warm
service into a :class:`ModelRegistry` and restarts it, showing the
warm restart reproduces predictions exactly.

Run:  python examples/online_service.py
"""

import tempfile
import threading

from repro import FleetConfig, FleetGenerator, fast_profile
from repro.core.config import ServiceConfig
from repro.service import ModelRegistry, PredictionService


def main() -> None:
    # 1. One synthetic customer instance and two days of queries.
    generator = FleetGenerator(FleetConfig(seed=11, volume_scale=0.5))
    instance = generator.sample_instance(0)
    trace = generator.generate_trace(instance, duration_days=2.0)
    warmup, live = trace[: len(trace) // 2], trace[len(trace) // 2 :]
    print(
        f"instance {instance.instance_id}: {instance.hardware.name} "
        f"x{instance.n_nodes}, {len(trace)} queries "
        f"({len(warmup)} warmup + {len(live)} live)"
    )

    # 2. Stand the service up and warm it with the first half of the traffic.
    service = PredictionService(
        instance,
        stage_config=fast_profile(),
        service_config=ServiceConfig(max_batch_size=16, max_batch_latency_ms=5.0),
    )
    for record in warmup:
        service.predict_async(record)
        service.observe(record)
    service.drain()

    # 3. Serve the second half from four concurrent clients.
    position = {"next": 0}
    lock = threading.Lock()

    def client() -> None:
        while True:
            with lock:
                i = position["next"]
                if i >= len(live):
                    return
                position["next"] = i + 1
            record = live[i]
            prediction = service.predict(record)
            if i % 200 == 0:
                print(
                    f"  q{record.query_id}: predicted "
                    f"{prediction.exec_time:8.2f}s via {prediction.source:<7}"
                    f" (actual {record.exec_time:8.2f}s)"
                )
            service.observe(record)

    threads = [threading.Thread(target=client) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    service.drain()

    stats = service.stats()
    stage, sched = stats["stage"], stats["scheduler"]
    print(
        f"\nserved {sched['n_predicts']} predictions: "
        f"{sched['n_immediate']} immediate (cache/cold-start), "
        f"{sched['n_deferred']} micro-batched into {sched['n_batches']} "
        f"ensemble calls (largest batch {sched['max_batch_size']})"
    )
    print(
        f"cache hit rate {stage['cache_hit_rate']:.1%}, "
        f"local retrains {stage['n_local_retrains']}, "
        f"sources {stage['source_counts']}"
    )

    # 4. Warm restart: snapshot, reload, and verify identical behavior.
    with tempfile.TemporaryDirectory() as root:
        registry = ModelRegistry(root)
        service.snapshot(registry, "end-of-day")
        probe = live[-5:]
        before = [service.predict(r).exec_time for r in probe]
        service.close()

        restarted = PredictionService.restore(registry, "end-of-day")
        after = [restarted.predict(r).exec_time for r in probe]
        restarted.close()
    assert before == after
    print(
        f"\nwarm restart: snapshot reloaded, {len(probe)} probe "
        "predictions reproduced bit-for-bit"
    )


if __name__ == "__main__":
    main()
