"""What-if analysis: hypothetical cluster scaling with the global model.

Paper Section 6.1 proposes using the transferable global model for
hypothetical reasoning — "what if the cluster adds 3 nodes?".  Because
the global model conditions on *public* instance features (node count,
hardware class, memory), predicting under a modified instance profile
answers the what-if question without executing anything.

This example trains a global model on a fleet, then sweeps the node
count of one instance and reports the predicted exec-time of its
heaviest queries — alongside the generator's true scaling law, which an
operator would not have.

Run:  python examples/what_if_scaling.py
"""

import dataclasses

import numpy as np

from repro import FleetConfig, FleetGenerator
from repro.core.config import GlobalModelConfig
from repro.global_model import GlobalModelTrainer, record_to_graph
from repro.harness.reporting import render_simple_table


def main() -> None:
    generator = FleetGenerator(FleetConfig(seed=23, volume_scale=0.35))
    print("training the global model on 10 instances...")
    train = generator.generate_fleet_traces(10, 2.0, start_index=700)
    model = GlobalModelTrainer(
        GlobalModelConfig(hidden_dim=48, n_conv_layers=4, epochs=20)
    ).train(train)

    instance = generator.sample_instance(4)
    trace = generator.generate_trace(instance, 1.0)
    # the heaviest few queries are the ones a resize decision hinges on
    heavy = sorted(trace, key=lambda r: r.exec_time, reverse=True)[:5]
    print(
        f"\ninstance {instance.instance_id}: {instance.hardware.name} "
        f"x{instance.n_nodes} nodes; asking: what if we resize?\n"
    )

    node_options = sorted({max(2, instance.n_nodes // 2), instance.n_nodes, instance.n_nodes * 2})
    rows = []
    for record in heavy:
        row = [f"q{record.query_id} ({record.exec_time:.0f}s actual)"]
        for n_nodes in node_options:
            hypothetical = dataclasses.replace(instance, n_nodes=n_nodes)
            graph = record_to_graph(record.plan, hypothetical)
            pred = float(model.predict_graphs([graph])[0])
            row.append(f"{pred:.1f}s")
        rows.append(row)

    headers = ["query"] + [
        f"{n} nodes{' (now)' if n == instance.n_nodes else ''}"
        for n in node_options
    ]
    print(render_simple_table("Predicted exec-time under resize", headers, rows))

    # sanity: the generator's ground truth says exec ~ 1/nodes^0.8
    speedup_true = (node_options[-1] / node_options[0]) ** 0.8
    print(
        f"\n(generator ground truth: {node_options[-1]} vs {node_options[0]} nodes "
        f"=> ~{speedup_true:.1f}x speedup; the model learned its own "
        "estimate of this from cross-fleet data)"
    )


if __name__ == "__main__":
    main()
