"""Cold start: the global model rescues brand-new instances.

A new Redshift customer has no executed queries, so the cache is empty
and the local model cannot train — the scenario that motivates the
transferable global model (paper Sections 1, 4.4).  This example replays
the *first day* of a fresh instance twice: once with cache+local only,
once with the fleet-trained global model attached, and compares accuracy
over the first N queries.

Run:  python examples/cold_start.py
"""

import numpy as np

from repro import FleetConfig, FleetGenerator, StagePredictor, fast_profile
from repro.core.config import GlobalModelConfig
from repro.core.metrics import summarize_errors
from repro.global_model import GlobalModelTrainer


def replay_cold(trace, global_model):
    stage = StagePredictor(trace.instance, global_model=global_model, config=fast_profile())
    preds, true = [], []
    for record in trace:
        preds.append(stage.predict(record).exec_time)
        stage.observe(record)
        true.append(record.exec_time)
    return np.asarray(true), np.asarray(preds), stage


def main() -> None:
    generator = FleetGenerator(FleetConfig(seed=19, volume_scale=0.35))

    print("training the global model on 8 disjoint instances...")
    train_traces = generator.generate_fleet_traces(8, duration_days=2.0, start_index=500)
    global_model = GlobalModelTrainer(
        GlobalModelConfig(hidden_dim=48, n_conv_layers=4, epochs=20)
    ).train(train_traces)

    # A brand-new instance: day one, nothing cached, nothing trained.
    # Instance 5 is ad-hoc-heavy — no repetition for the cache to exploit,
    # which is exactly where cold start hurts.
    trace = generator.generate_trace(generator.sample_instance(5), 1.0)
    first_n = min(60, len(trace))
    print(f"fresh instance {trace.instance.instance_id}: replaying day 1 "
          f"({len(trace)} queries), scoring the first {first_n}\n")

    for label, gm in (("cache+local only", None), ("with global model", global_model)):
        true, preds, stage = replay_cold(trace, gm)
        summary = summarize_errors(true[:first_n], preds[:first_n])
        print(
            f"{label:>18}: MAE={summary.mean:8.2f}s  P50-AE={summary.p50:7.3f}s  "
            f"P90-AE={summary.p90:8.2f}s  sources={stage.source_counts}"
        )

    print(
        "\nWith no history, cache+local fall back to a running-median "
        "default; the global model predicts from the plan alone, which is "
        "why Redshift ships one model for the whole fleet."
    )


if __name__ == "__main__":
    main()
