"""Workload forecasting: pre-warm the cache, retrain in the troughs.

Production workloads are seasonal — dashboards refresh on the clock,
reports cluster in business hours, ETL runs at night — so the serving
layer can act *before* load arrives instead of only reacting to it.
This example fits a per-instance :class:`~repro.forecast.WorkloadForecast`
on one day of history, prints what it learned (busy bins, quiet bins,
which templates are due to recur), then replays the same workload twice
at cache pressure — reactive vs forecast-driven — and compares cache
hit rates.  Finally it asks the forecast-aware service for its
recommended maintenance window (where an ANALYZE refresh should land).

Run:  python examples/forecast_serving.py
"""

from dataclasses import replace

from repro import FleetConfig, FleetGenerator, fast_profile
from repro.core.config import CacheConfig, ForecastConfig
from repro.forecast import WorkloadForecast
from repro.harness import replay_instance
from repro.service import PredictionService


def hit_rate(replay) -> float:
    stats = replay.stage_stats
    return stats["cache_hits"] / max(stats["cache_hits"] + stats["cache_misses"], 1)


def main() -> None:
    generator = FleetGenerator(FleetConfig(seed=11, volume_scale=0.4))
    trace = generator.generate_trace(generator.sample_instance(0), 2.0)

    # --- what the forecaster learns from one day of history -----------
    config = ForecastConfig()
    forecast = WorkloadForecast(config, seed=1).fit_trace(
        trace[: len(trace) // 2]
    )
    print(f"fit on {forecast.n_observed} arrivals "
          f"({forecast.n_bins} bins of {forecast.bin_seconds / 60:.0f} min)")
    rates = [forecast.arrivals.expected_count(b) for b in range(forecast.n_bins)]
    busiest = max(range(forecast.n_bins), key=lambda b: rates[b])
    print(f"busiest phase bin: {busiest} "
          f"(~{busiest / 2:.0f}:00, {rates[busiest]:.1f} arrivals/bin)")
    trough = forecast.next_trough(trace[len(trace) // 2].arrival_time)
    if trough is not None:
        hour = (trough % 86_400.0) / 3600.0
        print(f"next forecast trough starts at ~{hour:04.1f}h")
    due = forecast.hot_keys(trace[len(trace) // 2].arrival_time, k=5)
    print(f"templates due to recur next: {len(due)} "
          f"(e.g. {due[0][:12]}...)" if due else "no templates due yet")

    # --- forecast-driven vs reactive serving under cache pressure -----
    reactive_cfg = replace(fast_profile(), cache=CacheConfig(capacity=16))
    forecast_cfg = replace(reactive_cfg, forecast=config)
    print("\nreplaying 2 days at cache capacity 16...")
    reactive = replay_instance(trace, config=reactive_cfg)
    proactive = replay_instance(trace, config=forecast_cfg)
    pre = proactive.stage_stats
    print(f"   reactive LRU: hit rate {hit_rate(reactive):.3f}")
    print(f"forecast-driven: hit rate {hit_rate(proactive):.3f} "
          f"({pre['n_prewarm_touches']} pre-warm touches, "
          f"{pre['n_prewarm_restores']} archive restores)")

    # --- the service's maintenance-window recommendation --------------
    with PredictionService(trace.instance, stage_config=forecast_cfg) as service:
        for record in trace:
            service.observe(record)
        service.drain()
        window = service.maintenance_window()
    if window is None:
        print("\nno maintenance window recommended (no trough in sight)")
    else:
        hour = (window["start_s"] % 86_400.0) / 3600.0
        print(f"\nrecommended maintenance window: ~{hour:04.1f}h "
              f"(one {window['bin_seconds'] / 60:.0f}-minute forecast trough)")
    print("pre-warming, trough retrains and the rebalancer's forecast load "
          "all ride the same per-instance forecast state.")


if __name__ == "__main__":
    main()
