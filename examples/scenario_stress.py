"""Stress scenarios: how workload mutations move the predictor's dials.

The scenario engine composes the failure modes the paper's robustness
story is about — flash-crowd burst storms, template churn, ANALYZE
outages, instance resizes — as declarative, per-instance-seeded
mutations over the synthetic fleet.  This example runs a three-scenario
slice of the built-in matrix (direct path *and* through the online
PredictionService, which must agree bit-for-bit), then registers a
custom composite "black friday" scenario: a burst storm during an
ANALYZE outage on a freshly resized cluster.

Run:  python examples/scenario_stress.py
"""

from dataclasses import replace

import numpy as np

from repro.scenarios import (
    Scenario,
    ScenarioConfig,
    ScenarioRunner,
    ScenarioSweepConfig,
    get_scenario,
    register_scenario,
    render_matrix,
)

SWEEP = ScenarioSweepConfig(seed=23, n_instances=2, duration_days=1.0, volume_scale=0.15)


def main() -> None:
    scenarios = [get_scenario(name) for name in ("baseline", "burst_storm", "template_churn")]

    print("replaying a 3-scenario slice of the built-in matrix...\n")
    results = ScenarioRunner(SWEEP, scenarios=scenarios).run_matrix()
    print(render_matrix(results, SWEEP))

    print("\nre-running through the online PredictionService (3 clients)...")
    via = ScenarioRunner(
        replace(SWEEP, via_service=True, service_clients=3), scenarios=scenarios
    ).run_matrix()
    for direct_result, via_result in zip(results, via):
        for a, b in zip(direct_result.replays, via_result.replays):
            assert np.array_equal(a.stage_pred, b.stage_pred)
            assert a.stage_stats == b.stage_stats
    print("direct and serving paths agree bit-for-bit on every scenario.")

    # A custom scenario is one register_scenario call; the parity suites
    # in tests/test_scenarios.py pick it up automatically if registered
    # at import time.
    black_friday = register_scenario(
        Scenario(
            "black_friday",
            "burst storm during an ANALYZE outage on a resized cluster",
            ScenarioConfig(
                burst_storms_per_week=21.0,
                burst_multiplier=10.0,
                analyze_outages_per_week=7.0,
                analyze_outage_days=3.0,
                resize_events_per_week=7.0,
                resize_factor_low=1.5,
                resize_factor_high=3.0,
            ),
        )
    )
    print("\nregistered a custom composite scenario; replaying it...\n")
    composite = ScenarioRunner(SWEEP, scenarios=[scenarios[0], black_friday]).run_matrix()
    print(render_matrix(composite, SWEEP))

    base_m = composite[0].metrics
    bf_m = composite[1].metrics
    print(
        f"\nblack friday vs baseline: {bf_m['n_queries'] / base_m['n_queries']:.1f}x "
        f"the queries, hit rate {base_m['cache_hit_rate']:.2f} -> "
        f"{bf_m['cache_hit_rate']:.2f}, Stage still "
        f"{bf_m['improvement']:+.0%} vs AutoWLM"
    )


if __name__ == "__main__":
    main()
