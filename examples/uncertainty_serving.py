"""Calibrated intervals through the live serving layer.

Every prediction in the pipeline now carries a calibrated interval at
the nominal confidence — Welford-derived for exec-time-cache hits,
member-spread quantile bounds for the local ensemble, residual-variance
for the global model.  This example drives a live
:class:`~repro.service.PredictionService` with the online
predict/observe protocol and shows (a) the interval riding on each
served prediction, (b) the service's interval-width percentiles, (c)
the empirical coverage of the served intervals, and (d) the fleet-level
calibration scorecard (the committed, drift-gated artifact).

Run:  python examples/uncertainty_serving.py
"""

import numpy as np

from repro.core.config import fast_profile
from repro.ml.intervals import NOMINAL_CONFIDENCE, empirical_coverage
from repro.scenarios import run_calibration
from repro.service import PredictionService
from repro.workload import FleetConfig, FleetGenerator


def main() -> None:
    gen = FleetGenerator(FleetConfig(seed=23, volume_scale=0.2))
    trace = gen.generate_trace(gen.sample_instance(0), 1.5)
    print(f"serving {len(trace)} queries from {trace.instance.instance_id}...")

    served = []
    with PredictionService(trace.instance, stage_config=fast_profile()) as service:
        for record in trace:
            prediction = service.predict(record)
            served.append((record.exec_time, prediction))
            service.observe(record)
        service.drain()
        stats = service.stats()["stage"]

    # --- (a) intervals ride on every served prediction -----------------
    print("\nlast served predictions (point [low, high] source):")
    for true, p in served[-5:]:
        print(
            f"  true {true:8.2f}s   pred {p.exec_time:8.2f}s "
            f"[{p.interval_low:8.2f}, {p.interval_high:8.2f}]  {p.source}"
        )

    # --- (b) width percentiles from the serving stats -------------------
    print(
        f"\ninterval width percentiles (serving stats): "
        f"p50 <= {stats['interval_width_p50']:g}s, "
        f"p90 <= {stats['interval_width_p90']:g}s"
    )

    # --- (c) empirical coverage of what was actually served --------------
    true = np.array([t for t, _ in served])
    low = np.array([p.interval_low for _, p in served])
    high = np.array([p.interval_high for _, p in served])
    coverage = empirical_coverage(true, low, high)
    print(
        f"served-interval coverage: {coverage:.3f} "
        f"(nominal {NOMINAL_CONFIDENCE:.2f}; degenerate cold-start and "
        "single-observation intervals drag it down)"
    )

    # --- (d) the fleet-level calibration scorecard ----------------------
    print("\nrunning the committed-scale calibration sweep...")
    _, report = run_calibration()
    print("\n" + report)


if __name__ == "__main__":
    main()
