"""Uncertainty-aware routing: when should Stage pay for the global model?

The local model's Bayesian ensemble returns a prediction *and* an
uncertainty (paper Eq. 1-2).  This example shows (a) that the uncertainty
ranks errors well — the PRR analysis of Figures 10-11 — and (b) how the
uncertainty threshold trades global-model invocations against accuracy
on the escalated queries, the economics behind "the global model is
rarely used, so its cost is amortized out".

Run:  python examples/uncertainty_routing.py
"""

import numpy as np

from repro.core.metrics import absolute_errors, prr_curves, prr_score
from repro.harness import SweepConfig, run_sweep
from repro.harness.reporting import render_simple_table


def main() -> None:
    print("running sweep...")
    sweep = run_sweep(
        SweepConfig(
            seed=11,
            n_eval_instances=8,
            n_train_instances=6,
            duration_days=2.0,
            volume_scale=0.25,
        )
    )

    # --- (a) PRR: does uncertainty predict error? (Figures 10-11) ------
    scores = []
    for replay in sweep.replays:
        mask = replay.cache_miss_mask & replay.local_ready_mask
        if mask.sum() < 30:
            continue
        errors = absolute_errors(replay.true[mask], replay.local_pred[mask])
        scores.append(prr_score(errors, replay.local_std[mask]))
    print(
        f"\nPRR across {len(scores)} instances: "
        f"median={np.median(scores):.2f} mean={np.mean(scores):.2f} "
        "(1.0 = uncertainty ranks errors perfectly)"
    )

    # ASCII rendition of Figure 10's cumulative-error curves
    replay = max(
        sweep.replays,
        key=lambda r: (r.cache_miss_mask & r.local_ready_mask).sum(),
    )
    mask = replay.cache_miss_mask & replay.local_ready_mask
    errors = absolute_errors(replay.true[mask], replay.local_pred[mask])
    fractions, oracle, by_unc, random = prr_curves(errors, replay.local_std[mask])
    print(f"\ncumulative error covered after rejecting x% of queries " f"({replay.instance_id}):")
    for pct in (10, 25, 50, 75):
        i = int(pct / 100 * (len(fractions) - 1))
        print(
            f"  reject {pct:2d}%: oracle {oracle[i]:.0%}  "
            f"by-uncertainty {by_unc[i]:.0%}  random {random[i]:.0%}"
        )

    # --- (b) threshold sweep: routing economics ------------------------
    true = sweep.pooled("true")
    local = sweep.pooled("local_pred")
    local_std = sweep.pooled("local_std")
    global_pred = sweep.pooled("global_pred")
    eligible = ~np.isnan(local)

    rows = []
    for threshold in (0.4, 0.8, 1.2, 1.6, 2.0):
        routed = eligible & (local_std >= threshold) & (local >= 2.0)
        frac = routed.sum() / max(eligible.sum(), 1)
        if routed.sum() == 0:
            rows.append([f"{threshold:.1f}", "0%", "-", "-"])
            continue
        mae_local = np.abs(true[routed] - local[routed]).mean()
        mae_global = np.abs(true[routed] - global_pred[routed]).mean()
        rows.append(
            [
                f"{threshold:.1f}",
                f"{frac:.1%}",
                f"{mae_local:.1f}s",
                f"{mae_global:.1f}s",
            ]
        )
    print()
    print(
        render_simple_table(
            "Routing threshold sweep (escalated = uncertain AND predicted long)",
            ["std threshold", "escalated", "local MAE on escalated", "global MAE on escalated"],
            rows,
        )
    )


if __name__ == "__main__":
    main()
