"""Elastic fleet: live resharding under traffic, no dropped ops.

The production fleet's capacity tracks its workload: shards are added
and removed, and hot instances move to cooler shards, all while every
instance keeps serving.  This example stands a small fleet up behind a
:class:`~repro.service.FleetGateway`, drives live traffic from one
thread per instance, and — mid-stream — migrates an instance between
shards, grows and shrinks the shard set, and runs one
:class:`~repro.service.FleetController` rebalance cycle.  The routing
table is versioned and every cutover buffers the in-flight tail of the
moving instance's op stream, so the predictions are exactly what a
static fleet would have produced.

Run:  python examples/elastic_fleet.py
"""

import threading

from repro import FleetConfig, FleetGenerator, fast_profile
from repro.core.config import ControlConfig, GatewayConfig
from repro.service import FleetController, FleetGateway


def main() -> None:
    # 1. A small fleet: three synthetic customer instances, two shards.
    generator = FleetGenerator(FleetConfig(seed=11, volume_scale=0.25))
    traces = [
        generator.generate_trace(generator.sample_instance(i), duration_days=1.0)
        for i in range(3)
    ]
    gateway = FleetGateway(GatewayConfig(n_shards=2), stage_config=fast_profile())
    try:
        for trace in traces:
            shard = gateway.register_instance(trace.instance)
            print(f"instance {trace.instance.instance_id}: shard {shard}")
        print(f"routing table v{gateway.routes()['version']}: "
              f"{gateway.routes()['assignments']}")

        # 2. Live traffic: one submitter thread per instance (arrival
        #    order is sequence order — no replay reservations here).
        results = {}

        def serve(trace):
            instance_id = trace.instance.instance_id
            futures = [
                (gateway.predict_async(instance_id, record),
                 gateway.observe(instance_id, record))[0]
                for record in trace
            ]
            results[instance_id] = [f.result(timeout=300) for f in futures]

        threads = [threading.Thread(target=serve, args=(t,)) for t in traces]
        for thread in threads:
            thread.start()

        # 3. Reshard while the streams are in flight.  Each migration
        #    quiesces the instance on its source shard, hands its state
        #    over through a snapshot, buffers the tail of its stream,
        #    and atomically flips the routing-table entry.
        hot = traces[0].instance.instance_id
        source = gateway.routes()["assignments"][hot]
        info = gateway.migrate_instance(hot, 1 - source, timeout=300)
        print(f"migrated {hot}: shard {info['source']} -> {info['target']} "
              f"(cut seq {info['cut_seq']}, {info['buffered_ops']} ops buffered, "
              f"routes v{info['routes_version']})")

        grown = gateway.resize(3, timeout=300)
        print(f"grew fleet to {grown['n_shards']} shards "
              f"(moved: {grown['migrated']}, routes v{grown['routes_version']})")

        # 4. One load-watching rebalance cycle over the live stats
        #    (per-shard queue depth + cumulative per-instance op totals).
        controller = FleetController(
            gateway, ControlConfig(imbalance_tolerance=0.1, min_total_ops=1)
        )
        plan = controller.step()
        print(f"rebalancer: shard loads {plan.shard_loads} -> "
              f"{len(plan.migrations)} migration(s) executed")

        shrunk = gateway.resize(2, timeout=300)
        print(f"shrank fleet to {shrunk['n_shards']} shards "
              f"(moved: {shrunk['migrated']})")

        for thread in threads:
            thread.join()
        gateway.drain()

        # 5. Every op of every stream was answered, in sequence, despite
        #    the resharding happening underneath.
        stats = gateway.stats()
        for trace in traces:
            instance_id = trace.instance.instance_id
            served = len(results[instance_id])
            counters = stats["instances"][instance_id]["scheduler"]
            print(f"{instance_id}: {served}/{len(trace)} predictions served, "
                  f"{counters['n_predicts']} predicts + "
                  f"{counters['n_observes']} observes executed")
            assert served == len(trace)
        print(f"final routing table v{stats['routes']['version']}: "
              f"{stats['routes']['assignments']}")
    finally:
        gateway.close()


if __name__ == "__main__":
    main()
