"""Table 1 / Figure 8: absolute-error accuracy of Stage vs AutoWLM.

Paper claims: Stage is >2x more accurate overall (MAE 7.76 vs 17.87) and
>3x better on queries under 60 s; both predictors degrade on long
queries (sparse training data, noisy labels).
"""

from conftest import write_result

from repro.core.metrics import bucketed_summary
from repro.harness import accuracy_table


def test_table1_absolute_error(benchmark, sweep, results_dir):
    table = benchmark(accuracy_table, sweep, "absolute")
    write_result(results_dir, "table1_absolute_error_and_fig8", table)

    true = sweep.pooled("true")
    stage = bucketed_summary(true, sweep.pooled("stage_pred"))
    auto = bucketed_summary(true, sweep.pooled("autowlm_pred"))

    # Stage wins overall on MAE and tail error
    assert stage["Overall"].mean < auto["Overall"].mean
    assert stage["Overall"].p90 <= auto["Overall"].p90 * 1.05
    # the short bucket (where the cache dominates) is a clear Stage win
    assert stage["0s - 10s"].mean < auto["0s - 10s"].mean
    assert stage["0s - 10s"].p50 <= auto["0s - 10s"].p50
    # errors grow with exec-time for both predictors (paper's Figure 8)
    assert stage["300s+"].mean > stage["0s - 10s"].mean
    assert auto["300s+"].mean > auto["0s - 10s"].mean
