"""Perf: fleet-gateway serving, swept over a shards x clients grid.

Stands a small fleet of instances up behind one
:class:`~repro.service.FleetGateway` and measures interleaved fleet
traffic at every (shards, clients) grid point, writing
``results/gateway_bench.txt``.  The numbers are machine-dependent
timing context (the file is exempt from CI's results-drift gate, like
``service_bench.txt``); what is *asserted* is the part that must hold
anywhere:

- the gateway determinism contract — every grid point serves
  bit-identical predictions for the measured traffic (checked inside
  :func:`run_gateway_bench` itself);
- the sweep ran the full grid end-to-end.

The grid here is scaled down for the 1-core CI budget; the CLI
(``python -m repro.service bench --gateway``) runs the full default
grid.
"""

from conftest import write_result

from repro.core.config import fast_profile
from repro.service import GatewayBenchConfig, run_gateway_bench

BENCH = GatewayBenchConfig(
    n_instances=4,
    duration_days=1.0,
    volume_scale=0.15,
    shard_counts=(1, 2),
    client_counts=(2, 8),
    stage=fast_profile(),
)


def test_gateway_grid_serves_bit_identically(results_dir):
    result = run_gateway_bench(BENCH)
    report = result.render()
    write_result(results_dir, "gateway_bench", report)
    print("\n" + report)

    assert len(result.rows) == len(BENCH.shard_counts) * len(BENCH.client_counts)
    assert result.n_measured > 0
    assert all(row["qps"] > 0 for row in result.rows)
    # the fleet determinism contract, verified while benchmarking
    assert result.predictions_identical
