"""Perf: fleet-gateway serving, swept over a shards x clients grid.

Stands a small fleet of instances up behind one
:class:`~repro.service.FleetGateway` and measures interleaved fleet
traffic at every (shards, clients) grid point, writing
``results/gateway_bench.txt``.  The numbers are machine-dependent
timing context (the file is exempt from CI's results-drift gate, like
``service_bench.txt``); what is *asserted* is the part that must hold
anywhere:

- the gateway determinism contract — every grid point serves
  bit-identical predictions for the measured traffic (checked inside
  :func:`run_gateway_bench` itself);
- the sweep ran the full grid end-to-end;
- a throughput floor: sharding must not collapse the gateway's
  throughput relative to the single-service (``shards=1``) baseline at
  the same client count.  The floor carries a tolerance because a
  1-core CI runner gives sharding nothing to parallelize and timing
  noise there is large; it exists to catch structural regressions like
  a serialized transport, not to certify a speedup.

The grid here is scaled down for the 1-core CI budget; the CLI
(``python -m repro.service bench --gateway``) runs the full default
grid.
"""

from conftest import write_result

from repro.core.config import fast_profile
from repro.service import GatewayBenchConfig, run_gateway_bench

BENCH = GatewayBenchConfig(
    n_instances=4,
    duration_days=1.0,
    volume_scale=0.15,
    shard_counts=(1, 2),
    client_counts=(2, 8),
    repeats=3,
    stage=fast_profile(),
)

#: sharded throughput may not fall below this fraction of the
#: single-shard baseline at the same client count (noise headroom for
#: the 1-core CI runner; the pre-overhaul deficit this guards against
#: measured ~0.6x)
FLOOR_FRACTION = 0.7


def test_gateway_grid_serves_bit_identically(results_dir):
    result = run_gateway_bench(BENCH)
    report = result.render()
    write_result(results_dir, "gateway_bench", report)
    print("\n" + report)

    assert len(result.rows) == len(BENCH.shard_counts) * len(BENCH.client_counts)
    assert result.n_measured > 0
    assert all(row["qps"] > 0 for row in result.rows)
    # the fleet determinism contract, verified while benchmarking
    assert result.predictions_identical

    # throughput floor: sharding must never collapse vs the shards=1
    # baseline at the same client count
    baseline = {
        row["clients"]: row["qps"] for row in result.rows if row["shards"] == 1
    }
    for row in result.rows:
        if row["shards"] == 1:
            continue
        floor = FLOOR_FRACTION * baseline[row["clients"]]
        assert row["qps"] >= floor, (
            f"shards={row['shards']:.0f} clients={row['clients']:.0f} "
            f"reached only {row['qps']:.0f} q/s — below {floor:.0f} "
            f"({FLOOR_FRACTION:.0%} of the single-shard baseline)"
        )
