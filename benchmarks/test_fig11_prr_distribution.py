"""Figure 11: PRR distribution across instances.

Paper claims: the local model's uncertainty quality is high across the
fleet — median PRR ~0.9, ~30% of instances near 1.0, with a low-score
tail on instances with too few training queries.
"""

import numpy as np

from conftest import write_result

from repro.harness import prr_analysis
from repro.harness.reporting import render_simple_table


def test_fig11_prr_distribution(benchmark, sweep, results_dir):
    prr = benchmark(prr_analysis, sweep)

    values = np.array([s for _, s in prr["scores"]])
    hist, edges = np.histogram(values, bins=np.linspace(-0.25, 1.0, 6))
    rows = [[f"{edges[i]:.2f}..{edges[i + 1]:.2f}", int(c)] for i, c in enumerate(hist)]
    rows.append(["median", f"{prr['median']:.2f} (paper: 0.90)"])
    rows.append(["mean", f"{prr['mean']:.2f}"])
    table = render_simple_table(
        "Figure 11: PRR distribution across instances",
        ["PRR bin", "# instances"],
        rows,
    )
    write_result(results_dir, "fig11_prr_distribution", table)

    assert len(prr["scores"]) >= 5
    # uncertainty is informative on the typical instance
    assert prr["median"] > 0.25
    # and excellent on at least one (the paper's near-1.0 cluster)
    assert values.max() > 0.6
