"""Table 5: global vs local model on all cache-miss queries.

Paper claims ("better data beats bigger data"): despite training on far
more data, the global model loses to the instance-optimized local model
on the overall cache-miss population — the local model's training data
matches the test distribution, and hidden per-instance factors (config,
data layout) are invisible to the global model.
"""

from conftest import write_result

from repro.harness import component_summaries, component_table


def test_table5_global_vs_local(benchmark, sweep, results_dir):
    table = benchmark(component_table, sweep, "table5")
    write_result(results_dir, "table5_global_vs_local", table)

    global_, local, n = component_summaries(sweep, "table5")
    assert n > 100

    # the paper's headline: local wins overall on in-distribution misses
    assert local["Overall"].mean <= global_["Overall"].mean * 1.1
    # the mid buckets (where most miss mass lives) favour the local model
    assert local["10s - 60s"].mean <= global_["10s - 60s"].mean * 1.1
    # yet the global model remains in the same league (it is not broken —
    # that is what makes it a usable escalation target)
    assert global_["Overall"].mean < local["Overall"].mean * 5.0
