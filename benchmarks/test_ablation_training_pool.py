"""Ablation: training-pool dedup and duration bucketing (paper 4.3).

Without duration bucketing, the flood of sub-second queries evicts the
rare long queries from the bounded pool, and the local model's accuracy
on long queries collapses.  Without cache-dedup, repeated queries crowd
the pool, shrinking its *diversity* (distinct queries retained).
"""

from conftest import write_result

from repro.cache import ExecTimeCache
from repro.core.config import TrainingPoolConfig
from repro.harness.reporting import render_simple_table
from repro.local_model import TrainingPool
from repro.workload import FleetConfig, FleetGenerator


def _run_pool(trace, bucketed: bool, dedup: bool, max_size=300):
    shares = (
        ((10.0, 0.6), (60.0, 0.25), (float("inf"), 0.15))
        if bucketed
        else ((float("inf"), 1.0),)
    )
    pool = TrainingPool(TrainingPoolConfig(max_size=max_size, bucket_shares=shares))
    cache = ExecTimeCache(capacity=2000)
    for record in trace:
        key = cache.key_for(record.features)
        hit = key in cache
        pool.add(record.features, record.exec_time, cache_hit=hit and dedup)
        cache.observe(key, record.exec_time)
    return pool


def test_ablation_training_pool(benchmark, results_dir):
    gen = FleetGenerator(FleetConfig(seed=55, volume_scale=0.4))
    # a dashboard-heavy instance: many short repeats + a few long queries
    trace = None
    for i in range(10):
        inst = gen.sample_instance(i)
        if inst.kind_weights.get("dashboard", 0) > 0.5:
            trace = gen.generate_trace(inst, 2.5)
            if len(trace) > 800:
                break
    assert trace is not None

    variants = {
        "full (dedup+buckets)": _run_pool(trace, bucketed=True, dedup=True),
        "no bucketing": _run_pool(trace, bucketed=False, dedup=True),
        "no dedup": _run_pool(trace, bucketed=True, dedup=False),
    }
    benchmark.pedantic(_run_pool, args=(trace, True, True), iterations=1, rounds=1)

    stats = {}
    rows = []
    for name, pool in variants.items():
        X, y = pool.dataset()
        n_long = int((y >= 10.0).sum())
        n_distinct = len({tuple(row) for row in X})
        stats[name] = (n_long, n_distinct)
        rows.append([name, len(pool), n_long, n_distinct])
    table = render_simple_table(
        "Ablation: training pool composition",
        ["variant", "pool size", "# long (>=10s)", "# distinct queries"],
        rows,
    )
    write_result(results_dir, "ablation_training_pool", table)

    full_long, full_distinct = stats["full (dedup+buckets)"]
    nobucket_long, _ = stats["no bucketing"]
    _, nodedup_distinct = stats["no dedup"]
    # bucketing preserves long-query representation
    assert full_long >= nobucket_long
    # dedup preserves query diversity
    assert full_distinct >= nodedup_distinct
