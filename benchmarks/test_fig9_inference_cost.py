"""Figure 9: inference latency and memory of each predictor.

Paper claims: the exec-time cache answers in microseconds; the local
ensemble is ~10x the AutoWLM single model; the global deep model is
orders of magnitude larger than the tree models; Stage's *blended* cost
stays near the cache's because the expensive stages are rarely used.

Absolute numbers are machine-dependent (and our numpy GCN is far smaller
than the paper's 512-wide production model), so the assertions target
orderings, not microsecond values.
"""

from conftest import write_result

from repro.harness import inference_cost
from repro.harness.reporting import render_simple_table


def test_fig9_inference_cost(benchmark, sweep, results_dir):
    cost = benchmark.pedantic(
        inference_cost, args=(sweep,), kwargs={"n_probe": 150}, iterations=1, rounds=1
    )

    rows = [
        [
            name,
            f"{v['latency_s'] * 1e6:,.0f} us",
            f"{v['memory_bytes'] / 1024:,.0f} KiB",
        ]
        for name, v in cost.items()
    ]
    table = render_simple_table(
        "Figure 9: average inference latency and memory",
        ["predictor", "latency", "memory"],
        rows,
    )
    write_result(results_dir, "fig9_inference_cost", table)

    # the cache is by far the cheapest component
    assert cost["cache"]["latency_s"] < cost["local"]["latency_s"] / 10
    assert cost["cache"]["latency_s"] < cost["autowlm"]["latency_s"] / 10
    # the local K-model ensemble costs more than AutoWLM's single model
    assert cost["local"]["latency_s"] > cost["autowlm"]["latency_s"]
    assert cost["local"]["memory_bytes"] > cost["autowlm"]["memory_bytes"]
    # Stage's blended latency sits well below the local model's, because
    # most predictions are served by the cache (amortization argument)
    assert cost["stage"]["latency_s"] < cost["local"]["latency_s"]
    # the deep global model is the largest artifact
    assert cost["global"]["memory_bytes"] > cost["autowlm"]["memory_bytes"]
