"""Figure 10: PRR calculation on one example instance.

Paper claims: the local model's predicted uncertainty has a clear
positive relation with the realized absolute error; the cumulative-error
curve obtained by rejecting queries in uncertainty order tracks the
oracle curve (PRR ~0.9 for the example instance).
"""

import numpy as np

from conftest import write_result

from repro.core.metrics import absolute_errors, prr_curves, prr_score
from repro.harness.reporting import render_simple_table


def _best_example(sweep):
    best = None
    for replay in sweep.replays:
        mask = replay.cache_miss_mask & replay.local_ready_mask
        if mask.sum() < 50:
            continue
        errors = absolute_errors(replay.true[mask], replay.local_pred[mask])
        unc = replay.local_std[mask]
        score = prr_score(errors, unc)
        if best is None or score > best[1]:
            best = (replay.instance_id, score, errors, unc)
    return best


def test_fig10_prr_example(benchmark, sweep, results_dir):
    example = _best_example(sweep)
    assert example is not None, "no instance had enough cache misses"
    instance_id, score, errors, unc = example

    fractions, oracle, by_unc, random = benchmark(prr_curves, errors, unc)

    rows = []
    for pct in (5, 10, 25, 50, 75):
        i = int(pct / 100 * (len(fractions) - 1))
        rows.append([f"reject {pct}%", f"{oracle[i]:.0%}", f"{by_unc[i]:.0%}", f"{random[i]:.0%}"])
    table = render_simple_table(
        f"Figure 10: cumulative-error curves on {instance_id} (PRR={score:.2f})",
        ["rejected", "oracle", "by uncertainty", "random"],
        rows,
    )
    write_result(results_dir, "fig10_prr_example", table)

    # uncertainty must rank errors much better than random
    assert score > 0.3
    # curves are monotone non-decreasing and bounded by the oracle
    assert (np.diff(oracle) >= -1e-12).all()
    assert (np.diff(by_unc) >= -1e-12).all()
    assert (oracle >= by_unc - 1e-9).all()
