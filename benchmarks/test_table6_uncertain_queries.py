"""Table 6: global vs local model on *uncertain* queries.

Paper claims: restricted to the queries where the local model is
uncertain and predicts long — exactly the subset Stage escalates — the
ranking flips and the global model is more accurate overall (MAE 134.8
vs 164.7), with the local model's own accuracy dropping sharply versus
its all-misses numbers (evidence the uncertainty measure is reliable).
"""

from conftest import write_result

from repro.harness import component_summaries, component_table


def test_table6_global_vs_local_on_uncertain(benchmark, sweep, results_dir):
    table = benchmark(component_table, sweep, "table6")
    write_result(results_dir, "table6_uncertain_queries", table)

    global_, local, n_uncertain = component_summaries(sweep, "table6")
    _, local_all, n_all = component_summaries(sweep, "table5")

    # escalation is rare (paper: global model used ~3% of the time)
    total = sweep.pooled("true").shape[0]
    assert n_uncertain / total < 0.25

    if n_uncertain < 30:
        # not enough escalated queries at this scale to compare errors
        return

    # the paper's key flip: the global model beats the local model
    # exactly on the queries the local model flags as uncertain
    assert global_["Overall"].mean < local["Overall"].mean
    # the uncertainty is informative: within the short bucket, the local
    # model errs far more on its uncertain queries than on typical misses
    if local["0s - 10s"].n > 20 and local_all["0s - 10s"].n > 20:
        assert local["0s - 10s"].p50 > local_all["0s - 10s"].p50
