"""Ablation: the uncertainty threshold that routes to the global model.

Replays the routing rule offline over the sweep's recorded component
predictions: lower thresholds escalate more queries to the (expensive)
global model.  This is the accuracy/latency dial behind the paper's
"global model is used ~3% of the time" operating point.
"""

import numpy as np

from conftest import write_result

from repro.harness.reporting import render_simple_table

SHORT_CIRCUIT_S = 2.0


def _route(sweep, threshold):
    """Recompute Stage predictions under a different threshold."""
    true = sweep.pooled("true")
    cache = sweep.pooled("cache_pred")
    local = sweep.pooled("local_pred")
    std = sweep.pooled("local_std")
    glob = sweep.pooled("global_pred")

    pred = np.where(~np.isnan(cache), cache, np.nan)
    miss = np.isnan(pred)
    local_ok = miss & ~np.isnan(local)
    trust_local = local_ok & ((local < SHORT_CIRCUIT_S) | (std < threshold))
    pred[trust_local] = local[trust_local]
    escalate = miss & ~np.isnan(glob) & np.isnan(pred)
    pred[escalate] = glob[escalate]
    # anything left (cold start): fall back to local then global
    rest = np.isnan(pred)
    pred[rest & ~np.isnan(local)] = local[rest & ~np.isnan(local)]
    pred[np.isnan(pred)] = 1.0
    return pred, float(escalate.mean()), float(np.abs(pred - true).mean())


def test_ablation_routing_threshold(benchmark, sweep, results_dir):
    thresholds = (0.25, 0.5, 1.0, 1.5, 2.5, 1e9)
    rows = []
    escalations = []
    maes = []
    for t in thresholds:
        _, esc, mae = _route(sweep, t)
        label = "inf (never escalate)" if t > 100 else f"{t}"
        rows.append([label, f"{esc:.1%}", f"{mae:.2f}"])
        escalations.append(esc)
        maes.append(mae)

    benchmark.pedantic(_route, args=(sweep, 1.5), iterations=1, rounds=2)

    table = render_simple_table(
        "Ablation: uncertainty-threshold routing sweep",
        ["std threshold", "escalated to global", "overall MAE (s)"],
        rows,
    )
    write_result(results_dir, "ablation_routing_threshold", table)

    # escalation fraction decreases monotonically with the threshold
    assert all(
        a >= b - 1e-12 for a, b in zip(escalations, escalations[1:])
    )
    # every threshold keeps MAE within a sane band of the best setting
    assert max(maes) < min(maes) * 3.0
