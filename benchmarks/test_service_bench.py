"""Perf: online serving throughput, micro-batched vs request-at-a-time.

Drives the :class:`~repro.service.PredictionService` with a generated
fleet trace (warmup with feedback, then concurrent prediction traffic)
and writes ``results/service_bench.txt``.  The asserted floor mirrors
the replay benchmark's: micro-batching must buy at least 1.5x the
request-at-a-time throughput.  That speedup is algorithmic — one
ensemble invocation per batch instead of per query — so it holds on any
core count; the recorded latency percentiles are machine-dependent
context.
"""

from conftest import write_result

from repro.service import ServiceBenchConfig, run_service_bench

MIN_SPEEDUP = 1.5


def test_micro_batched_serving_speedup(results_dir):
    result = run_service_bench(ServiceBenchConfig())
    report = result.render()
    write_result(results_dir, "service_bench", report)
    print("\n" + report)

    batched = result.modes["micro-batched"]
    sequential = result.modes["request-at-a-time"]
    # the batches really formed (this is what buys the throughput)
    assert batched["mean_batch"] > 1.5
    assert sequential["max_batch_size"] == 1.0
    assert result.speedup >= MIN_SPEEDUP, (
        f"micro-batched serving only {result.speedup:.2f}x the "
        f"request-at-a-time throughput (expected >= {MIN_SPEEDUP}x)"
    )
