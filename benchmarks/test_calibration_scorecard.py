"""Calibration scorecard: empirical interval coverage per source.

Runs the committed-scale calibration sweep (the same one
``python -m repro.scenarios calibration`` renders) and writes the
deterministic scorecard to ``results/calibration_scorecard.txt`` — the
committed file sits behind CI's results-drift gate, so a bare run must
reproduce it bit-for-bit.

The assertions pin the qualitative calibration claims: every source
populates, empirical coverage lands in a sane band around the nominal
confidence, the spread-based sources (ensemble, global) are never
degenerate, and the cache's Welford intervals admit some degenerate
(single-observation) entries without collapsing wholesale.
"""

from conftest import write_result

from repro.ml.intervals import NOMINAL_CONFIDENCE
from repro.scenarios import run_calibration


def test_calibration_scorecard(results_dir):
    rows, report = run_calibration()
    write_result(results_dir, "calibration_scorecard", report)
    print("\n" + report)

    by_source = {row.source: row for row in rows}
    assert set(by_source) == {"routed", "cache", "ensemble", "global"}
    for row in rows:
        assert row.n > 0, f"{row.source}: no scored rows"
        assert 0.0 <= row.coverage <= 1.0
        assert row.median_width >= 0.0

    # spread-based sources must be near (or above) nominal coverage
    assert by_source["ensemble"].coverage > NOMINAL_CONFIDENCE - 0.1
    assert by_source["global"].coverage > NOMINAL_CONFIDENCE - 0.1
    assert by_source["ensemble"].degenerate_fraction == 0.0
    assert by_source["global"].degenerate_fraction == 0.0

    # cache intervals come from repeat observations: some entries have a
    # single observation (degenerate), but the bulk must carry real width
    assert 0.0 < by_source["cache"].degenerate_fraction < 0.5
    assert by_source["cache"].coverage > 0.5

    # the routed mix can't be better-calibrated than its best component
    best = max(by_source["ensemble"].coverage, by_source["global"].coverage)
    assert by_source["routed"].coverage <= best + 1e-9
