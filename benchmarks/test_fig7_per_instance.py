"""Figure 7: per-instance latency improvement over AutoWLM.

Paper claims: Stage improves average latency on most instances, with
regressions on fewer than 10% of instances; the Optimal predictor's
improvement (the sort key of the figure) bounds Stage's on most
instances.
"""

from conftest import write_result

from repro.harness import end_to_end_comparison
from repro.harness.reporting import render_simple_table


def test_fig7_per_instance_improvement(benchmark, sweep, results_dir):
    def compute():
        return end_to_end_comparison(sweep)["per_instance"]

    per_instance = benchmark(compute)

    rows = [
        [
            d["instance_id"],
            f"{d['stage_improvement']:+.1%}",
            f"{d['optimal_improvement']:+.1%}",
        ]
        for d in per_instance
    ]
    table = render_simple_table(
        "Figure 7: per-instance mean-latency improvement over AutoWLM "
        "(sorted by Optimal)",
        ["instance", "stage", "optimal"],
        rows,
    )
    write_result(results_dir, "fig7_per_instance", table)

    # sorted by optimal improvement (the figure's x-axis ordering)
    optimal = [d["optimal_improvement"] for d in per_instance]
    assert optimal == sorted(optimal)
    # Stage improves most instances; regressions are a small minority
    regressed = sum(d["stage_improvement"] < 0 for d in per_instance)
    assert regressed / len(per_instance) <= 0.35
    improved = sum(d["stage_improvement"] > 0 for d in per_instance)
    assert improved / len(per_instance) >= 0.5
