"""Figure 1b: distribution of query latency across the fleet.

Paper claims: ~40% of Redshift queries execute in under 100 ms, and the
0.01%..99.99% latency range spans roughly 10^1 .. 10^7 milliseconds.
"""

import numpy as np

from conftest import write_result

from repro.harness.reporting import render_simple_table


def test_fig1b_latency_distribution(benchmark, fleet_stats, results_dir):
    exec_times = fleet_stats["exec_times"]

    def compute():
        return {
            p: float(np.percentile(exec_times * 1000.0, p))
            for p in (0.01, 1, 25, 50, 75, 90, 99, 99.9, 99.99)
        }

    percentiles = benchmark(compute)
    under_100ms = fleet_stats["fraction_under_100ms"]

    rows = [[f"p{p}", f"{v:,.1f} ms"] for p, v in percentiles.items()]
    rows.append(["fraction < 100 ms", f"{under_100ms:.0%} (paper: ~40%)"])
    table = render_simple_table(
        "Figure 1b: fleet query latency distribution",
        ["percentile", "latency"],
        rows,
    )
    write_result(results_dir, "fig1b_latency_distribution", table)

    # ~40% under 100ms, generous band
    assert 0.2 <= under_100ms <= 0.6
    # heavy tail spanning >= 4 decades between p1 and p99.9
    assert percentiles[99.9] / max(percentiles[1], 1e-9) > 1e4
    # longest queries run minutes-to-hours, like the paper's 10^7 ms
    assert exec_times.max() > 600.0
