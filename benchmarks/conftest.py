"""Shared fixtures for the benchmark suite.

The expensive artifacts — the evaluation sweep (global-model training +
online replay of every evaluation instance) and the fleet statistics —
are computed once per session and shared by all benchmark files; each
benchmark then times its own post-processing and asserts the paper's
qualitative claims.

Every benchmark also writes its rendered table to ``results/`` so the
numbers behind EXPERIMENTS.md can be regenerated with one command.
"""

from __future__ import annotations

import os

import pytest

from repro.core.config import GlobalModelConfig
from repro.harness import SweepConfig, fleet_statistics, run_sweep

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "..", "results")

#: the common scale used for all benchmark experiments
BENCH_SWEEP = SweepConfig(
    seed=2024,
    n_eval_instances=14,
    n_train_instances=10,
    duration_days=2.0,
    volume_scale=0.3,
    global_model=GlobalModelConfig(
        hidden_dim=48,
        n_conv_layers=4,
        epochs=20,
        max_queries_per_instance=300,
    ),
)


@pytest.fixture(scope="session")
def sweep():
    """The shared evaluation sweep (trained global model + replays)."""
    return run_sweep(BENCH_SWEEP)


@pytest.fixture(scope="session")
def fleet_stats():
    """Fleet statistics for Figure 1 (independent of the sweep)."""
    return fleet_statistics(n_instances=60, duration_days=2.0, volume_scale=0.25, seed=1)


@pytest.fixture(scope="session")
def results_dir():
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR


def write_result(results_dir: str, name: str, text: str) -> None:
    """Persist one experiment's rendered output under ``results/``."""
    with open(os.path.join(results_dir, f"{name}.txt"), "w") as f:
        f.write(text + "\n")


def append_result(results_dir: str, name: str, title: str, text: str) -> None:
    """Append one ``== title ==`` section to an experiment file.

    Used by benchmarks that share a results file: re-running a benchmark
    replaces its own section (marker line up to the next section marker)
    and leaves the others alone, so the file never grows unbounded and
    tests can run in any subset or order.
    """
    path = os.path.join(results_dir, f"{name}.txt")
    marker = f"== {title} =="
    sections = []
    if os.path.exists(path):
        current = []
        previous = ""
        for line in open(path).read().splitlines():
            # a marker only opens a section at the file start or after a
            # blank line, so table rules inside a body can't split it
            if (
                line.startswith("== ")
                and line.endswith(" ==")
                and not previous.strip()
            ):
                sections.append(current)
                current = [line]
            else:
                current.append(line)
            previous = line
        sections.append(current)
        sections = [s for s in sections if s and "\n".join(s).strip()]
    new_section = [marker] + text.splitlines()
    slot = next((i for i, s in enumerate(sections) if s[0] == marker), None)
    if slot is None:
        sections.append(new_section)
    else:
        # replace in place so a partial re-run never permutes sections
        sections[slot] = new_section
    with open(path, "w") as f:
        f.write("\n\n".join("\n".join(s).rstrip("\n") for s in sections) + "\n")
