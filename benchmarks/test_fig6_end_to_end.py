"""Figure 6: end-to-end query latency improvement inside the WLM.

Paper claims: Stage improves average / median / tail query latency by
20.3% / 16.4% / 14.9% over the AutoWLM predictor; the Optimal oracle
improves them by 44.4% / 59.8% / 54.5% — i.e. Stage captures a sizable
fraction of the headroom, and Optimal strictly dominates Stage.
"""

from conftest import write_result

from repro.harness import end_to_end_comparison
from repro.harness.reporting import render_simple_table


def test_fig6_end_to_end_latency(benchmark, sweep, results_dir):
    e2e = benchmark.pedantic(
        end_to_end_comparison, args=(sweep,), iterations=1, rounds=3
    )

    rows = []
    for name in ("stage", "optimal"):
        imp = e2e["improvements"][name]
        rows.append(
            [
                name,
                f"{imp['mean']:+.1%}",
                f"{imp['median']:+.1%}",
                f"{imp['p90']:+.1%}",
            ]
        )
    rows.append(["paper: stage", "+20.3%", "+16.4%", "+14.9%"])
    rows.append(["paper: optimal", "+44.4%", "+59.8%", "+54.5%"])
    table = render_simple_table(
        "Figure 6: latency improvement over AutoWLM",
        ["predictor", "mean", "median", "p90 (tail)"],
        rows,
    )
    write_result(results_dir, "fig6_end_to_end", table)

    stage_imp = e2e["improvements"]["stage"]
    optimal_imp = e2e["improvements"]["optimal"]
    # Stage must improve over AutoWLM on average
    assert stage_imp["mean"] > 0.0
    assert stage_imp["median"] > 0.0
    # the oracle bounds Stage (who-wins ordering of the paper)
    assert optimal_imp["mean"] >= stage_imp["mean"] - 0.02
    assert optimal_imp["median"] >= stage_imp["median"] - 0.02
    # Stage captures a meaningful share of the oracle's headroom but not
    # all of it
    assert stage_imp["mean"] < optimal_imp["mean"] + 0.02
