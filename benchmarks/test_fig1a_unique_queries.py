"""Figure 1a: distribution of clusters by % of daily-unique queries.

Paper claims: ~40% of Redshift clusters have > 50% unique daily queries;
only ~13% of clusters have no repeating queries; on average > 60% of
queries repeat within 24 hours.
"""

import numpy as np

from conftest import write_result

from repro.harness.reporting import render_simple_table


def test_fig1a_unique_query_distribution(benchmark, fleet_stats, results_dir):
    fractions = fleet_stats["unique_fractions"]

    # benchmark the statistic computation itself on the raw traces'
    # precomputed fractions (cheap) — the expensive generation is shared
    def compute():
        hist, _ = np.histogram(fractions, bins=np.linspace(0, 1, 11))
        return hist

    hist = benchmark(compute)

    over_50 = fleet_stats["clusters_over_50pct_unique"]
    no_repeats = fleet_stats["clusters_fully_unique"]
    repeat_fraction = fleet_stats["fleet_repeat_fraction"]

    rows = [
        ["clusters > 50% daily-unique", f"{over_50:.0%}", "~40%"],
        ["clusters with no repeats", f"{no_repeats:.0%}", "~13%"],
        ["fleet-wide repeat fraction", f"{repeat_fraction:.0%}", ">60%"],
    ]
    table = render_simple_table(
        "Figure 1a: daily-unique queries across the fleet",
        ["statistic", "measured", "paper"],
        rows,
    )
    hist_rows = [[f"{10 * i}-{10 * (i + 1)}% unique", int(c)] for i, c in enumerate(hist)]
    table += "\n\n" + render_simple_table(
        "cluster histogram", ["daily-unique bin", "# clusters"], hist_rows
    )
    write_result(results_dir, "fig1a_unique_queries", table)

    # paper-shape assertions (generous bands: the fleet is synthetic)
    assert 0.2 <= over_50 <= 0.65
    assert 0.05 <= no_repeats <= 0.30
    assert repeat_fraction > 0.5
