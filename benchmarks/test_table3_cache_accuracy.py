"""Table 3: exec-time cache vs AutoWLM on the cache-hit subset.

Paper claims: ~62% of queries hit the cache; on that subset the cache
beats AutoWLM in every bucket (a model trained on the cached ground
truth cannot beat the cache itself), though residual errors remain on
long queries because of run-to-run load variance.
"""

from conftest import write_result

from repro.harness import component_summaries, component_table


def test_table3_cache_vs_autowlm(benchmark, sweep, results_dir):
    table = benchmark(component_table, sweep, "table3")
    write_result(results_dir, "table3_cache_accuracy", table)

    cache, auto, n = component_summaries(sweep, "table3")

    # a substantial fraction of all queries repeat and hit the cache
    total = sweep.pooled("true").shape[0]
    hit_rate = n / total
    assert 0.35 <= hit_rate <= 0.9  # paper: 61.8%

    # cache dominates the baseline overall
    assert cache["Overall"].mean < auto["Overall"].mean
    assert cache["Overall"].p50 < auto["Overall"].p50
    # but is not perfect on long queries (load variance, paper 5.4)
    if cache["300s+"].n > 5:
        assert cache["300s+"].mean > 0
