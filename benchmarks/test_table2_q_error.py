"""Table 2: Q-error accuracy of Stage vs AutoWLM.

Paper claims: Stage's Q-error dominates AutoWLM's overall (54.6 vs 171.8
mean, 1.60 vs 4.08 median) with the gap concentrated below 60 s.
"""

from conftest import write_result

from repro.core.metrics import bucketed_summary
from repro.harness import accuracy_table


def test_table2_q_error(benchmark, sweep, results_dir):
    table = benchmark(accuracy_table, sweep, "q")
    write_result(results_dir, "table2_q_error", table)

    true = sweep.pooled("true")
    stage = bucketed_summary(true, sweep.pooled("stage_pred"), metric="q")
    auto = bucketed_summary(true, sweep.pooled("autowlm_pred"), metric="q")

    # Q-error >= 1 by definition
    assert stage["Overall"].p50 >= 1.0
    assert auto["Overall"].p50 >= 1.0
    # Stage dominates overall, mean and median
    assert stage["Overall"].mean < auto["Overall"].mean
    assert stage["Overall"].p50 < auto["Overall"].p50
    # the short-bucket improvement is the big one (cache + local)
    assert stage["0s - 10s"].p50 < auto["0s - 10s"].p50
