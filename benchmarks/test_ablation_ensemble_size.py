"""Ablation: Bayesian ensemble size K.

The paper uses K = 10 members.  K = 1 removes *model* uncertainty
entirely (Eq. 2 degenerates to data uncertainty), which should degrade
the PRR of the uncertainty estimate; accuracy itself moves much less.
"""

import numpy as np

from conftest import write_result

from repro.core.metrics import prr_score
from repro.harness.reporting import render_simple_table
from repro.ml.ensemble import BayesianGBMEnsemble
from repro.ml.preprocessing import LogTargetTransform
from repro.workload import FleetConfig, FleetGenerator


def _dataset(seed=31):
    """Feature/target arrays from a mixed-workload instance."""
    gen = FleetGenerator(FleetConfig(seed=seed, volume_scale=0.35))
    # pick an instance with a broad query mix
    for i in range(12):
        inst = gen.sample_instance(i)
        if 0.2 < inst.kind_weights.get("adhoc", 0) < 0.95:
            trace = gen.generate_trace(inst, 2.5)
            if len(trace) > 500:
                break
    X = np.vstack([r.features for r in trace])
    y = np.array([r.exec_time for r in trace])
    half = len(trace) // 2
    return X[:half], y[:half], X[half:], y[half:]


def _fit_and_score(K, X_tr, y_tr, X_te, y_te):
    transform = LogTargetTransform()
    ens = BayesianGBMEnsemble(n_members=K, n_estimators=40, max_depth=4, random_state=0)
    ens.fit(X_tr, transform.transform(y_tr))
    out = ens.predict(X_te)
    pred = transform.inverse(out.mean)
    errors = np.abs(pred - y_te)
    return float(errors.mean()), prr_score(errors, np.sqrt(out.total_uncertainty))


def test_ablation_ensemble_size(benchmark, results_dir):
    X_tr, y_tr, X_te, y_te = _dataset()

    results = {}
    for K in (1, 4, 10):
        results[K] = _fit_and_score(K, X_tr, y_tr, X_te, y_te)

    benchmark.pedantic(_fit_and_score, args=(4, X_tr, y_tr, X_te, y_te), iterations=1, rounds=1)

    rows = [[f"K={K}", f"{mae:.2f}", f"{prr:.2f}"] for K, (mae, prr) in results.items()]
    table = render_simple_table(
        "Ablation: ensemble size (held-out MAE and PRR)",
        ["members", "MAE (s)", "PRR"],
        rows,
    )
    write_result(results_dir, "ablation_ensemble_size", table)

    # accuracy stays in the same league across K
    maes = [mae for mae, _ in results.values()]
    assert max(maes) < min(maes) * 2.0
    # an ensemble (K >= 4) should provide uncertainty at least as good as
    # the single model's data-only uncertainty
    assert max(results[4][1], results[10][1]) >= results[1][1] - 0.05
