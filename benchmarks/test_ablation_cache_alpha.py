"""Ablation: the cache's alpha blend (robustness vs freshness).

Paper Section 4.2 predicts ``alpha * mean + (1-alpha) * last`` with
alpha = 0.8.  This ablation replays repeated queries through caches with
alpha in {0 (last-only), 0.8 (paper), 1 (mean-only)} and compares the
absolute error on cache hits.  Under drift, last-only chases noise and
mean-only lags behind data growth; the blend should sit at or near the
front.
"""

import numpy as np

from conftest import write_result

from repro.cache import ExecTimeCache
from repro.harness.reporting import render_simple_table
from repro.workload import FleetConfig, FleetGenerator


def _cache_errors(traces, alpha=0.8, mode="blend"):
    errors = []
    for trace in traces:
        cache = ExecTimeCache(capacity=2000, alpha=alpha, mode=mode)
        for record in trace:
            key = cache.key_for(record.features)
            pred = cache.lookup(key)
            if pred is not None:
                errors.append(abs(pred - record.exec_time))
            cache.observe(key, record.exec_time)
    return np.asarray(errors)


def test_ablation_cache_alpha(benchmark, results_dir):
    gen = FleetGenerator(FleetConfig(seed=77, volume_scale=0.3))
    traces = [gen.generate_trace(gen.sample_instance(i), 3.0) for i in range(4)]

    results = {}
    for alpha in (0.0, 0.5, 0.8, 1.0):
        errors = _cache_errors(traces, alpha)
        results[f"alpha={alpha}"] = (
            float(errors.mean()),
            float(np.median(errors)),
        )
    # the future-work time-series mode (EWMA), for comparison
    ewma_errors = _cache_errors(traces, mode="ewma")
    results["ewma (future work)"] = (
        float(ewma_errors.mean()),
        float(np.median(ewma_errors)),
    )

    benchmark(_cache_errors, traces[:1], 0.8)

    rows = [[name, f"{mae:.3f}", f"{p50:.4f}"] for name, (mae, p50) in results.items()]
    table = render_simple_table(
        "Ablation: cache alpha blend (absolute error on cache hits, s)",
        ["setting", "MAE", "P50-AE"],
        rows,
    )
    write_result(results_dir, "ablation_cache_alpha", table)

    # the paper's blend must not lose to either extreme by a wide margin
    blend_mae = results["alpha=0.8"][0]
    assert blend_mae <= results["alpha=0.0"][0] * 1.1
    assert blend_mae <= results["alpha=1.0"][0] * 1.1
