"""Table 4: local model vs AutoWLM on cache-miss queries.

Paper claims: on the ~38% of queries that miss the cache, the local
model is *slightly worse* than AutoWLM on mean absolute error (21.48 vs
19.06 overall) because AutoWLM trains directly on the evaluation metric
(L1) while the local ensemble optimizes a likelihood — the two stay
within a small factor of each other across buckets.
"""

from conftest import write_result

from repro.harness import component_summaries, component_table


def test_table4_local_vs_autowlm(benchmark, sweep, results_dir):
    table = benchmark(component_table, sweep, "table4")
    write_result(results_dir, "table4_local_vs_autowlm", table)

    local, auto, n = component_summaries(sweep, "table4")
    assert n > 100  # the miss subset is non-trivial

    # the two tree models are comparable: neither wins by a large factor
    assert local["Overall"].mean < auto["Overall"].mean * 2.0
    assert auto["Overall"].mean < local["Overall"].mean * 2.0
    assert local["Overall"].p50 < auto["Overall"].p50 * 2.5
    # both are usable on short queries (sub-10s errors on the 0-10s bucket)
    assert local["0s - 10s"].mean < 10.0
    assert auto["0s - 10s"].mean < 10.0
