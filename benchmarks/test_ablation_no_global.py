"""Ablation: the deployed configuration (cache + local, no global model).

The paper notes (Section 5.2) that only the exec-time cache and local
model are deployed in production so far; the global model is pending.
This ablation recomputes Stage's predictions offline from the sweep's
recorded components with the global stage removed (uncertain queries
fall back to the local answer) and compares accuracy.
"""

import numpy as np

from conftest import write_result

from repro.harness.reporting import render_simple_table

SHORT_CIRCUIT_S = 2.0
UNCERTAINTY_THRESHOLD = 1.5


def _route(sweep, use_global):
    true = sweep.pooled("true")
    cache = sweep.pooled("cache_pred")
    local = sweep.pooled("local_pred")
    std = sweep.pooled("local_std")
    glob = sweep.pooled("global_pred")

    pred = cache.copy()
    miss = np.isnan(pred)
    local_ok = miss & ~np.isnan(local)
    uncertain = local_ok & (local >= SHORT_CIRCUIT_S) & (std >= UNCERTAINTY_THRESHOLD)
    pred[local_ok] = local[local_ok]
    if use_global:
        escalate = uncertain & ~np.isnan(glob)
        pred[escalate] = glob[escalate]
        cold = np.isnan(pred) & ~np.isnan(glob)
        pred[cold] = glob[cold]
    pred[np.isnan(pred)] = 1.0
    errors = np.abs(pred - true)
    return float(errors.mean()), float(np.median(errors)), float(np.percentile(errors, 90))


def test_ablation_no_global(benchmark, sweep, results_dir):
    with_global = _route(sweep, use_global=True)
    without_global = _route(sweep, use_global=False)
    benchmark.pedantic(_route, args=(sweep, True), iterations=1, rounds=2)

    rows = [
        [
            "cache+local+global",
            f"{with_global[0]:.2f}",
            f"{with_global[1]:.3f}",
            f"{with_global[2]:.2f}",
        ],
        [
            "cache+local (deployed)",
            f"{without_global[0]:.2f}",
            f"{without_global[1]:.3f}",
            f"{without_global[2]:.2f}",
        ],
    ]
    table = render_simple_table(
        "Ablation: removing the global model",
        ["configuration", "MAE (s)", "P50-AE", "P90-AE"],
        rows,
    )
    write_result(results_dir, "ablation_no_global", table)

    # both configurations are functional; the full hierarchy should not
    # be worse overall (the global stage only serves escalations)
    assert with_global[0] <= without_global[0] * 1.15
