"""Scenario stress matrix: Stage vs AutoWLM under workload mutations.

Replays the registered scenario suite (burst storms, onboarding waves,
template churn, seasonal cycles, instance resizes, ANALYZE outages)
over a shared evaluation fleet and writes the deterministic matrix to
``results/scenario_matrix.txt`` — the committed report sits behind CI's
results-drift gate, and ``python -m repro.scenarios`` (defaults) must
regenerate it bit-for-bit.

The assertions pin the qualitative stress signatures: a burst storm
adds surge volume and *raises* the cache hit rate (flash crowds re-run
known queries), template churn and onboarding *lower* it (never-seen
queries), thinning scenarios shrink the trace, and Stage stays at least
competitive with AutoWLM on every row.  The ``fc-*`` columns (forecast
pre-warm vs reactive serving, scored on the burst and seasonal rows)
must show a cache hit-rate win and reproduce bit-for-bit at
``n_jobs=2`` — forecast scoring sits inside the same parity contract
as everything else in the matrix.
"""

from dataclasses import replace

from conftest import write_result

from repro.scenarios import ScenarioRunner, ScenarioSweepConfig, get_scenario, render_matrix

#: the rows registered with ``forecast_scored=True``
FORECAST_SCORED = ("burst_storm", "seasonal_cycle")


def test_scenario_matrix(results_dir):
    config = ScenarioSweepConfig()  # the committed scale — also the CLI default
    runner = ScenarioRunner(config)
    results = runner.run_matrix()
    report = render_matrix(results, config)
    write_result(results_dir, "scenario_matrix", report)
    print("\n" + report)

    metrics = {r.scenario.name: r.metrics for r in results}
    baseline = metrics["baseline"]
    assert baseline["n_queries"] > 0 and baseline["n_retrains"] > 0

    # burst storms: surge volume, repeat-heavy -> hit rate up
    assert metrics["burst_storm"]["n_queries"] > 1.3 * baseline["n_queries"]
    assert metrics["burst_storm"]["cache_hit_rate"] > baseline["cache_hit_rate"]

    # onboarding + seasonal thin the trace (cold joins / trough thinning)
    assert metrics["onboarding_wave"]["n_queries"] < baseline["n_queries"]
    assert metrics["seasonal_cycle"]["n_queries"] < baseline["n_queries"]

    # churn replaces known templates with never-seen ones -> hit rate down
    assert metrics["template_churn"]["cache_hit_rate"] < baseline["cache_hit_rate"]

    # resize shifts the latency model but not the workload structure
    assert metrics["instance_resize"]["n_queries"] == baseline["n_queries"]
    assert metrics["instance_resize"]["stage_mae"] != baseline["stage_mae"]

    # every scenario keeps Stage no worse than the AutoWLM baseline
    for name, m in metrics.items():
        assert m["improvement"] > -0.05, f"{name}: Stage regressed vs AutoWLM"
        assert 0 <= m["cache_hit_rate"] <= 1

    # forecast pre-warm beats reactive serving where eviction pressure
    # exists: both scored rows must show a positive hit-rate delta, and
    # the pre-warmer must actually have acted (touches/restores > 0)
    forecasts = {r.scenario.name: r.forecast for r in results}
    for name in FORECAST_SCORED:
        fc = forecasts[name]
        assert fc is not None, f"{name}: forecast scoring missing"
        assert fc["hit_delta"] > 0, f"{name}: pre-warm lost to plain LRU: {fc}"
        assert fc["n_prewarm_touches"] + fc["n_prewarm_restores"] > 0
    for name, fc in forecasts.items():
        if name not in FORECAST_SCORED:
            assert fc is None, f"{name}: unexpected forecast scoring"


def test_forecast_scoring_parity_across_jobs(results_dir):
    """The fc-* matrix columns reproduce bit-for-bit under ``--jobs 2``.

    Forecast state rides each instance's sequenced op stream, so the
    scored deltas are pure functions of (seed, config) — a parallel
    sweep must produce the identical summary dict, float-for-float.
    """
    single = ScenarioRunner(ScenarioSweepConfig())
    double = ScenarioRunner(replace(ScenarioSweepConfig(), n_jobs=2))
    for name in FORECAST_SCORED:
        scenario = get_scenario(name)
        assert single.score_forecast(scenario) == double.score_forecast(scenario)
