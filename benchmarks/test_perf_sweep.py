"""Perf: fleet-sweep wall clock, sequential vs parallel vs batched.

Replays an 8-instance fleet with full component collection
(``collect_components=True``) three ways over identical pre-built
traces:

1. ``per_query`` — the reference path, re-running the local GBM
   ensemble once per eligible query (how component collection worked
   before the batched engine);
2. ``batched`` sequential — reuse the router's own ensemble answers on
   cache misses, one batched ensemble call per retrain window for hits;
3. ``batched`` with ``n_jobs=2`` — the process-pool engine (recorded
   for reference; on a single-core machine it cannot beat 2).

All three must produce bit-identical replay arrays; the batched path
must be at least 1.5x faster than per-query inference — that speedup is
algorithmic (fewer ensemble invocations), not parallelism, so it holds
on any core count.
"""

import time

import numpy as np

from conftest import write_result

from repro.core.config import (
    CacheConfig,
    LocalModelConfig,
    StageConfig,
    TrainingPoolConfig,
)
from repro.harness import FleetSweeper
from repro.workload import FleetConfig, FleetGenerator


def assert_replays_identical(a, b):
    assert a.instance_id == b.instance_id
    for attr in (
        "true",
        "arrival",
        "kind",
        "stage_pred",
        "stage_source",
        "autowlm_pred",
        "cache_pred",
        "local_pred",
        "local_std",
        "global_pred",
        "uncertain",
    ):
        x, y = getattr(a, attr), getattr(b, attr)
        equal_nan = x.dtype.kind == "f"
        assert np.array_equal(x, y, equal_nan=equal_nan), attr
    assert a.stage_stats == b.stage_stats


N_INSTANCES = 8
DURATION_DAYS = 2.0
MIN_SPEEDUP = 1.5

#: paper-sized ensemble (10 members) with a moderate tree budget: the
#: operating point where per-query duplicate inference hurts most
PERF_STAGE = StageConfig(
    cache=CacheConfig(capacity=500),
    pool=TrainingPoolConfig(max_size=600),
    local=LocalModelConfig(
        n_members=10,
        n_estimators=40,
        max_depth=3,
        min_train_size=30,
        retrain_interval=300,
    ),
)
PERF_FLEET = FleetConfig(seed=7, volume_scale=0.25)


def test_batched_component_inference_speedup(results_dir):
    traces = FleetGenerator(PERF_FLEET).generate_fleet_traces(
        N_INSTANCES, DURATION_DAYS
    )
    n_queries = sum(len(t) for t in traces)

    def sweep(component_inference, n_jobs):
        sweeper = FleetSweeper(
            fleet_config=PERF_FLEET,
            stage_config=PERF_STAGE,
            collect_components=True,
            component_inference=component_inference,
            n_jobs=n_jobs,
        )
        t0 = time.perf_counter()
        replays = sweeper.replay_traces(traces)
        return time.perf_counter() - t0, replays

    t_per_query, r_per_query = sweep("per_query", 1)
    t_batched, r_batched = sweep("batched", 1)
    t_parallel, r_parallel = sweep("batched", 2)

    for a, b, c in zip(r_per_query, r_batched, r_parallel):
        assert_replays_identical(a, b)
        assert_replays_identical(a, c)

    speedup = t_per_query / t_batched
    lines = [
        f"fleet sweep: {N_INSTANCES} instances, {n_queries} queries, "
        f"collect_components=True",
        f"per-query component inference (n_jobs=1): {t_per_query:8.2f} s",
        f"batched component inference   (n_jobs=1): {t_batched:8.2f} s",
        f"batched component inference   (n_jobs=2): {t_parallel:8.2f} s",
        f"batched speedup over per-query: {speedup:.2f}x (floor {MIN_SPEEDUP}x)",
        "replay arrays bit-identical across all three paths",
    ]
    write_result(results_dir, "perf_sweep", "\n".join(lines))
    print("\n" + "\n".join(lines))

    assert speedup >= MIN_SPEEDUP, (
        f"batched component inference only {speedup:.2f}x faster than "
        f"per-query (expected >= {MIN_SPEEDUP}x)"
    )
