"""Perf: fleet-sweep and trainer wall clock, sequential vs parallel.

Two experiments share ``results/perf_sweep.txt``:

1. The *replay* benchmark replays an 8-instance fleet with full
   component collection three ways over identical pre-built traces:
   ``per_query`` (the reference path, re-running the local GBM ensemble
   once per eligible query), ``batched`` sequential (reuse the router's
   own ensemble answers, one batched ensemble call per retrain window),
   and ``batched`` with ``n_jobs=2`` (the process-pool engine, recorded
   for reference; on a single-core machine it cannot beat 2).  The
   batched path must be at least 1.5x faster than per-query — that
   speedup is algorithmic (fewer ensemble invocations), not
   parallelism, so it holds on any core count.

2. The *trainer* benchmark times sharded global-model dataset
   construction (``GlobalModelTrainer.build_dataset``, dedup +
   subsample + graph featurization) sequentially vs over a process
   pool.  Sharding is pure parallelism, so the wall clock is recorded
   with its overhead context (no speedup floor: on a small/single-core
   machine pool spin-up and trace pickling dominate, which is why the
   knob defaults to 1) while bit-identical output is asserted — the
   parity contract is what the sharded path must never break.
"""

import os
import time

import numpy as np

from conftest import append_result

from repro.core.config import (
    CacheConfig,
    GlobalModelConfig,
    LocalModelConfig,
    StageConfig,
    TrainingPoolConfig,
)
from repro.global_model import GlobalModelTrainer
from repro.harness import FleetSweeper
from repro.workload import FleetConfig, FleetGenerator


def assert_replays_identical(a, b):
    assert a.instance_id == b.instance_id
    for attr in (
        "true",
        "arrival",
        "kind",
        "stage_pred",
        "stage_source",
        "autowlm_pred",
        "cache_pred",
        "local_pred",
        "local_std",
        "global_pred",
        "uncertain",
    ):
        x, y = getattr(a, attr), getattr(b, attr)
        equal_nan = x.dtype.kind == "f"
        assert np.array_equal(x, y, equal_nan=equal_nan), attr
    assert a.stage_stats == b.stage_stats


N_INSTANCES = 8
DURATION_DAYS = 2.0
MIN_SPEEDUP = 1.5

#: paper-sized ensemble (10 members) with a moderate tree budget: the
#: operating point where per-query duplicate inference hurts most
PERF_STAGE = StageConfig(
    cache=CacheConfig(capacity=500),
    pool=TrainingPoolConfig(max_size=600),
    local=LocalModelConfig(
        n_members=10,
        n_estimators=40,
        max_depth=3,
        min_train_size=30,
        retrain_interval=300,
    ),
)
PERF_FLEET = FleetConfig(seed=7, volume_scale=0.25)


def test_batched_component_inference_speedup(results_dir):
    traces = FleetGenerator(PERF_FLEET).generate_fleet_traces(N_INSTANCES, DURATION_DAYS)
    n_queries = sum(len(t) for t in traces)

    def sweep(component_inference, n_jobs):
        sweeper = FleetSweeper(
            fleet_config=PERF_FLEET,
            stage_config=PERF_STAGE,
            collect_components=True,
            component_inference=component_inference,
            n_jobs=n_jobs,
        )
        t0 = time.perf_counter()
        replays = sweeper.replay_traces(traces)
        return time.perf_counter() - t0, replays

    t_per_query, r_per_query = sweep("per_query", 1)
    t_batched, r_batched = sweep("batched", 1)
    t_parallel, r_parallel = sweep("batched", 2)

    for a, b, c in zip(r_per_query, r_batched, r_parallel):
        assert_replays_identical(a, b)
        assert_replays_identical(a, c)

    speedup = t_per_query / t_batched
    lines = [
        f"fleet sweep: {N_INSTANCES} instances, {n_queries} queries, "
        f"collect_components=True",
        f"per-query component inference (n_jobs=1): {t_per_query:8.2f} s",
        f"batched component inference   (n_jobs=1): {t_batched:8.2f} s",
        f"batched component inference   (n_jobs=2): {t_parallel:8.2f} s",
        f"batched speedup over per-query: {speedup:.2f}x (floor {MIN_SPEEDUP}x)",
        "replay arrays bit-identical across all three paths",
    ]
    append_result(results_dir, "perf_sweep", "batched component inference", "\n".join(lines))
    print("\n" + "\n".join(lines))

    assert speedup >= MIN_SPEEDUP, (
        f"batched component inference only {speedup:.2f}x faster than "
        f"per-query (expected >= {MIN_SPEEDUP}x)"
    )


# ---------------------------------------------------------------------------
# trainer scaling: sequential vs sharded dataset construction
# ---------------------------------------------------------------------------
N_TRAIN_INSTANCES = 8
#: dataset-construction settings only — build_dataset never touches the
#: GCN architecture/epoch knobs
TRAINER_CONFIG = GlobalModelConfig(max_queries_per_instance=300)


def test_trainer_sharded_build_dataset(results_dir):
    traces = FleetGenerator(PERF_FLEET).generate_fleet_traces(
        N_TRAIN_INSTANCES, DURATION_DAYS, start_index=10_000
    )
    trainer = GlobalModelTrainer(TRAINER_CONFIG)

    def build(n_jobs):
        t0 = time.perf_counter()
        graphs, targets = trainer.build_dataset(traces, n_jobs=n_jobs)
        return time.perf_counter() - t0, graphs, targets

    t_seq, g_seq, y_seq = build(1)
    t_par2, g_par2, y_par2 = build(2)
    t_par4, g_par4, y_par4 = build(4)

    for graphs, targets in ((g_par2, y_par2), (g_par4, y_par4)):
        assert len(graphs) == len(g_seq)
        assert np.array_equal(targets, y_seq)
        for a, b in zip(g_seq, graphs):
            assert np.array_equal(a.node_features, b.node_features)
            assert np.array_equal(a.sys_features, b.sys_features)

    per_graph_us = t_seq / max(len(g_seq), 1) * 1e6
    lines = [
        f"trainer dataset construction: {N_TRAIN_INSTANCES} train instances, "
        f"{sum(len(t) for t in traces)} queries -> {len(g_seq)} graphs "
        f"(dedup + cap {TRAINER_CONFIG.max_queries_per_instance})",
        f"sequential build_dataset (n_jobs=1): {t_seq:8.2f} s "
        f"({per_graph_us:.0f} us/graph)",
        f"sharded build_dataset    (n_jobs=2): {t_par2:8.2f} s",
        f"sharded build_dataset    (n_jobs=4): {t_par4:8.2f} s",
        f"(this machine: {os.cpu_count()} core(s); at this scale pool "
        "spin-up + trace pickling dominate — sharding pays off at fleet "
        "scale on multi-core hosts, hence the n_jobs=1 default)",
        "datasets bit-identical across all shard counts "
        "(per-trace seeding + ordered moment merge) — the asserted contract",
    ]
    append_result(results_dir, "perf_sweep", "sharded trainer build_dataset", "\n".join(lines))
    print("\n" + "\n".join(lines))
