"""Tests for the plan substrate: operators, trees, featurizations."""

import numpy as np
import pytest

from repro.plans import (
    FEATURE_DIM,
    N_OPERATOR_TYPES,
    NODE_FEATURE_DIM,
    OPERATOR_TYPES,
    OperatorClass,
    PhysicalPlan,
    PlanNode,
    feature_names,
    featurize_plan,
    hash_feature_vector,
    is_scan_operator,
    node_feature_matrix,
    operator_class,
    plan_to_graph,
)


def make_plan():
    """join(scan(a), sort(scan(b))) — a small but realistic tree."""
    scan_a = PlanNode(
        "seq_scan",
        estimated_cost=100.0,
        estimated_cardinality=1000.0,
        width=32,
        s3_format="local",
        table_rows=50_000,
        table_name="a",
    )
    scan_b = PlanNode(
        "s3_seq_scan",
        estimated_cost=400.0,
        estimated_cardinality=9000.0,
        width=16,
        s3_format="parquet",
        table_rows=2_000_000,
        table_name="b",
    )
    sort = PlanNode(
        "sort", estimated_cost=50.0, estimated_cardinality=9000.0, width=16,
        children=[scan_b],
    )
    join = PlanNode(
        "distributed_hash_join",
        estimated_cost=800.0,
        estimated_cardinality=500.0,
        width=48,
        children=[scan_a, sort],
    )
    return PhysicalPlan(root=join, query_type="select")


class TestOperators:
    def test_vocabulary_size_is_90(self):
        assert N_OPERATOR_TYPES == 90
        assert len(set(OPERATOR_TYPES)) == 90

    def test_every_operator_has_a_class(self):
        for op in OPERATOR_TYPES:
            assert isinstance(operator_class(op), OperatorClass)

    def test_scan_detection(self):
        assert is_scan_operator("seq_scan")
        assert not is_scan_operator("hash_join")

    def test_unknown_operator_raises(self):
        with pytest.raises(ValueError):
            operator_class("teleport")


class TestPlanNode:
    def test_rejects_unknown_operator(self):
        with pytest.raises(ValueError, match="unknown operator"):
            PlanNode("warp_scan")

    def test_rejects_negative_cost(self):
        with pytest.raises(ValueError):
            PlanNode("seq_scan", estimated_cost=-1.0)

    def test_rejects_table_features_on_non_scan(self):
        with pytest.raises(ValueError, match="scan operators"):
            PlanNode("hash_join", s3_format="parquet")
        with pytest.raises(ValueError, match="scan operators"):
            PlanNode("hash_join", table_rows=10)

    def test_scan_accepts_table_features(self):
        node = PlanNode("seq_scan", s3_format="text", table_rows=5)
        assert node.is_scan


class TestPhysicalPlan:
    def test_structure_properties(self):
        plan = make_plan()
        assert plan.n_nodes == 4
        assert plan.depth == 3
        assert plan.n_joins == 1
        assert len(plan.scan_nodes()) == 2
        assert plan.total_estimated_cost == pytest.approx(1350.0)

    def test_rejects_shared_nodes(self):
        shared = PlanNode("seq_scan")
        root = PlanNode("hash_join", children=[shared, shared])
        with pytest.raises(ValueError, match="cycle or shared"):
            PhysicalPlan(root=root)

    def test_rejects_unknown_query_type(self):
        with pytest.raises(ValueError, match="query type"):
            PhysicalPlan(root=PlanNode("seq_scan"), query_type="merge")

    def test_edges_point_child_to_parent(self):
        plan = make_plan()
        edges = plan.edges()
        nodes = plan.nodes()
        assert len(edges) == plan.n_nodes - 1
        for child_i, parent_i in edges:
            assert nodes[child_i] in nodes[parent_i].children

    def test_describe_contains_operators(self):
        text = make_plan().describe()
        assert "distributed_hash_join" in text
        assert "seq_scan on a" in text


class TestFeaturize:
    def test_dimension_is_33(self):
        assert FEATURE_DIM == 33
        assert featurize_plan(make_plan()).shape == (33,)
        assert len(feature_names()) == 33

    def test_deterministic(self):
        v1 = featurize_plan(make_plan())
        v2 = featurize_plan(make_plan())
        np.testing.assert_array_equal(v1, v2)

    def test_query_type_one_hot(self):
        plan = make_plan()
        vec = featurize_plan(plan)
        names = feature_names()
        assert vec[names.index("qt_select")] == 1.0
        assert vec[names.index("qt_delete")] == 0.0

    def test_counts_by_class(self):
        vec = featurize_plan(make_plan())
        names = feature_names()
        assert vec[names.index("scan_count")] == 2.0
        assert vec[names.index("join_count")] == 1.0
        assert vec[names.index("sort_count")] == 1.0

    def test_summary_features(self):
        vec = featurize_plan(make_plan())
        names = feature_names()
        assert vec[names.index("n_nodes")] == 4.0
        assert vec[names.index("depth")] == 3.0
        assert vec[names.index("log_total_cost")] == pytest.approx(np.log1p(1350.0))

    def test_different_plans_different_vectors(self):
        plan = make_plan()
        other = PhysicalPlan(root=PlanNode("seq_scan", estimated_cost=10.0), query_type="select")
        assert not np.array_equal(featurize_plan(plan), featurize_plan(other))


class TestHashing:
    def test_stable_hash(self):
        v = featurize_plan(make_plan())
        assert hash_feature_vector(v) == hash_feature_vector(v.copy())

    def test_negative_zero_normalized(self):
        a = np.array([0.0, 1.0])
        b = np.array([-0.0, 1.0])
        assert hash_feature_vector(a) == hash_feature_vector(b)

    def test_distinct_vectors_distinct_hashes(self):
        rng = np.random.default_rng(0)
        vecs = rng.normal(size=(500, 33))
        hashes = {hash_feature_vector(v) for v in vecs}
        assert len(hashes) == 500


class TestGraphFeaturization:
    def test_node_matrix_shape(self):
        plan = make_plan()
        X = node_feature_matrix(plan)
        assert X.shape == (4, NODE_FEATURE_DIM)

    def test_one_hot_rows(self):
        plan = make_plan()
        X = node_feature_matrix(plan)
        # exactly one operator bit per node
        assert (X[:, :90].sum(axis=1) == 1.0).all()

    def test_table_rows_only_on_scans(self):
        plan = make_plan()
        X = node_feature_matrix(plan)
        has_table = X[:, -1]
        scans = [n.is_scan for n in plan.nodes()]
        np.testing.assert_array_equal(has_table.astype(bool), scans)

    def test_plan_to_graph_roundtrip(self):
        plan = make_plan()
        g = plan_to_graph(plan, sys_features=np.zeros(4))
        assert g.node_features.shape[0] == plan.n_nodes
        assert g.edges.shape == (2, plan.n_nodes - 1)
        assert g.root == 0

    def test_single_node_plan_graph(self):
        plan = PhysicalPlan(root=PlanNode("seq_scan"))
        g = plan_to_graph(plan, sys_features=np.zeros(2))
        assert g.edges.shape == (2, 0)
