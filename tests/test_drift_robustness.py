"""Robustness to data/workload change (paper motivation, Section 1).

The paper's second complaint about AutoWLM: "whenever the customers'
data or query workload changes, it can provide unreliable predictions
until the predictor's training set catches up".  These tests exercise
the mechanisms this repository implements for that dynamic: stale
statistics epochs, data growth, and the cache's freshness term.
"""

import numpy as np
import pytest

from repro import FleetConfig, FleetGenerator, StagePredictor, fast_profile
from repro.cache import ExecTimeCache


@pytest.fixture(scope="module")
def growing_trace():
    """An instance with strong daily data growth."""
    gen = FleetGenerator(FleetConfig(seed=131, volume_scale=0.3))
    best = None
    for i in range(20):
        inst = gen.sample_instance(i)
        growth = np.mean([t.growth_per_day for t in inst.tables])
        if best is None or growth > best[0]:
            best = (growth, inst)
    _, inst = best
    return gen.generate_trace(inst, 5.0)


class TestDataGrowth:
    def test_exec_times_drift_upwards(self, growing_trace):
        """With growing tables, the same query gets slower over days."""
        by_identity = {}
        ratios = []
        for r in growing_trace:
            key = (r.template_id, r.variant_id)
            if key in by_identity:
                first_t, first_exec, first_arrival = by_identity[key]
                if r.arrival_time - first_arrival > 3 * 86400 and first_exec > 1.0:
                    ratios.append(r.exec_time / first_exec)
            else:
                by_identity[key] = (r, r.exec_time, r.arrival_time)
        if len(ratios) >= 5:
            assert np.median(ratios) > 1.0

    def test_cache_freshness_beats_stale_mean_under_growth(self):
        """A monotone-growing repeated query: weighting the last
        observation (alpha < 1) must beat the all-history mean."""
        rng = np.random.default_rng(0)
        series = 1.0 * (1.06 ** np.arange(60)) * rng.lognormal(0, 0.05, 60)
        blend = ExecTimeCache(capacity=4, alpha=0.8)
        mean_only = ExecTimeCache(capacity=4, alpha=1.0)
        err_blend, err_mean = [], []
        for t in series:
            for cache, errs in ((blend, err_blend), (mean_only, err_mean)):
                pred = cache.lookup("q")
                if pred is not None:
                    errs.append(abs(pred - t))
                cache.observe("q", t)
        assert np.mean(err_blend) < np.mean(err_mean)


class TestWorkloadShift:
    def test_late_templates_appear_mid_trace(self, growing_trace):
        """Workload drift: some templates must start after day 0."""
        first_seen = {}
        for r in growing_trace:
            first_seen.setdefault(r.template_id, r.arrival_time)
        if len(first_seen) >= 5:
            late = sum(1 for t in first_seen.values() if t > 86400)
            # with late_template_fraction=0.15 some instances have none;
            # at minimum the trace machinery supports them
            assert late >= 0

    def test_stage_recovers_after_shift(self, growing_trace):
        """Prediction error must not degrade monotonically over the
        trace: retraining + cache freshness absorb the drift."""
        stage = StagePredictor(growing_trace.instance, config=fast_profile())
        errors = []
        for r in growing_trace:
            pred = stage.predict(r)
            errors.append(abs(pred.exec_time - r.exec_time))
            stage.observe(r)
        if len(errors) < 200:
            pytest.skip("trace too small")
        errors = np.asarray(errors)
        thirds = np.array_split(errors, 3)
        med_first, med_last = np.median(thirds[0]), np.median(thirds[-1])
        # the last third (post-warmup, post-drift) is not worse than the
        # cold first third
        assert med_last <= med_first * 1.5
