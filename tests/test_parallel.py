"""Tests for the parallel fleet-sweep engine and component-inference modes.

The engine's contract is bit-identical results: any ``n_jobs`` and
either ``component_inference`` mode must reproduce the sequential
per-query arrays exactly, and component collection must never perturb
the predictors' accounting (exactly one counted cache lookup per query).
"""

import pickle

import numpy as np
import pytest

from repro.core.config import GlobalModelConfig, fast_profile
from repro.global_model import GlobalModelTrainer
from repro.harness import (
    FleetSweeper,
    SweepConfig,
    replay_instance,
    resolve_n_jobs,
    run_sweep,
)
from repro.workload import FleetConfig, FleetGenerator

#: every per-query array an InstanceReplay carries
ARRAY_ATTRS = (
    "true",
    "arrival",
    "kind",
    "stage_pred",
    "stage_source",
    "autowlm_pred",
    "cache_pred",
    "local_pred",
    "local_std",
    "global_pred",
    "uncertain",
    "stage_interval_low",
    "stage_interval_high",
    "cache_interval_low",
    "cache_interval_high",
    "local_interval_low",
    "local_interval_high",
    "global_interval_low",
    "global_interval_high",
)


def assert_replays_identical(a, b):
    assert a.instance_id == b.instance_id
    for attr in ARRAY_ATTRS:
        x, y = getattr(a, attr), getattr(b, attr)
        if x.dtype.kind == "f":
            assert np.array_equal(x, y, equal_nan=True), attr
        else:
            assert np.array_equal(x, y), attr
    assert a.stage_stats == b.stage_stats


@pytest.fixture(scope="module")
def small_trace():
    gen = FleetGenerator(FleetConfig(seed=9, volume_scale=0.12))
    return gen.generate_trace(gen.sample_instance(0), 1.0)


class TestResolveNJobs:
    def test_one_means_one(self):
        assert resolve_n_jobs(1, 100) == 1

    def test_capped_by_tasks(self):
        assert resolve_n_jobs(8, 3) == 3

    def test_nonpositive_means_all_cores(self):
        import os

        cores = os.cpu_count() or 1
        assert resolve_n_jobs(0, 1000) == min(cores, 1000)
        assert resolve_n_jobs(None, 1000) == min(cores, 1000)

    def test_never_below_one(self):
        assert resolve_n_jobs(4, 0) == 1


class TestComponentModes:
    def test_batched_matches_per_query(self, small_trace):
        cfg = fast_profile()
        batched = replay_instance(small_trace, config=cfg)
        per_query = replay_instance(small_trace, config=cfg, component_inference="per_query")
        assert_replays_identical(batched, per_query)

    def test_unknown_mode_rejected(self, small_trace):
        with pytest.raises(ValueError):
            replay_instance(small_trace, component_inference="loop")

    def test_one_counted_lookup_per_query(self, small_trace):
        """Regression for the stat double-count bug: ``hits + misses``
        equals exactly one lookup per query regardless of component
        collection, and the stage stats are identical with and without
        it (in both inference modes)."""
        cfg = fast_profile()
        results = {
            "off": replay_instance(
                small_trace, config=cfg, collect_components=False
            ),
            "batched": replay_instance(small_trace, config=cfg),
            "per_query": replay_instance(
                small_trace, config=cfg, component_inference="per_query"
            ),
        }
        n = len(small_trace)
        for name, replay in results.items():
            stats = replay.stage_stats
            assert stats["cache_hits"] + stats["cache_misses"] == n, name
        assert (
            results["off"].stage_stats
            == results["batched"].stage_stats
            == results["per_query"].stage_stats
        )

    def test_routed_arrays_unaffected_by_collection(self, small_trace):
        cfg = fast_profile()
        with_components = replay_instance(small_trace, config=cfg)
        without = replay_instance(small_trace, config=cfg, collect_components=False)
        for attr in ("stage_pred", "stage_source", "autowlm_pred"):
            assert np.array_equal(getattr(with_components, attr), getattr(without, attr))


class TestFleetSweeper:
    def test_indices_and_traces_agree(self, small_trace):
        fleet_cfg = FleetConfig(seed=9, volume_scale=0.12)
        sweeper = FleetSweeper(fleet_config=fleet_cfg, stage_config=fast_profile())
        by_index = sweeper.replay_indices([0], 1.0)
        by_trace = sweeper.replay_traces([small_trace])
        assert_replays_identical(by_index[0], by_trace[0])

    def test_parallel_traces_match_sequential(self):
        fleet_cfg = FleetConfig(seed=21, volume_scale=0.1)
        kwargs = dict(fleet_config=fleet_cfg, stage_config=fast_profile())
        seq = FleetSweeper(n_jobs=1, **kwargs).replay_indices(range(3), 1.0)
        par = FleetSweeper(n_jobs=2, **kwargs).replay_indices(range(3), 1.0)
        assert len(seq) == len(par) == 3
        for a, b in zip(seq, par):
            assert_replays_identical(a, b)


class TestPoolInitializer:
    """The global model ships to each worker once, via the pool
    initializer — never inside per-task payloads."""

    @pytest.fixture(scope="class")
    def tiny_model(self):
        gen = FleetGenerator(FleetConfig(seed=11, volume_scale=0.1))
        train = gen.generate_fleet_traces(2, 1.0, start_index=500)
        cfg = GlobalModelConfig(
            hidden_dim=12, n_conv_layers=2, epochs=2,
            max_queries_per_instance=50,
        )
        return GlobalModelTrainer(cfg).train(train)

    def test_task_payloads_never_carry_the_model(self, tiny_model):
        sweeper = FleetSweeper(
            fleet_config=FleetConfig(seed=11, volume_scale=0.1),
            stage_config=fast_profile(),
            global_model=tiny_model,
            n_jobs=2,
        )
        pool_settings = sweeper._settings(inline=False)
        assert pool_settings.use_global_model
        assert pool_settings.global_model is None
        # the per-task payload is config + scalars: orders of magnitude
        # below the model it used to embed
        settings_bytes = len(pickle.dumps(pool_settings))
        model_bytes = len(pickle.dumps(tiny_model))
        assert settings_bytes < 4096
        assert settings_bytes * 10 < model_bytes

    def test_inline_path_keeps_the_model_unpickled(self, tiny_model):
        sweeper = FleetSweeper(global_model=tiny_model)
        inline_settings = sweeper._settings(inline=True)
        assert inline_settings.global_model is tiny_model

    def test_pool_results_match_inline_with_global_model(self, tiny_model):
        """Replay outputs are unchanged by the initializer path: the
        pooled sweep (worker-installed model) reproduces the inline
        sweep (direct model reference) bit for bit."""
        kwargs = dict(
            fleet_config=FleetConfig(seed=11, volume_scale=0.1),
            stage_config=fast_profile(),
            global_model=tiny_model,
        )
        seq = FleetSweeper(n_jobs=1, **kwargs).replay_indices(range(3), 1.0)
        par = FleetSweeper(n_jobs=2, **kwargs).replay_indices(range(3), 1.0)
        assert all(np.isfinite(r.global_pred).any() for r in seq)
        for a, b in zip(seq, par):
            assert_replays_identical(a, b)

    def test_missing_worker_model_is_an_error(self):
        from repro.harness.parallel import (
            _ReplaySettings,
            _resolve_global_model,
        )

        orphan = _ReplaySettings(
            stage_config=None,
            random_state=0,
            collect_components=False,
            component_inference="batched",
            use_global_model=True,
            global_model=None,
        )
        with pytest.raises(RuntimeError, match="no global model"):
            _resolve_global_model(orphan)


class TestParallelFleetGeneration:
    def test_generate_fleet_traces_n_jobs_parity(self):
        gen = FleetGenerator(FleetConfig(seed=4, volume_scale=0.1))
        seq = gen.generate_fleet_traces(3, 1.0, n_jobs=1)
        par = gen.generate_fleet_traces(3, 1.0, n_jobs=2)
        assert [t.instance.instance_id for t in seq] == [t.instance.instance_id for t in par]
        for a, b in zip(seq, par):
            assert len(a) == len(b)
            np.testing.assert_array_equal([r.exec_time for r in a], [r.exec_time for r in b])
            np.testing.assert_array_equal(
                np.vstack([r.features for r in a]),
                np.vstack([r.features for r in b]),
            )


class TestSweepParity:
    def test_run_sweep_n_jobs_2_matches_sequential(self):
        """A 3-instance sweep (with a trained global model) is array-for-
        array identical under ``n_jobs=2`` and ``n_jobs=1``."""
        cfg = SweepConfig(
            seed=5,
            n_eval_instances=3,
            n_train_instances=2,
            duration_days=1.0,
            volume_scale=0.12,
            global_model=GlobalModelConfig(
                hidden_dim=16,
                n_conv_layers=2,
                epochs=4,
                max_queries_per_instance=80,
            ),
        )
        seq = run_sweep(cfg, n_jobs=1)
        par = run_sweep(cfg, n_jobs=2)
        assert len(seq.replays) == len(par.replays) == 3
        for a, b in zip(seq.replays, par.replays):
            assert_replays_identical(a, b)
