"""Tests for what-if reasoning with the global model (paper Section 6.1)."""

import dataclasses

import numpy as np
import pytest

from repro.core.config import GlobalModelConfig
from repro.global_model import GlobalModelTrainer, record_to_graph
from repro.workload import FleetConfig, FleetGenerator


@pytest.fixture(scope="module")
def setup():
    gen = FleetGenerator(FleetConfig(seed=61, volume_scale=0.35))
    train = gen.generate_fleet_traces(8, 2.0, start_index=300)
    model = GlobalModelTrainer(
        GlobalModelConfig(hidden_dim=40, n_conv_layers=3, epochs=20)
    ).train(train)
    trace = gen.generate_trace(gen.sample_instance(1), 1.0)
    return model, trace


class TestWhatIfScaling:
    def test_more_nodes_predicts_not_slower_on_heavy_queries(self, setup):
        """Across the fleet, bigger clusters run the same plan faster; a
        trained global model should reflect that direction when asked a
        counterfactual node count (aggregate over heavy queries)."""
        model, trace = setup
        heavy = sorted(trace, key=lambda r: r.exec_time, reverse=True)[:10]
        instance = trace.instance
        small = dataclasses.replace(instance, n_nodes=2)
        large = dataclasses.replace(instance, n_nodes=max(8, instance.n_nodes * 2))
        pred_small = model.predict_graphs([record_to_graph(r.plan, small) for r in heavy])
        pred_large = model.predict_graphs([record_to_graph(r.plan, large) for r in heavy])
        # direction on the geometric mean (individual queries may wiggle)
        assert np.exp(np.mean(np.log1p(pred_large))) <= np.exp(
            np.mean(np.log1p(pred_small))
        ) * 1.05

    def test_counterfactual_changes_prediction(self, setup):
        """The node count must actually be part of the model's input."""
        model, trace = setup
        record = max(trace, key=lambda r: r.exec_time)
        instance = trace.instance
        a = model.predict(record.plan, dataclasses.replace(instance, n_nodes=2))
        b = model.predict(record.plan, dataclasses.replace(instance, n_nodes=32))
        assert a.exec_time != pytest.approx(b.exec_time)
