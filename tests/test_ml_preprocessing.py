"""Tests for scalers and target transforms."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.preprocessing import LogTargetTransform, StandardScaler, clip_features


class TestStandardScaler:
    def test_zero_mean_unit_variance(self):
        rng = np.random.default_rng(0)
        X = rng.normal(loc=5, scale=3, size=(500, 4))
        Z = StandardScaler().fit_transform(X)
        np.testing.assert_allclose(Z.mean(axis=0), 0.0, atol=1e-9)
        np.testing.assert_allclose(Z.std(axis=0), 1.0, atol=1e-9)

    def test_constant_column_not_divided_by_zero(self):
        X = np.column_stack([np.ones(10), np.arange(10, dtype=float)])
        Z = StandardScaler().fit_transform(X)
        assert np.isfinite(Z).all()

    def test_inverse_roundtrip(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(50, 3))
        scaler = StandardScaler().fit(X)
        np.testing.assert_allclose(scaler.inverse_transform(scaler.transform(X)), X, atol=1e-9)

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            StandardScaler().transform(np.zeros((2, 2)))


class TestLogTargetTransform:
    @given(
        st.lists(
            st.floats(min_value=0, max_value=1e5, allow_nan=False),
            min_size=1,
            max_size=30,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_roundtrip(self, values):
        t = LogTargetTransform()
        y = np.asarray(values)
        np.testing.assert_allclose(t.inverse(t.transform(y)), y, rtol=1e-9, atol=1e-9)

    def test_negative_inputs_clamped(self):
        t = LogTargetTransform()
        assert t.transform(np.array([-5.0]))[0] == 0.0

    def test_inverse_clipped_at_max(self):
        t = LogTargetTransform(max_seconds=100.0)
        assert t.inverse(np.array([40.0]))[0] == 100.0

    def test_inverse_variance_positive_and_monotone(self):
        t = LogTargetTransform()
        v1 = t.inverse_variance(np.array([1.0]), np.array([0.1]))
        v2 = t.inverse_variance(np.array([1.0]), np.array([0.5]))
        assert 0 < v1[0] < v2[0]

    def test_inverse_variance_zero_when_certain(self):
        t = LogTargetTransform()
        v = t.inverse_variance(np.array([2.0]), np.array([0.0]))
        assert v[0] == pytest.approx(0.0, abs=1e-12)


class TestClipFeatures:
    def test_replaces_nan_and_inf(self):
        X = np.array([[np.nan, np.inf, -np.inf, 1.0]])
        out = clip_features(X, low=-10, high=10)
        np.testing.assert_allclose(out, [[0.0, 10.0, -10.0, 1.0]])

    def test_clips_range(self):
        out = clip_features(np.array([[1e20, -1e20]]), low=-5, high=5)
        np.testing.assert_allclose(out, [[5.0, -5.0]])
