"""Tests for the elastic fleet control plane.

The headline contract is **reshard parity**: live migrations and shard-set
resizes injected at arbitrary points of a fleet replay leave every
instance's arrays and accounting bit-identical to the static fleet — the
routing table only decides *where* an instance's sequenced op stream
runs, never what it computes.  Around that: the versioned routing table
(seeded from ``shard_for``, so an untouched fleet is byte-identical to
the static map), the cut-sequence migration protocol under live traffic,
the load-watching rebalancer (pure planning + the executing controller),
the per-shard queue-depth stats, and the MIGRATE/RESIZE/ROUTES wire ops.
"""

import threading
import time

import numpy as np
import pytest

# shared parity helpers live with the service suite (one definition)
from test_service import assert_replays_identical

from repro.core.config import ControlConfig, GatewayConfig, ReplayBackend, fast_profile
from repro.harness import FleetSweeper
from repro.harness.replay import replay_instance
from repro.scenarios import registered_scenarios
from repro.service import (
    FleetController,
    FleetGateway,
    WireClient,
    WireServer,
    instance_loads,
    plan_rebalance,
    shard_for,
)
from repro.workload import FleetConfig, FleetGenerator

SEED = 3
VOLUME = 0.1
DURATION = 0.7
N_INSTANCES = 3

FLEET = FleetConfig(seed=SEED, volume_scale=VOLUME)


def make_sweeper(**kwargs):
    return FleetSweeper(
        fleet_config=kwargs.pop("fleet_config", FLEET),
        stage_config=fast_profile(),
        random_state=0,
        **kwargs,
    )


@pytest.fixture(scope="module")
def traces():
    gen = FleetGenerator(FLEET)
    return [gen.generate_trace(gen.sample_instance(i), DURATION) for i in range(N_INSTANCES)]


@pytest.fixture(scope="module")
def direct_replays(traces):
    return make_sweeper().replay_traces(traces)


def fleet_gateway(n_shards=2, **kwargs):
    return FleetGateway(
        GatewayConfig(n_shards=n_shards), stage_config=fast_profile(), **kwargs
    )


# ---------------------------------------------------------------------------
# the versioned routing table
# ---------------------------------------------------------------------------
class TestRoutingTable:
    @pytest.mark.parametrize("n_shards", [1, 2, 3])
    def test_untouched_fleet_matches_shard_for(self, traces, n_shards):
        """Before any control-plane action the routing table *is* the
        static ``shard_for`` map, at version 0 — a fleet nobody reshards
        behaves byte-identically to the pre-elastic gateway."""
        with fleet_gateway(n_shards) as gateway:
            for trace in traces:
                gateway.register_instance(trace.instance)
            routes = gateway.routes()
        assert routes["version"] == 0
        assert routes["n_shards"] == n_shards
        assert routes["assignments"] == {
            trace.instance.instance_id: shard_for(trace.instance.instance_id, n_shards)
            for trace in traces
        }

    def test_migration_moves_route_and_bumps_version(self, traces):
        with fleet_gateway(2) as gateway:
            trace = traces[0]
            instance_id = trace.instance.instance_id
            source = gateway.register_instance(trace.instance)
            gateway.predict(instance_id, trace[0], timeout=60)
            info = gateway.migrate_instance(instance_id, 1 - source)
            assert info["source"] == source
            assert info["target"] == 1 - source
            routes = gateway.routes()
            assert routes["version"] == 1
            assert routes["assignments"][instance_id] == 1 - source
            # the instance keeps serving from its new shard
            assert gateway.predict(instance_id, trace[1], timeout=60).exec_time >= 0.0

    def test_migrate_validations(self, traces):
        with fleet_gateway(2) as gateway:
            trace = traces[0]
            instance_id = trace.instance.instance_id
            source = gateway.register_instance(trace.instance)
            with pytest.raises(KeyError, match="not registered"):
                gateway.migrate_instance("no-such-instance", 0)
            with pytest.raises(ValueError, match="shard"):
                gateway.migrate_instance(instance_id, 7)
            # same-shard migration is a no-op, not an error
            info = gateway.migrate_instance(instance_id, source)
            assert info["source"] == info["target"] == source
            assert gateway.routes()["version"] == 0

    def test_resize_rehashes_to_canonical_map(self, traces):
        """After a resize the placement equals a fresh ``n_shards``-sized
        fleet's — growth and shrink converge on the static map."""
        with fleet_gateway(2) as gateway:
            for trace in traces:
                gateway.register_instance(trace.instance)
            info = gateway.resize(3)
            assert info["n_shards"] == 3 and info["previous"] == 2
            assert gateway.routes()["assignments"] == {
                t.instance.instance_id: shard_for(t.instance.instance_id, 3)
                for t in traces
            }
            gateway.resize(1)
            assert gateway.n_shards == 1
            assert set(gateway.routes()["assignments"].values()) == {0}
            # the shrunken fleet still serves every instance
            for trace in traces:
                prediction = gateway.predict(trace.instance.instance_id, trace[0], timeout=60)
                assert prediction.exec_time >= 0.0

    def test_stats_report_queue_depth_and_routes(self, traces):
        with fleet_gateway(2) as gateway:
            for trace in traces:
                gateway.register_instance(trace.instance)
            for trace in traces:
                gateway.predict_async(trace.instance.instance_id, trace[0])
            gateway.drain()
            stats = gateway.stats()
        for row in stats["shards"]:
            assert row["queue_depth"] == 0  # drained
            assert row["n_predicts"] >= 0
        assert sum(row["n_predicts"] for row in stats["shards"]) == len(traces)
        assert stats["routes"]["version"] == 0
        assert len(stats["routes"]["assignments"]) == len(traces)


# ---------------------------------------------------------------------------
# reshard parity: migrations/resizes mid-replay are invisible in results
# ---------------------------------------------------------------------------
def _reshard_hook(n_shards):
    """A hook that exercises every control-plane motion mid-replay:
    grow by one shard (rehash), migrate one instance off its canonical
    shard, then shrink back to the original count (rehash again)."""

    def hook(gateway):
        time.sleep(0.05)  # let some of the replay stream get in flight
        gateway.resize(n_shards + 1)
        routes = gateway.routes()
        instance_id = sorted(routes["assignments"])[0]
        source = routes["assignments"][instance_id]
        gateway.migrate_instance(instance_id, (source + 1) % (n_shards + 1))
        time.sleep(0.05)
        gateway.resize(n_shards)

    return hook


# every registered scenario must survive a mid-replay reshard
# bit-identically; shard and client counts rotate through the grid as in
# test_gateway so the whole grid is covered across the matrix
_SCENARIO_GRID = [
    pytest.param(scenario, (i % 3) + 1, (i % 2) + 1, id=scenario.name)
    for i, scenario in enumerate(registered_scenarios())
]


class TestReshardParity:
    @pytest.mark.parametrize("scenario,n_shards,clients", _SCENARIO_GRID)
    def test_scenario_bit_identical_with_mid_replay_reshard(
        self, scenario, n_shards, clients
    ):
        fleet = FleetConfig(seed=5, volume_scale=VOLUME, scenario=scenario.config)
        direct = make_sweeper(fleet_config=fleet).replay_indices(range(2), 1.0)
        via = make_sweeper(
            fleet_config=fleet,
            backend=ReplayBackend(
                mode="gateway", clients=clients, gateway=GatewayConfig(n_shards=n_shards)
            ),
            reshard_hook=_reshard_hook(n_shards),
            n_jobs=2,
        ).replay_indices(range(2), 1.0)
        for a, b in zip(direct, via):
            assert_replays_identical(a, b)

    def test_reshard_parity_over_the_socket(self, traces, direct_replays):
        """The hook reshards the gateway *behind* a live wire server
        while TCP connections replay through it — still bit-identical."""
        via = make_sweeper(
            backend=ReplayBackend(
                mode="socket", clients=2, gateway=GatewayConfig(n_shards=2)
            ),
            reshard_hook=_reshard_hook(2),
            n_jobs=2,
        ).replay_traces(traces)
        for direct, replay in zip(direct_replays, via):
            assert_replays_identical(direct, replay)

    def test_reshard_hook_requires_fleet_backend(self, traces):
        with pytest.raises(ValueError, match="reshard_hook"):
            make_sweeper(reshard_hook=lambda gateway: None).replay_traces(traces)

    def test_hook_failure_fails_the_sweep(self, traces):
        def bad_hook(gateway):
            raise RuntimeError("injected reshard failure")

        with pytest.raises(RuntimeError, match="injected reshard failure"):
            make_sweeper(
                backend=ReplayBackend(mode="gateway", gateway=GatewayConfig(n_shards=2)),
                reshard_hook=bad_hook,
            ).replay_traces(traces)

    def test_backend_excludes_legacy_kwargs(self, traces):
        with pytest.raises(ValueError, match="mutually exclusive"):
            make_sweeper(
                backend=ReplayBackend(mode="gateway"), via_gateway=True
            ).replay_traces(traces)
        with pytest.raises(ValueError, match="mutually exclusive"):
            replay_instance(
                traces[0],
                config=fast_profile(),
                backend=ReplayBackend(mode="service"),
                via_service=True,
            )

    def test_replay_instance_gateway_backend(self, traces, direct_replays):
        """`replay_instance` gains the gateway tier through the unified
        backend parameter (previously only reachable via the sweeper)."""
        via = replay_instance(
            traces[0],
            config=fast_profile(),
            backend=ReplayBackend(
                mode="gateway", clients=2, gateway=GatewayConfig(n_shards=2)
            ),
        )
        assert_replays_identical(direct_replays[0], via)


class TestLiveMigrationParity:
    def test_live_streams_with_migrations_bit_identical(self, traces, direct_replays):
        """One submitter thread per instance in *live* mode (seq=None —
        ops claimed one at a time, so migrations really do cut streams
        mid-flight and buffer the tail) while every instance is migrated
        concurrently; predictions must match the direct replay exactly."""
        results = {}
        errors = []
        with fleet_gateway(3) as gateway:
            for trace in traces:
                gateway.register_instance(trace.instance)

            def submit_live(trace):
                instance_id = trace.instance.instance_id
                try:
                    futures = []
                    for record in trace:
                        futures.append(gateway.predict_async(instance_id, record))
                        gateway.observe(instance_id, record)
                    results[instance_id] = [f.result(timeout=120) for f in futures]
                except BaseException as exc:  # surfaced after join
                    errors.append(exc)

            threads = [
                threading.Thread(target=submit_live, args=(trace,)) for trace in traces
            ]
            for thread in threads:
                thread.start()
            # migrate every instance while its stream is in flight
            for trace in traces:
                instance_id = trace.instance.instance_id
                source = gateway.routes()["assignments"][instance_id]
                info = gateway.migrate_instance(instance_id, (source + 1) % 3, timeout=120)
                assert info["buffered_ops"] >= 0
            for thread in threads:
                thread.join()
            assert not errors, errors
            gateway.drain()
            assert gateway.routes()["version"] == len(traces)
            stats = gateway.stats()

        for trace, direct in zip(traces, direct_replays):
            instance_id = trace.instance.instance_id
            got = np.array([c.prediction.exec_time for c in results[instance_id]])
            assert np.array_equal(got, direct.stage_pred)
            # accounting (cache counters, retrains) survives the handoff
            stage = stats["instances"][instance_id]["stage"]
            assert stage["cache_hits"] == direct.stage_stats["cache_hits"]
            assert stage["n_local_retrains"] == direct.stage_stats["n_local_retrains"]


# ---------------------------------------------------------------------------
# the load-watching rebalancer
# ---------------------------------------------------------------------------
def _stats(assignments, op_counts, queue_depths=None, n_shards=None, forecast_loads=None):
    """A synthetic gateway stats snapshot for planner unit tests."""
    n_shards = n_shards or (max(assignments.values()) + 1 if assignments else 1)
    queue_depths = queue_depths or {}
    forecast_loads = forecast_loads or {}
    return {
        "shards": [
            {"shard": i, "alive": True, "queue_depth": queue_depths.get(i, 0)}
            for i in range(n_shards)
        ],
        "routes": {"version": 0, "n_shards": n_shards, "assignments": dict(assignments)},
        "instances": {
            instance_id: {
                "scheduler": {"n_predicts": ops, "n_observes": 0},
                "stage": {"forecast_load": forecast_loads.get(instance_id, 0.0)},
            }
            for instance_id, ops in op_counts.items()
        },
    }


class TestRebalancePlanning:
    def test_balanced_fleet_plans_nothing(self):
        stats = _stats({"a": 0, "b": 1}, {"a": 100, "b": 100})
        plan = plan_rebalance(stats, ControlConfig())
        assert plan.empty
        assert plan.total_ops == 200

    def test_moves_from_hot_to_cold(self):
        stats = _stats({"a": 0, "b": 0, "c": 1}, {"a": 900, "b": 100, "c": 10})
        plan = plan_rebalance(stats, ControlConfig(imbalance_tolerance=0.25))
        assert len(plan.migrations) == 1
        move = plan.migrations[0]
        assert move.source == 0 and move.target == 1
        # the largest instance fitting in half the gap is chosen
        assert move.instance_id == "b"

    def test_respects_min_total_ops(self):
        stats = _stats({"a": 0, "b": 1}, {"a": 3, "b": 0})
        assert plan_rebalance(stats, ControlConfig(min_total_ops=100)).empty

    def test_respects_max_migrations_per_cycle(self):
        stats = _stats(
            {"a": 0, "b": 0, "c": 0, "d": 1}, {"a": 400, "b": 300, "c": 200, "d": 0}
        )
        config = ControlConfig(max_migrations_per_cycle=2, imbalance_tolerance=0.01)
        plan = plan_rebalance(stats, config)
        assert 1 <= len(plan.migrations) <= 2

    def test_queue_depth_weighs_into_load(self):
        # equal op history, but shard 0 has a deep queue: it is hotter
        stats = _stats(
            {"a": 0, "b": 1},
            {"a": 100, "b": 100},
            queue_depths={0: 50},
        )
        plan = plan_rebalance(stats, ControlConfig(imbalance_tolerance=0.1))
        assert plan.shard_loads[0] > plan.shard_loads[1]

    def test_planning_is_deterministic(self):
        stats = _stats({"a": 0, "b": 0, "c": 1}, {"a": 500, "b": 200, "c": 0})
        config = ControlConfig()
        assert plan_rebalance(stats, config) == plan_rebalance(stats, config)

    def test_single_shard_plans_nothing(self):
        stats = _stats({"a": 0, "b": 0}, {"a": 900, "b": 100}, n_shards=1)
        assert plan_rebalance(stats, ControlConfig()).empty


class TestForecastLoadSource:
    """``ControlConfig.load_source="forecast"`` rebalances on where load
    is *going* (each instance's ``forecast_load`` stage stat) instead of
    where it has been (trailing op totals)."""

    def test_trailing_is_the_default(self):
        stats = _stats(
            {"a": 0, "b": 1},
            {"a": 100, "b": 50},
            forecast_loads={"a": 1.0, "b": 99.0},
        )
        assert instance_loads(stats) == {"a": 100.0, "b": 50.0}

    def test_forecast_source_reads_stage_forecast_load(self):
        stats = _stats(
            {"a": 0, "b": 1},
            {"a": 100, "b": 50},
            forecast_loads={"a": 1.0, "b": 99.0},
        )
        config = ControlConfig(load_source="forecast")
        assert instance_loads(stats, config) == {"a": 1.0, "b": 99.0}

    def test_all_cold_forecasts_fall_back_to_trailing(self):
        """Forecasting off (or every forecaster cold) reports all-zero
        loads — the planner must not balance on a zero signal."""
        stats = _stats({"a": 0, "b": 1}, {"a": 100, "b": 50})
        config = ControlConfig(load_source="forecast")
        assert instance_loads(stats, config) == {"a": 100.0, "b": 50.0}

    def test_forecast_source_flips_the_plan(self):
        """Trailing history says shard 0 is hot; the forecast says the
        load is moving to shard 1 — the planner must follow the source."""
        stats = _stats(
            {"a": 0, "b": 0, "c": 1, "d": 1},
            {"a": 900, "b": 300, "c": 10, "d": 10},
            forecast_loads={"a": 5.0, "b": 5.0, "c": 800.0, "d": 300.0},
        )
        trailing = plan_rebalance(stats, ControlConfig(imbalance_tolerance=0.25))
        forecast = plan_rebalance(
            stats, ControlConfig(imbalance_tolerance=0.25, load_source="forecast")
        )
        assert trailing.migrations and trailing.migrations[0].source == 0
        assert forecast.migrations and forecast.migrations[0].source == 1

    def test_bad_load_source_rejected(self):
        with pytest.raises(ValueError, match="load_source"):
            ControlConfig(load_source="chaos")


# ---------------------------------------------------------------------------
# watcher-thread resilience (the control-plane bugfix sweep)
# ---------------------------------------------------------------------------
def _wait_until(predicate, timeout=5.0):
    deadline = time.time() + timeout
    while time.time() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return False


class TestWatcherResilience:
    """The background watcher must outlive failed control cycles: a
    transient planning/migration error is recorded and the loop keeps
    cycling — only the clean gateway-closed signal (RuntimeError) exits."""

    def make_controller(self):
        # no gateway needed: these tests inject step() directly
        return FleetController(None, ControlConfig(cycle_interval_s=0.01))

    def test_fault_injected_step_keeps_the_watcher_alive(self):
        controller = self.make_controller()

        def flaky_step():
            raise ValueError("injected plan failure")

        controller.step = flaky_step
        controller.start()
        try:
            assert _wait_until(lambda: controller.stats()["n_errors"] >= 3)
            stats = controller.stats()
            assert stats["watcher_alive"]
            assert stats["last_error"] == "ValueError: injected plan failure"
            assert stats["n_cycles"] >= stats["n_errors"]
        finally:
            assert controller.stop() is True
        assert not controller.stats()["watcher_alive"]

    def test_runtime_error_still_exits_cleanly(self):
        controller = self.make_controller()

        def closed_gateway_step():
            raise RuntimeError("gateway closed")

        controller.step = closed_gateway_step
        controller.start()
        assert _wait_until(lambda: not controller.stats()["watcher_alive"])
        stats = controller.stats()
        assert stats["n_errors"] == 0  # a clean exit is not an error
        assert stats["last_error"] is None
        assert controller.stop() is True

    def test_stop_reports_failed_join_and_keeps_the_thread(self):
        controller = self.make_controller()
        entered = threading.Event()
        blocker = threading.Event()

        def wedged_step():
            entered.set()
            blocker.wait(30)

        controller.step = wedged_step
        controller.start()
        try:
            assert entered.wait(5)
            # the watcher is wedged inside step(): the join must time out,
            # report failure, and keep the thread reference so a later
            # start() cannot leak a second watcher
            assert controller.stop(timeout=0.05) is False
            assert controller.stats()["watcher_alive"]
            controller.start()  # no-op while the old watcher lives
            assert controller.stats()["watcher_alive"]
        finally:
            blocker.set()
        assert controller.stop(timeout=5) is True
        assert not controller.stats()["watcher_alive"]

    def test_stop_without_watcher_is_a_trivial_success(self):
        assert self.make_controller().stop() is True

    def test_stats_shape(self):
        stats = self.make_controller().stats()
        assert stats == {
            "n_cycles": 0,
            "n_errors": 0,
            "last_error": None,
            "n_migrations": 0,
            "watcher_alive": False,
        }


class TestFleetController:
    def test_step_executes_planned_moves(self, traces):
        with fleet_gateway(2) as gateway:
            for trace in traces:
                gateway.register_instance(trace.instance)
            # skew the fleet: everything onto shard 0, then warm it up
            for trace in traces:
                gateway.migrate_instance(trace.instance.instance_id, 0)
            for trace in traces:
                instance_id = trace.instance.instance_id
                for i in range(10):
                    gateway.predict_async(instance_id, trace[i])
                    gateway.observe(instance_id, trace[i])
            gateway.drain()
            controller = FleetController(
                gateway, ControlConfig(imbalance_tolerance=0.1, min_total_ops=1)
            )
            plan = controller.step()
            assert not plan.empty
            assert controller.history  # the move actually executed
            moved = controller.history[0]
            assert gateway.routes()["assignments"][moved["instance_id"]] == moved["target"]
            # the moved instance still serves
            trace = next(
                t for t in traces if t.instance.instance_id == moved["instance_id"]
            )
            assert gateway.predict(moved["instance_id"], trace[10], timeout=60).exec_time >= 0.0

    def test_background_watcher_starts_and_stops(self, traces):
        with fleet_gateway(2) as gateway:
            gateway.register_instance(traces[0].instance)
            config = ControlConfig(cycle_interval_s=0.05, min_total_ops=10**9)
            with FleetController(gateway, config) as controller:
                time.sleep(0.2)  # a few idle cycles
                assert controller.history == []
            controller.stop()  # idempotent


# ---------------------------------------------------------------------------
# admin ops over the wire
# ---------------------------------------------------------------------------
class TestWireAdminOps:
    def test_migrate_resize_routes_over_tcp(self, traces):
        gateway = fleet_gateway(2)
        server = WireServer(gateway)
        try:
            for trace in traces:
                gateway.register_instance(trace.instance)
            host, port = server.start()
            with WireClient(host, port, name="admin") as client:
                routes = client.routes()
                assert routes == gateway.routes()
                instance_id = traces[0].instance.instance_id
                source = routes["assignments"][instance_id]
                info = client.migrate_instance(instance_id, 1 - source)
                assert info["target"] == 1 - source
                assert client.routes()["assignments"][instance_id] == 1 - source
                resized = client.resize(3)
                assert resized["n_shards"] == 3
                assert client.routes()["n_shards"] == 3
                # the resharded fleet keeps serving over the same session
                prediction = client.predict(instance_id, traces[0][0])
                assert prediction.exec_time >= 0.0
        finally:
            server.close()
            gateway.close()
