"""Parity tests for the batched hot paths.

The hot-path overhaul batches three per-op costs — the router's cache
probe (``ExecTimeCache.lookup_predictions`` + ``BatchRouter.route_batch``),
the scheduler's per-queue-hop transport envelopes, and the global
model's GCN forward (``DirectedGCN.predict_graphs_stable`` /
``GlobalModel.predict_many``) — all under the repo's determinism
contract: batching is a pure performance knob, invisible bit-for-bit in
results *and* cache/counter accounting.  This suite pins each batched
implementation against its per-op reference directly:

- ``route_batch`` vs a per-record ``route`` loop, for every registered
  scenario's workload (the envelope-batched transports are held to the
  same contract end-to-end by the gateway/wire scenario parity suites);
- ``lookup_predictions`` (and the precomputed per-entry predictions it
  reads) vs sequential counted lookups and freshly computed Welford
  intervals;
- the order-stable batched GCN forward vs one-graph-at-a-time forwards,
  under hypothesis-driven batch-size and order permutations.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import ExecTimeCache
from repro.core.config import GlobalModelConfig, StageConfig, fast_profile
from repro.core.stage import BatchRouter, StagePredictor
from repro.global_model import GlobalModelTrainer
from repro.ml.gcn import DirectedGCN, GraphBatch, PlanGraph, _row_stable_width
from repro.ml.intervals import NOMINAL_CONFIDENCE, welford_interval
from repro.scenarios import registered_scenarios
from repro.workload import FleetConfig, FleetGenerator

SEED = 13
VOLUME = 0.12
DURATION = 0.8

#: window sizes the batched drivers cycle through — deliberately ragged
#: so batch boundaries land everywhere relative to retrains/evictions
WINDOW_SIZES = (1, 4, 2, 7, 3)


def _windows(records, sizes=WINDOW_SIZES):
    start, i = 0, 0
    while start < len(records):
        size = sizes[i % len(sizes)]
        yield records[start : start + size]
        start += size
        i += 1


def _make_stage(trace, global_model=None, config=None):
    return StagePredictor(
        trace.instance,
        global_model=global_model,
        config=config or fast_profile(),
        random_state=0,
    )


def _drive(stage, records, batched: bool):
    """Replay predict-window/observe-window rounds through one router.

    Both drivers apply the exact same op stream — a window of predicts,
    a flush, then that window's observes — differing only in whether the
    predicts go through ``route_batch`` or a per-record ``route`` loop.
    """
    router = BatchRouter(stage)
    components = []
    for window in _windows(records):
        window = list(window)
        if batched:
            slots = router.route_batch(window)
        else:
            slots = [router.route(record) for record in window]
        router.flush()
        components.extend(slot.components for slot in slots)
        for record in window:
            router.observe(record)
    return components


def _accounting(stage):
    return (
        stage.cache.hits,
        stage.cache.misses,
        stage.cache.evictions,
        len(stage.cache),
        {source: count for source, count in stage.source_counts.items()},
        list(stage.interval_width_bins),
        stage.local.n_retrains,
    )


def _assert_components_identical(a, b):
    assert len(a) == len(b)
    for left, right in zip(a, b):
        assert left.prediction.source == right.prediction.source
        assert left.prediction.exec_time == right.prediction.exec_time
        assert left.prediction.interval_low == right.prediction.interval_low
        assert left.prediction.interval_high == right.prediction.interval_high
        assert (left.cache is None) == (right.cache is None)
        assert (left.local is None) == (right.local is None)
        if left.local is not None:
            assert left.local.exec_time == right.local.exec_time
        assert left.local_ready == right.local_ready
        assert left.local_generation == right.local_generation


# ---------------------------------------------------------------------------
# route_batch vs per-op route, across every registered scenario
# ---------------------------------------------------------------------------
class TestRouteBatchParity:
    @pytest.mark.parametrize(
        "scenario", registered_scenarios(), ids=lambda s: s.name
    )
    def test_bit_identical_for_every_scenario(self, scenario):
        fleet = FleetConfig(seed=SEED, volume_scale=VOLUME, scenario=scenario.config)
        gen = FleetGenerator(fleet)
        trace = gen.generate_trace(gen.sample_instance(0), DURATION)
        records = [trace[i] for i in range(len(trace))]
        stage_a, stage_b = _make_stage(trace), _make_stage(trace)
        per_op = _drive(stage_a, records, batched=False)
        batched = _drive(stage_b, records, batched=True)
        _assert_components_identical(per_op, batched)
        assert _accounting(stage_a) == _accounting(stage_b)

    def test_collect_cache_hit_local_mode_identical(self):
        """Replay component collection defers extra (uncounted) local
        inference on cache hits — the batched path must defer exactly
        the same work."""
        gen = FleetGenerator(FleetConfig(seed=SEED, volume_scale=VOLUME))
        trace = gen.generate_trace(gen.sample_instance(1), DURATION)
        records = [trace[i] for i in range(len(trace))]
        stages = [_make_stage(trace), _make_stage(trace)]
        outputs = []
        for stage, batched in zip(stages, (False, True)):
            router = BatchRouter(stage, collect_cache_hit_local=True)
            components = []
            for window in _windows(records):
                window = list(window)
                if batched:
                    slots = router.route_batch(window)
                else:
                    slots = [router.route(record) for record in window]
                router.flush()
                components.extend(slot.components for slot in slots)
                for record in window:
                    router.observe(record)
            outputs.append(components)
        _assert_components_identical(outputs[0], outputs[1])
        assert _accounting(stages[0]) == _accounting(stages[1])


# ---------------------------------------------------------------------------
# with a global model: batched fallbacks and cold routes
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def global_fleet():
    gen = FleetGenerator(FleetConfig(seed=SEED, volume_scale=0.2))
    train = gen.generate_fleet_traces(3, 1.0, start_index=40)
    trace = gen.generate_trace(gen.sample_instance(0), DURATION)
    cfg = GlobalModelConfig(
        hidden_dim=24, n_conv_layers=2, epochs=2, max_queries_per_instance=80
    )
    return GlobalModelTrainer(cfg).train(train), trace


class TestGlobalFallbackParity:
    def test_route_batch_with_global_model_identical(self, global_fleet):
        """Every global route — the cold-start kind and the uncertain-
        local kind — must take the batched forward without moving a bit.
        Thresholds are pinned so escalation actually happens."""
        global_model, trace = global_fleet
        config = fast_profile()
        config = StageConfig(
            cache=config.cache,
            pool=config.pool,
            local=config.local,
            short_circuit_seconds=0.0,
            uncertainty_threshold=0.0,
        )
        records = [trace[i] for i in range(len(trace))]
        stage_a = _make_stage(trace, global_model=global_model, config=config)
        stage_b = _make_stage(trace, global_model=global_model, config=config)
        per_op = _drive(stage_a, records, batched=False)
        batched = _drive(stage_b, records, batched=True)
        _assert_components_identical(per_op, batched)
        assert _accounting(stage_a) == _accounting(stage_b)
        from repro.core.interfaces import PredictionSource

        assert stage_a.source_counts[PredictionSource.GLOBAL] > 0

    def test_predict_many_bitwise_equals_predict_loop(self, global_fleet):
        global_model, trace = global_fleet
        plans = [trace[i].plan for i in range(min(len(trace), 60))]
        many = global_model.predict_many(plans, trace.instance, n_concurrent=0.0)
        for prediction, plan in zip(many, plans):
            want = global_model.predict(plan, trace.instance, n_concurrent=0.0)
            assert prediction.exec_time == want.exec_time
            assert prediction.interval_low == want.interval_low
            assert prediction.interval_high == want.interval_high
            assert prediction.source == want.source

    def test_predict_many_empty(self, global_fleet):
        global_model, trace = global_fleet
        assert global_model.predict_many([], trace.instance) == []


# ---------------------------------------------------------------------------
# vectorized cache lookups
# ---------------------------------------------------------------------------
class TestVectorizedCacheParity:
    def test_batch_lookup_matches_sequential_counted_lookups(self):
        rng = np.random.default_rng(0)
        a = ExecTimeCache(capacity=24)
        b = ExecTimeCache(capacity=24)
        keys = [f"k{i:02d}" for i in range(40)]
        for _ in range(250):
            for _ in range(int(rng.integers(0, 4))):
                key = keys[int(rng.integers(len(keys)))]
                exec_time = float(rng.exponential(10.0))
                a.observe(key, exec_time)
                b.observe(key, exec_time)
            probe = [
                keys[int(rng.integers(len(keys)))]
                for _ in range(int(rng.integers(1, 9)))
            ]
            want = [a.lookup_prediction(key) for key in probe]
            got = b.lookup_predictions(probe)
            for w, g in zip(want, got):
                assert (w is None) == (g is None)
                if w is not None:
                    assert w.exec_time == g.exec_time
                    assert w.interval_low == g.interval_low
                    assert w.interval_high == g.interval_high
        assert (a.hits, a.misses, a.evictions, len(a)) == (
            b.hits,
            b.misses,
            b.evictions,
            len(b),
        )

    def test_precomputed_prediction_matches_reference_arithmetic(self):
        """The per-entry answer cached at observe time must carry
        exactly the floats the old compute-on-lookup path produced."""
        cache = ExecTimeCache(capacity=16)
        rng = np.random.default_rng(1)
        for _ in range(200):
            key = f"k{int(rng.integers(12))}"
            cache.observe(key, float(rng.exponential(5.0)))
            stats = cache.stats_for(key)
            prediction = cache.peek_prediction(key)
            point = cache.alpha * stats.mean + (1.0 - cache.alpha) * stats.last
            low, high = welford_interval(
                point, stats.count, stats.sample_variance, NOMINAL_CONFIDENCE
            )
            assert prediction.exec_time == point == cache.peek(key)
            assert prediction.interval_low == low
            assert prediction.interval_high == high

    def test_eviction_drops_precomputed_prediction(self):
        cache = ExecTimeCache(capacity=2)
        for i in range(3):
            cache.observe(f"k{i}", float(i + 1))
        assert cache.peek_prediction("k0") is None
        assert cache.lookup_predictions(["k0", "k1", "k2"])[0] is None
        assert cache.evictions == 1

    def test_clear_drops_precomputed_predictions(self):
        cache = ExecTimeCache(capacity=4)
        cache.observe("k", 1.0)
        cache.clear()
        assert cache.peek_prediction("k") is None


# ---------------------------------------------------------------------------
# order-stable batched GCN forward
# ---------------------------------------------------------------------------
def _random_plan_graph(rng, n_feat=9, n_sys=5):
    n = int(rng.integers(1, 7))
    features = rng.standard_normal((n, n_feat))
    pairs = [(child, int(rng.integers(0, child))) for child in range(1, n)]
    edges = np.array(pairs, dtype=np.int64).reshape(-1, 2).T.reshape(2, -1)
    return PlanGraph(
        node_features=features,
        edges=edges,
        root=0,
        sys_features=rng.standard_normal(n_sys),
    )


class TestStableForwardProperty:
    @settings(deadline=None, max_examples=25)
    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        hidden=st.sampled_from([7, 10, 16, 24]),
        aggregation=st.sampled_from(["sum", "mean"]),
    )
    def test_batched_equals_per_graph_under_size_and_order(
        self, seed, hidden, aggregation
    ):
        rng = np.random.default_rng(seed)
        gcn = DirectedGCN(
            9,
            5,
            hidden_dim=hidden,
            n_conv_layers=2,
            dropout=0.1,
            aggregation=aggregation,
            random_state=int(seed % 997),
        )
        graphs = [_random_plan_graph(rng) for _ in range(int(rng.integers(1, 16)))]
        solo = np.array(
            [
                gcn.forward(GraphBatch([g], aggregation=aggregation), training=False)[0]
                for g in graphs
            ]
        )
        # whole-batch == solo, bit for bit
        assert (gcn.predict_graphs_stable(graphs) == solo).all()
        # order permutation
        perm = rng.permutation(len(graphs))
        permuted = gcn.predict_graphs_stable([graphs[i] for i in perm])
        assert (permuted == solo[perm]).all()
        # batch-size permutation: any split point gives the same bits
        if len(graphs) > 1:
            cut = int(rng.integers(1, len(graphs)))
            rejoined = np.concatenate(
                [
                    gcn.predict_graphs_stable(graphs[:cut]),
                    gcn.predict_graphs_stable(graphs[cut:]),
                ]
            )
            assert (rejoined == solo).all()

    def test_row_stability_predicate_matches_blas(self):
        """The width predicate the stable forward relies on, measured
        directly against the linked BLAS: stable widths must reproduce
        full-matrix rows from any stacking; for at least one unstable
        width the gemm really does move bits (this catches a BLAS swap
        that breaks the batched forward's premise)."""
        rng = np.random.default_rng(3)

        def block_mismatches(n, trials=40):
            bad = 0
            for _ in range(trials):
                m_rows = int(rng.integers(4, 80))
                k = int(rng.integers(2, 48))
                X = rng.standard_normal((m_rows, k))
                W = rng.standard_normal((k, n))
                full = X @ W
                size = int(rng.integers(2, m_rows + 1))
                start = int(rng.integers(0, m_rows - size + 1))
                if not ((X[start : start + size] @ W) == full[start : start + size]).all():
                    bad += 1
            return bad

        for width in (4, 5, 8, 16, 24, 64):
            assert _row_stable_width(width)
            assert block_mismatches(width) == 0, f"width {width} must be stable"
        for width in (1, 2, 3, 9, 10, 11):
            assert not _row_stable_width(width)
