"""Tests for the asyncio wire-protocol front door.

The headline contract extends fleet bit-parity one layer further out:
``via_socket`` replays — real TCP connections against a
:class:`WireServer` fronting a sharded :class:`FleetGateway` — produce
arrays AND cache/counter accounting identical to direct, ``via_service``
and ``via_gateway`` replays, for every registered scenario and any
shard/connection count (the accounting is fetched over the wire too, so
the whole parity check round-trips the socket).  On top of that:
session lifecycle (HELLO handshake, idle timeout that spares busy
sessions, GOODBYE, dirty-disconnect containment), raw-socket protocol
robustness (bad magic/version, truncated and oversized frames,
malformed payloads, unknown ops) and RETRY_AFTER admission control —
a saturated shard queue backs the client off without dropping its
connection.  Runs under both fork and spawn in CI's ``parallel-parity``
job.
"""

import asyncio
import contextlib
import json
import socket
import struct
import time

import pytest

# shared parity helpers live with the service suite (one definition)
from test_service import assert_replays_identical

from repro.core.config import GatewayConfig, ServiceConfig, WireConfig, fast_profile
from repro.harness import FleetSweeper, replay_instance
from repro.scenarios import registered_scenarios
from repro.service import (
    FleetGateway,
    GatewayBackpressureError,
    WireClient,
    WireError,
    WireServer,
    shard_for,
)
from repro.service import wire as wire_mod
from repro.service.wire import (
    MAGIC,
    PROTOCOL_VERSION,
    encode_frame,
)
from repro.workload import FleetConfig, FleetGenerator

SEED = 3
VOLUME = 0.1
DURATION = 0.7
N_INSTANCES = 3

FLEET = FleetConfig(seed=SEED, volume_scale=VOLUME)


def make_sweeper(**kwargs):
    return FleetSweeper(
        fleet_config=kwargs.pop("fleet_config", FLEET),
        stage_config=fast_profile(),
        random_state=0,
        **kwargs,
    )


@pytest.fixture(scope="module")
def traces():
    gen = FleetGenerator(FLEET)
    return [gen.generate_trace(gen.sample_instance(i), DURATION) for i in range(N_INSTANCES)]


@pytest.fixture(scope="module")
def direct_replays(traces):
    return make_sweeper().replay_traces(traces)


@contextlib.contextmanager
def served(traces, gateway_config=None, wire_config=None):
    """A registered fleet behind a live wire server on an ephemeral port."""
    gateway = FleetGateway(
        gateway_config or GatewayConfig(n_shards=2), stage_config=fast_profile()
    )
    server = WireServer(gateway, wire_config or WireConfig())
    try:
        for trace in traces:
            gateway.register_instance(trace.instance)
        address = server.start()
        yield gateway, address
    finally:
        server.close()
        gateway.close()


def wait_for(predicate, timeout=10.0, message="condition"):
    deadline = time.monotonic() + timeout
    while not predicate():
        assert time.monotonic() < deadline, f"timed out waiting for {message}"
        time.sleep(0.02)


# ---------------------------------------------------------------------------
# fleet bit-parity over real sockets
# ---------------------------------------------------------------------------
class TestSocketParity:
    @pytest.mark.parametrize("n_shards,n_connections", [(1, 1), (2, 2), (3, 3), (2, 4)])
    def test_bit_identical_for_any_shards_and_connections(
        self, traces, direct_replays, n_shards, n_connections
    ):
        via = make_sweeper(
            via_socket=True,
            gateway_config=GatewayConfig(n_shards=n_shards),
            service_config=ServiceConfig(max_batch_size=7),
            service_clients=n_connections,
        ).replay_traces(traces)
        for direct, replay in zip(direct_replays, via):
            assert_replays_identical(direct, replay)

    def test_concurrent_instance_submitters_bit_identical(self, traces, direct_replays):
        """n_jobs > 1 replays several instances' streams over concurrent
        TCP connections at once; reserved sequence ranges keep every
        interleaving bit-identical."""
        via = make_sweeper(
            via_socket=True,
            gateway_config=GatewayConfig(n_shards=2),
            service_clients=2,
            n_jobs=3,
        ).replay_traces(traces)
        for direct, replay in zip(direct_replays, via):
            assert_replays_identical(direct, replay)

    def test_replay_instance_via_socket(self, traces, direct_replays):
        via = replay_instance(
            traces[0],
            config=fast_profile(),
            via_socket=True,
            gateway_config=GatewayConfig(n_shards=3),
            service_clients=3,
        )
        assert_replays_identical(direct_replays[0], via)

    def test_via_socket_excludes_other_modes(self, traces):
        with pytest.raises(ValueError, match="mutually exclusive"):
            make_sweeper(via_socket=True, via_gateway=True).replay_traces(traces)
        with pytest.raises(ValueError, match="mutually exclusive"):
            make_sweeper(via_socket=True, via_service=True).replay_traces(traces)
        with pytest.raises(ValueError, match="mutually exclusive"):
            replay_instance(
                traces[0], config=fast_profile(), via_socket=True, via_service=True
            )

    def test_via_socket_rejects_per_query_mode(self, traces):
        with pytest.raises(ValueError, match="batched"):
            make_sweeper(
                via_socket=True, component_inference="per_query"
            ).replay_traces(traces)


# every registered scenario must replay over the socket bit-identically;
# shard and connection counts rotate through the grid as in test_gateway
_SCENARIO_GRID = [
    pytest.param(scenario, (i % 3) + 1, (i % 2) + 1, id=scenario.name)
    for i, scenario in enumerate(registered_scenarios())
]


class TestScenarioSocketParity:
    @pytest.mark.parametrize("scenario,n_shards,n_connections", _SCENARIO_GRID)
    def test_scenario_bit_identical_via_socket(self, scenario, n_shards, n_connections):
        fleet = FleetConfig(seed=5, volume_scale=VOLUME, scenario=scenario.config)
        direct = make_sweeper(fleet_config=fleet).replay_indices(range(2), 1.0)
        via = make_sweeper(
            fleet_config=fleet,
            via_socket=True,
            gateway_config=GatewayConfig(n_shards=n_shards),
            service_clients=n_connections,
        ).replay_indices(range(2), 1.0)
        for a, b in zip(direct, via):
            assert_replays_identical(a, b)


# ---------------------------------------------------------------------------
# session lifecycle
# ---------------------------------------------------------------------------
class TestSessionLifecycle:
    def test_hello_predict_stats_roundtrip(self, traces):
        with served(traces) as (gateway, (host, port)):
            with WireClient(host, port, name="lifecycle") as client:
                info = client.session_info
                assert info["protocol_version"] == PROTOCOL_VERSION
                assert info["session_id"] >= 1
                assert client.ping() >= 0.0
                trace = traces[0]
                instance_id = trace.instance.instance_id
                components = client.predict_components(instance_id, trace[0])
                assert components.prediction.exec_time >= 0.0
                assert components.prediction.interval_low <= components.prediction.exec_time
                client.observe(instance_id, trace[0])
                gateway.drain()
                stats = client.stats()
                assert stats["gateway"]["fleet"]["n_predicts"] == 1
                mine = stats["wire"]["sessions"][info["session_id"]]
                assert mine["client_name"] == "lifecycle"
                assert mine["predicts"] == 1
                assert mine["observes"] == 1
                assert mine["pings"] == 1
                assert mine["errors"] == 0

    def test_idle_timeout_closes_idle_session(self, traces):
        with served(traces, wire_config=WireConfig(idle_timeout_s=0.3)) as (
            _,
            (host, port),
        ):
            client = WireClient(host, port, name="idler")
            try:
                assert client.ping() >= 0.0
                time.sleep(1.2)  # well past the idle budget, nothing in flight
                with pytest.raises(WireError) as err:
                    client.ping()
                assert err.value.code == wire_mod.E_IDLE_TIMEOUT
            finally:
                client.close()

    def test_idle_timeout_spares_sessions_with_ops_in_flight(self, traces):
        """A quiet client whose prediction is stuck behind a busy shard
        is not idle: the timeout only fires with nothing in flight."""
        with served(traces, wire_config=WireConfig(idle_timeout_s=0.5)) as (
            gateway,
            (host, port),
        ):
            trace = traces[0]
            instance_id = trace.instance.instance_id
            with WireClient(host, port, name="patient") as client:
                gateway._stall(shard_for(instance_id, 2), 1.2)
                future = client.predict_async(instance_id, trace[0])
                # the stall spans >2 idle budgets; the session must ride
                # it out and still answer once the shard wakes up (the
                # ping lands mid-window — 1.2s is not a multiple of 0.5)
                assert future.result(timeout=60).prediction.exec_time >= 0.0
                assert client.ping() >= 0.0

    def test_dirty_disconnect_contained_to_that_session(self, traces):
        """Killing a connection mid-flight fails only that session's
        outstanding futures; the server, the gateway and every other
        session keep serving."""
        with served(traces) as (gateway, (host, port)):
            survivor = WireClient(host, port, name="survivor")
            victim = WireClient(host, port, name="victim")
            try:
                trace = traces[0]
                instance_id = trace.instance.instance_id
                gateway._stall(shard_for(instance_id, 2), 1.0)
                stranded = victim.predict_async(instance_id, trace[0])
                victim.abort()  # hard TCP drop: no GOODBYE, no flush
                with pytest.raises((ConnectionError, RuntimeError)):
                    stranded.result(timeout=30)
                # the server reaps exactly the dead session
                wait_for(
                    lambda: survivor.stats()["wire"]["n_sessions"] == 1,
                    message="victim session reaped",
                )
                # the survivor and the fleet are untouched — including
                # the shard the victim's op was queued on
                prediction = survivor.predict(instance_id, trace[1], timeout=60)
                assert prediction.exec_time >= 0.0
                gateway.drain()
            finally:
                survivor.close()

    def test_goodbye_closes_cleanly_and_server_keeps_serving(self, traces):
        with served(traces) as (_, (host, port)):
            first = WireClient(host, port, name="first")
            assert first.ping() >= 0.0
            first.close()  # GOODBYE handshake
            with WireClient(host, port, name="second") as second:
                wait_for(
                    lambda: second.stats()["wire"]["n_sessions"] == 1,
                    message="first session reaped",
                )
                assert second.ping() >= 0.0


# ---------------------------------------------------------------------------
# protocol robustness, straight over raw sockets
# ---------------------------------------------------------------------------
def _recv_frame(sock):
    def read_exact(n):
        buf = b""
        while len(buf) < n:
            chunk = sock.recv(n - len(buf))
            if not chunk:
                raise ConnectionError("server closed the connection")
            buf += chunk
        return buf

    (length,) = struct.unpack("!I", read_exact(4))
    body = read_exact(length)
    op, request_id = struct.unpack_from("!BI", body)
    return op, request_id, body[5:]


def _expect_eof(sock):
    sock.settimeout(10.0)
    try:
        assert sock.recv(1) == b""
    except (ConnectionError, OSError):
        pass  # an RST says "closed" just as clearly as a FIN


def _hello(sock, name=b"raw-test"):
    payload = struct.pack("!4sH", MAGIC, PROTOCOL_VERSION) + name
    sock.sendall(encode_frame(wire_mod.OP_HELLO, 1, payload))
    op, request_id, body = _recv_frame(sock)
    assert op == wire_mod.OP_RESULT and request_id == 1
    return json.loads(body)


class TestProtocolRobustness:
    def test_bad_magic_refused_with_structured_error(self, traces):
        with served(traces[:1]) as (_, (host, port)):
            with socket.create_connection((host, port), timeout=10) as sock:
                payload = struct.pack("!4sH", b"XXXX", PROTOCOL_VERSION)
                sock.sendall(encode_frame(wire_mod.OP_HELLO, 1, payload))
                op, request_id, body = _recv_frame(sock)
                assert op == wire_mod.OP_ERROR
                assert json.loads(body)["code"] == wire_mod.E_BAD_HELLO
                _expect_eof(sock)

    def test_unsupported_version_refused(self, traces):
        with served(traces[:1]) as (_, (host, port)):
            with socket.create_connection((host, port), timeout=10) as sock:
                payload = struct.pack("!4sH", MAGIC, 99)
                sock.sendall(encode_frame(wire_mod.OP_HELLO, 1, payload))
                op, _, body = _recv_frame(sock)
                assert op == wire_mod.OP_ERROR
                assert json.loads(body)["code"] == wire_mod.E_BAD_VERSION
                _expect_eof(sock)

    def test_first_frame_must_be_hello(self, traces):
        with served(traces[:1]) as (_, (host, port)):
            with socket.create_connection((host, port), timeout=10) as sock:
                sock.sendall(encode_frame(wire_mod.OP_PING, 1))
                op, _, body = _recv_frame(sock)
                assert op == wire_mod.OP_ERROR
                assert json.loads(body)["code"] == wire_mod.E_BAD_HELLO
                _expect_eof(sock)

    def test_oversized_frame_refused_before_allocation(self, traces):
        wire_config = WireConfig(max_frame_bytes=1024)
        with served(traces[:1], wire_config=wire_config) as (_, (host, port)):
            with socket.create_connection((host, port), timeout=10) as sock:
                sock.sendall(struct.pack("!I", 1 << 20))  # body "to follow"
                op, request_id, body = _recv_frame(sock)
                assert op == wire_mod.OP_ERROR
                assert request_id == wire_mod.SESSION_RID
                assert json.loads(body)["code"] == wire_mod.E_TOO_LARGE
                _expect_eof(sock)

    def test_undersized_frame_refused(self, traces):
        with served(traces[:1]) as (_, (host, port)):
            with socket.create_connection((host, port), timeout=10) as sock:
                sock.sendall(struct.pack("!I", 2) + b"xx")  # shorter than a header
                op, request_id, body = _recv_frame(sock)
                assert op == wire_mod.OP_ERROR
                assert request_id == wire_mod.SESSION_RID
                assert json.loads(body)["code"] == wire_mod.E_MALFORMED
                _expect_eof(sock)

    def test_truncated_frame_fails_only_that_session(self, traces):
        with served(traces[:1]) as (_, (host, port)):
            bystander = WireClient(host, port, name="bystander")
            try:
                with socket.create_connection((host, port), timeout=10) as sock:
                    _hello(sock)
                    # claim 100 body bytes, send 10, vanish mid-frame
                    sock.sendall(struct.pack("!I", 100) + b"0123456789")
                # the bystander's session is untouched by the dirty EOF
                wait_for(
                    lambda: bystander.stats()["wire"]["n_sessions"] == 1,
                    message="truncated session reaped",
                )
                assert bystander.ping() >= 0.0
            finally:
                bystander.close()

    def test_malformed_payload_is_per_request_session_survives(self, traces):
        """An undecodable PREDICT payload fails that request with a
        structured error; the framing is intact, so the session lives."""
        with served(traces[:1]) as (_, (host, port)):
            with socket.create_connection((host, port), timeout=10) as sock:
                _hello(sock)
                sock.sendall(encode_frame(wire_mod.OP_PREDICT, 7, b"not a pickle"))
                op, request_id, body = _recv_frame(sock)
                assert op == wire_mod.OP_ERROR and request_id == 7
                assert json.loads(body)["code"] == wire_mod.E_MALFORMED
                sock.sendall(encode_frame(wire_mod.OP_PING, 8))
                op, request_id, _ = _recv_frame(sock)
                assert op == wire_mod.OP_RESULT and request_id == 8

    def test_unknown_op_is_per_request_session_survives(self, traces):
        with served(traces[:1]) as (_, (host, port)):
            with socket.create_connection((host, port), timeout=10) as sock:
                _hello(sock)
                sock.sendall(encode_frame(0x7F, 9))
                op, request_id, body = _recv_frame(sock)
                assert op == wire_mod.OP_ERROR and request_id == 9
                assert json.loads(body)["code"] == wire_mod.E_UNKNOWN_OP
                sock.sendall(encode_frame(wire_mod.OP_PING, 10))
                op, request_id, _ = _recv_frame(sock)
                assert op == wire_mod.OP_RESULT and request_id == 10

    def test_unknown_instance_surfaces_as_keyerror(self, traces):
        with served(traces[:1]) as (_, (host, port)):
            with WireClient(host, port) as client:
                with pytest.raises(KeyError, match="not registered"):
                    client.predict("no-such-instance", traces[0][0])
                assert client.ping() >= 0.0  # per-request, session lives


# ---------------------------------------------------------------------------
# admission control: RETRY_AFTER, not a dropped connection
# ---------------------------------------------------------------------------
class TestAdmissionControl:
    def test_saturated_queue_backs_off_and_keeps_the_connection(self, traces):
        gateway_config = GatewayConfig(
            n_shards=2, queue_size=1, enqueue_timeout_s=0.2, retry_after_s=0.05
        )
        with served(traces, gateway_config=gateway_config) as (gateway, (host, port)):
            trace = traces[0]
            instance_id = trace.instance.instance_id
            shard = shard_for(instance_id, 2)
            with WireClient(host, port, name="surge") as client:
                gateway._stall(shard, 1.5)
                time.sleep(0.3)  # let the shard pick the sleep op up
                first = client.predict_async(instance_id, trace[0])  # fills the queue
                # ingress sequencing serialises this session's submits,
                # so the second predict meets a full queue and comes
                # back as a protocol-level RETRY_AFTER frame
                with pytest.raises(GatewayBackpressureError) as err:
                    client.predict(instance_id, trace[1])
                assert err.value.shard_index == shard
                assert err.value.instance_id == instance_id
                assert err.value.retry_after_s == pytest.approx(0.05)
                # the connection survived: the same client retries the
                # shed op on the same session once the stall clears
                assert first.result(timeout=60).prediction.exec_time >= 0.0
                retried = client.predict(instance_id, trace[1], timeout=60)
                assert retried.exec_time >= 0.0
                gateway.drain()
                stats = client.stats()
                mine = stats["wire"]["sessions"][client.session_info["session_id"]]
                assert mine["retry_after"] >= 1
                assert mine["errors"] == 0  # backpressure is not a failure


class _StubTransport:
    def __init__(self):
        self.aborted = False

    def abort(self):
        self.aborted = True


class _StubWriter:
    """Collects written frames; ``drain`` optionally hangs forever."""

    def __init__(self, hang=False):
        self.frames = []
        self.transport = _StubTransport()
        self._hang = hang

    def write(self, frame):
        self.frames.append(frame)

    async def drain(self):
        if self._hang:
            await asyncio.Event().wait()  # a reader that never drains


class TestWriteTimeout:
    """The slow-reader watchdog: a bounded drain in the write loop."""

    def _write_loop_server(self, write_timeout_s):
        server = WireServer.__new__(WireServer)
        server.config = WireConfig(write_timeout_s=write_timeout_s)
        return server

    def test_hanging_drain_reaps_session_with_structured_error(self):
        server = self._write_loop_server(0.05)

        async def scenario():
            writer = _StubWriter(hang=True)
            out_q = asyncio.Queue()
            out_q.put_nowait(encode_frame(wire_mod.OP_RESULT, 7, b"x"))
            # the loop must give up on the wedged drain by itself —
            # no sentinel is ever queued
            await asyncio.wait_for(server._write_loop(out_q, writer), timeout=10.0)
            return writer

        writer = asyncio.run(scenario())
        assert writer.transport.aborted, "slow reader must be hard-dropped"
        assert len(writer.frames) == 2
        body = writer.frames[1][struct.calcsize("!I") :]
        op, request_id = struct.unpack_from("!BI", body)
        assert op == wire_mod.OP_ERROR
        assert request_id == wire_mod.SESSION_RID
        doc = json.loads(body[struct.calcsize("!BI") :])
        assert doc["code"] == wire_mod.E_WRITE_TIMEOUT

    def test_responsive_writer_not_reaped(self):
        server = self._write_loop_server(0.05)

        async def scenario():
            writer = _StubWriter(hang=False)
            out_q = asyncio.Queue()
            out_q.put_nowait(encode_frame(wire_mod.OP_RESULT, 7, b"x"))
            out_q.put_nowait(None)  # clean shutdown sentinel
            await asyncio.wait_for(server._write_loop(out_q, writer), timeout=10.0)
            return writer

        writer = asyncio.run(scenario())
        assert not writer.transport.aborted
        assert len(writer.frames) == 1


# ---------------------------------------------------------------------------
# wire bench plumbing (scaled down; the real run is the CLI's)
# ---------------------------------------------------------------------------
class TestWireBenchSmoke:
    def test_bench_reports_grid_and_parity(self):
        from repro.service import WireBenchConfig, run_wire_bench

        result = run_wire_bench(
            WireBenchConfig(
                n_instances=2,
                duration_days=0.4,
                volume_scale=VOLUME,
                connection_counts=(1, 2),
                inflight_counts=(4,),
                n_shards=1,
                stage=fast_profile(),
            )
        )
        assert len(result.rows) == 2
        assert result.predictions_identical
        report = result.render()
        assert "conns=1" in report and "conns=2" in report
        assert "bit-identical" in report
