"""Property-based invariants over the repo's mergeable/streaming state.

The parity contracts (sequential/parallel, direct/service) rest on a
small set of algebraic properties: Welford statistics agree with their
batch definitions, moment merging is associative and
permutation-stable (to float tolerance — the *bit*-level contracts fix
an order precisely because exact associativity does not hold), cache
peeks are pure reads, and statistics epochs are monotone for any
boundary structure.  Hypothesis searches for counterexamples instead of
trusting a handful of hand-picked cases; the fixed-seed CI profile
(``tests/conftest.py``) keeps the search deterministic.
"""

import math

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.cache.exec_time_cache import ExecTimeCache
from repro.cache.welford import RunningStats
from repro.ml.intervals import (
    empirical_coverage,
    member_quantile_bounds,
    merge_width_bins,
    new_width_bins,
    welford_interval,
    width_bin_index,
    width_percentile_from_bins,
)
from repro.ml.preprocessing import RunningMoments
from repro.service.gateway import shard_for
from repro.workload.drift import AnalyzeSchedule
from repro.workload.seeding import derive_seed

# bounded, finite floats: exec-times and feature values both live well
# inside this range, and it keeps float tolerances meaningful
finite_floats = st.floats(min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False)
float_lists = st.lists(finite_floats, min_size=1, max_size=60)


def _close(a, b, rtol=1e-9, atol=1e-9):
    return np.allclose(a, b, rtol=rtol, atol=atol)


# ---------------------------------------------------------------------------
# cache/welford.py :: RunningStats
# ---------------------------------------------------------------------------
class TestRunningStats:
    @given(float_lists)
    def test_matches_batch_mean_and_variance(self, values):
        stats = RunningStats()
        for v in values:
            stats.update(v)
        assert stats.count == len(values)
        assert stats.last == values[-1]
        assert _close(stats.mean, np.mean(values), atol=1e-6)
        assert _close(stats.variance, np.var(values), rtol=1e-6, atol=1e-6)

    @given(float_lists, st.randoms(use_true_random=False))
    def test_permutation_stability(self, values, rnd):
        """Mean/variance are order-free up to float tolerance."""
        a = RunningStats()
        for v in values:
            a.update(v)
        shuffled = list(values)
        rnd.shuffle(shuffled)
        b = RunningStats()
        for v in shuffled:
            b.update(v)
        assert _close(a.mean, b.mean, rtol=1e-7, atol=1e-6)
        assert _close(a.variance, b.variance, rtol=1e-6, atol=1e-6)


# ---------------------------------------------------------------------------
# ml/preprocessing.py :: RunningMoments
# ---------------------------------------------------------------------------
def _batches(draw_lists, n_features):
    return [np.array(rows, dtype=np.float64).reshape(-1, n_features) for rows in draw_lists]


def _moments_of(X_parts, n_features):
    m = RunningMoments(n_features)
    for X in X_parts:
        m.update(X)
    return m


row_batches = st.integers(min_value=1, max_value=3).flatmap(
    lambda n_features: st.tuples(
        st.just(n_features),
        st.lists(
            st.lists(
                st.lists(finite_floats, min_size=n_features, max_size=n_features),
                min_size=1,
                max_size=12,
            ),
            min_size=3,
            max_size=3,
        ),
    )
)


class TestRunningMoments:
    @given(row_batches)
    def test_merge_associativity(self, data):
        n_features, parts = data
        a, b, c = _batches(parts, n_features)

        left = _moments_of([a], n_features).merge(
            _moments_of([b], n_features).merge(_moments_of([c], n_features))
        )
        ab = _moments_of([a], n_features).merge(_moments_of([b], n_features))
        right = ab.merge(_moments_of([c], n_features))
        direct = _moments_of([np.concatenate([a, b, c])], n_features)

        for m in (left, right):
            assert m.count == direct.count
            assert _close(m.mean, direct.mean, rtol=1e-7, atol=1e-6)
            assert _close(m.variance, direct.variance, rtol=1e-6, atol=1e-4)

    @given(row_batches)
    def test_merge_permutation_stability(self, data):
        n_features, parts = data
        a, b, c = _batches(parts, n_features)
        orders = [(a, b, c), (c, a, b), (b, c, a)]
        merged = [_moments_of(order, n_features) for order in orders]
        for m in merged[1:]:
            assert m.count == merged[0].count
            assert _close(m.mean, merged[0].mean, rtol=1e-7, atol=1e-6)
            assert _close(m.variance, merged[0].variance, rtol=1e-6, atol=1e-4)

    @given(row_batches)
    def test_update_is_merge_of_batch_moments(self, data):
        n_features, parts = data
        X = np.concatenate(_batches(parts, n_features))
        updated = _moments_of([X], n_features)
        assert _close(updated.mean, X.mean(axis=0), rtol=1e-7, atol=1e-6)
        assert _close(updated.variance, X.var(axis=0), rtol=1e-6, atol=1e-4)


# ---------------------------------------------------------------------------
# cache/exec_time_cache.py :: peek is a pure read
# ---------------------------------------------------------------------------
cache_ops = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=9),  # key id
        finite_floats,  # exec time
        st.booleans(),  # lookup before observing?
    ),
    min_size=1,
    max_size=80,
)


class TestExecTimeCachePeek:
    @given(cache_ops, st.integers(min_value=1, max_value=6))
    def test_peek_never_changes_state_or_accounting(self, ops, capacity):
        """Driving two caches identically — one saturated with peeks —
        must end in identical entries, order, values and counters."""
        plain = ExecTimeCache(capacity=capacity)
        peeked = ExecTimeCache(capacity=capacity)
        n_lookups = 0
        for key_id, exec_time, do_lookup in ops:
            key = f"k{key_id}"
            for _ in range(3):
                peeked.peek(key)
            if do_lookup:
                assert plain.lookup(key) == peeked.lookup(key)
                n_lookups += 1
            plain.observe(key, exec_time)
            peeked.observe(key, exec_time)
            for _ in range(2):
                peeked.peek(key)
        assert plain.hits == peeked.hits
        assert plain.misses == peeked.misses
        assert plain.hits + plain.misses == n_lookups
        assert plain.evictions == peeked.evictions
        assert list(plain._entries) == list(peeked._entries)
        for key in plain._entries:
            assert plain.peek(key) == peeked.peek(key)

    @given(cache_ops)
    def test_peek_is_idempotent_and_matches_lookup(self, ops):
        cache = ExecTimeCache(capacity=4)
        for key_id, exec_time, _ in ops:
            cache.observe(f"k{key_id}", exec_time)
        for key_id, _, __ in ops:
            key = f"k{key_id}"
            first = cache.peek(key)
            assert cache.peek(key) == first
            hits, misses = cache.hits, cache.misses
            assert cache.lookup(key) == first
            # exactly one counter moved, and by exactly one
            assert (cache.hits - hits) + (cache.misses - misses) == 1


# ---------------------------------------------------------------------------
# service/gateway.py :: shard_for — the fleet routing map
# ---------------------------------------------------------------------------
# ids are arbitrary non-empty strings; the map must behave for anything
# a deployment could name an instance
instance_ids = st.text(min_size=1, max_size=24)
shard_counts = st.integers(min_value=1, max_value=16)


class TestShardRoutingMap:
    """The gateway parity contracts rest on the instance→shard map
    being a *pure function* of ``(instance_id, n_shards)``: stable
    across runs and processes (it feeds the snapshot restore path), and
    a complete partition of any fleet.  The cross-process half and the
    replayed-array consequences live in ``tests/test_gateway.py``; the
    algebra is pinned here.
    """

    @given(instance_ids, shard_counts)
    def test_pure_in_range_and_hash_stable(self, instance_id, n_shards):
        shard = shard_for(instance_id, n_shards)
        assert 0 <= shard < n_shards
        # pure: recomputation never disagrees
        assert shard_for(instance_id, n_shards) == shard
        # stable: defined by the repo's keyed blake2b seed derivation,
        # never by Python's per-process salted hash()
        assert shard == derive_seed("gateway-shard", instance_id) % n_shards

    @given(st.lists(instance_ids, min_size=1, max_size=40), shard_counts)
    def test_partitions_any_fleet_completely(self, ids, n_shards):
        groups = {}
        for instance_id in ids:
            groups.setdefault(shard_for(instance_id, n_shards), []).append(instance_id)
        # exhaustive: every instance lands on exactly one valid shard
        assert sorted(sum(groups.values(), [])) == sorted(ids)
        assert all(0 <= shard < n_shards for shard in groups)

    @given(
        st.lists(instance_ids, min_size=2, max_size=30, unique=True),
        shard_counts,
        st.randoms(use_true_random=False),
    )
    def test_assignment_ignores_arrival_order(self, ids, n_shards, rnd):
        """Registering a fleet in any permutation yields the identical
        instance→shard assignment — the map has no positional state, so
        permuted replays hit the same per-instance services."""
        want = {instance_id: shard_for(instance_id, n_shards) for instance_id in ids}
        shuffled = list(ids)
        rnd.shuffle(shuffled)
        got = {instance_id: shard_for(instance_id, n_shards) for instance_id in shuffled}
        assert got == want

    @given(instance_ids)
    def test_single_shard_fleet_degenerates(self, instance_id):
        assert shard_for(instance_id, 1) == 0


# ---------------------------------------------------------------------------
# workload/drift.py :: AnalyzeSchedule epochs
# ---------------------------------------------------------------------------
schedule_args = st.tuples(
    st.floats(min_value=0.5, max_value=30.0, allow_nan=False),  # duration_days
    st.floats(min_value=0.2, max_value=10.0, allow_nan=False),  # interval_days
    st.integers(min_value=0, max_value=2**31 - 1),  # rng seed
)

outage_windows = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=25.0, allow_nan=False),
        st.floats(min_value=0.01, max_value=10.0, allow_nan=False),
    ).map(lambda w: (w[0], w[0] + w[1])),
    max_size=4,
)


class TestAnalyzeScheduleEpochs:
    @given(
        schedule_args,
        st.lists(st.floats(min_value=0.0, max_value=40.0), min_size=2, max_size=40),
    )
    def test_epoch_at_is_monotone(self, args, days):
        duration, interval, seed = args
        schedule = AnalyzeSchedule(duration, interval, np.random.default_rng(seed))
        times = sorted(d * 86_400.0 for d in days)
        epochs = [schedule.epoch_at(t) for t in times]
        assert all(a <= b for a, b in zip(epochs, epochs[1:]))
        assert epochs[0] >= 0
        assert max(epochs) < schedule.n_epochs
        for t, e in zip(times, epochs):
            assert schedule.epoch_start_day(e) * 86_400.0 <= t or e == 0

    @given(schedule_args, outage_windows)
    def test_outages_only_remove_boundaries(self, args, outages):
        duration, interval, seed = args
        plain = AnalyzeSchedule(duration, interval, np.random.default_rng(seed))
        stretched = AnalyzeSchedule(
            duration, interval, np.random.default_rng(seed), outages=outages
        )
        assert set(stretched.boundaries) <= set(plain.boundaries)
        assert stretched.n_epochs <= plain.n_epochs
        # surviving boundaries sit outside every outage window
        for boundary in stretched.boundaries:
            day = boundary / 86_400.0
            assert not any(start <= day < end for start, end in outages)


# ---------------------------------------------------------------------------
# ml/intervals.py :: the shared interval algebra
# ---------------------------------------------------------------------------
class TestWelfordInterval:
    @given(
        finite_floats,
        st.floats(min_value=1e-6, max_value=1e6, allow_nan=False),
        st.integers(min_value=2, max_value=10_000),
    )
    def test_width_shrinks_monotonically_with_n(self, point, variance, count):
        """For fixed variance, more observations -> strictly tighter
        (never wider) prediction intervals; the upper bound is exact."""
        low_n, high_n = welford_interval(point, count, variance)
        low_n1, high_n1 = welford_interval(point, count + 1, variance)
        width_n = high_n - low_n
        width_n1 = high_n1 - low_n1
        assert width_n1 <= width_n
        # the upper half-width is unclamped, so it is *strictly* monotone
        assert high_n1 < high_n

    @given(finite_floats, st.integers(min_value=0, max_value=1), finite_floats)
    def test_degenerate_entries_collapse_to_point(self, point, count, variance):
        assert welford_interval(point, count, variance) == (point, point)

    @given(
        finite_floats,
        st.floats(min_value=1e-6, max_value=1e6, allow_nan=False),
        st.integers(min_value=2, max_value=10_000),
    )
    def test_interval_contains_point_and_is_nonnegative(self, point, variance, count):
        low, high = welford_interval(point, count, variance)
        assert low <= point <= high
        assert low >= 0.0


member_matrix = st.integers(min_value=2, max_value=8).flatmap(
    lambda k: st.integers(min_value=1, max_value=12).flatmap(
        lambda n: st.tuples(
            st.lists(
                st.lists(
                    st.floats(min_value=-50.0, max_value=50.0, allow_nan=False),
                    min_size=n,
                    max_size=n,
                ),
                min_size=k,
                max_size=k,
            ),
            st.lists(
                st.lists(
                    st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
                    min_size=n,
                    max_size=n,
                ),
                min_size=k,
                max_size=k,
            ),
        )
    )
)


class TestMemberQuantileBounds:
    @given(member_matrix, st.randoms(use_true_random=False))
    def test_permutation_stable(self, matrices, rnd):
        """Shuffling the member axis changes nothing — bit-for-bit.

        np.quantile sorts each column, so member order cannot leak into
        the bounds; this is what makes ensemble intervals stable across
        any member evaluation order.
        """
        mus = np.array(matrices[0], dtype=np.float64)
        sigma2s = np.array(matrices[1], dtype=np.float64)
        order = list(range(mus.shape[0]))
        rnd.shuffle(order)
        low_a, high_a = member_quantile_bounds(mus, sigma2s)
        low_b, high_b = member_quantile_bounds(mus[order], sigma2s[order])
        assert np.array_equal(low_a, low_b)
        assert np.array_equal(high_a, high_b)

    @given(member_matrix)
    def test_bounds_contain_member_order_stable_mean(self, matrices):
        mus = np.array(matrices[0], dtype=np.float64)
        sigma2s = np.array(matrices[1], dtype=np.float64)
        low, high = member_quantile_bounds(mus, sigma2s)
        mean = np.zeros(mus.shape[1])
        for k in range(mus.shape[0]):
            mean += mus[k]
        mean /= mus.shape[0]
        assert np.all(low <= mean)
        assert np.all(high >= mean)

    @given(member_matrix)
    def test_batch_column_independence(self, matrices):
        """Each column's bounds never depend on which columns share the
        batch — the array-level analogue of batch-size invariance."""
        mus = np.array(matrices[0], dtype=np.float64)
        sigma2s = np.array(matrices[1], dtype=np.float64)
        low, high = member_quantile_bounds(mus, sigma2s)
        for j in range(mus.shape[1]):
            low_j, high_j = member_quantile_bounds(mus[:, [j]], sigma2s[:, [j]])
            assert low_j[0] == low[j]
            assert high_j[0] == high[j]


#: a bounded float or NaN (NaN marks "this source never answered")
_maybe_nan = st.one_of(
    st.floats(min_value=0.0, max_value=1e4, allow_nan=False, allow_infinity=False),
    st.just(float("nan")),
)

coverage_arrays = st.integers(min_value=1, max_value=40).flatmap(
    lambda n: st.tuples(
        st.lists(_maybe_nan, min_size=n, max_size=n),
        st.lists(_maybe_nan, min_size=n, max_size=n),
        st.lists(_maybe_nan, min_size=n, max_size=n),
    )
)


class TestEmpiricalCoverage:
    @given(coverage_arrays)
    def test_matches_brute_force(self, arrays):
        true, low, high = (np.array(a) for a in arrays)
        got = empirical_coverage(true, low, high)
        inside = 0
        valid = 0
        for t, lo, hi in zip(true, low, high):
            if math.isnan(t) or math.isnan(lo) or math.isnan(hi):
                continue
            valid += 1
            if lo <= t <= hi:
                inside += 1
        if valid == 0:
            assert math.isnan(got)
        else:
            assert got == inside / valid

    @given(coverage_arrays)
    def test_bounded_in_unit_interval(self, arrays):
        true, low, high = (np.array(a) for a in arrays)
        got = empirical_coverage(true, low, high)
        assert math.isnan(got) or 0.0 <= got <= 1.0


class TestWidthHistogram:
    @given(st.lists(st.floats(min_value=0.0, max_value=1e5, allow_nan=False), max_size=80))
    def test_merge_equals_single_stream(self, widths):
        """Splitting a width stream across two histograms and merging is
        identical to binning the whole stream into one — the property
        the gateway's cross-shard roll-up rests on."""
        merged_a = new_width_bins()
        merged_b = new_width_bins()
        single = new_width_bins()
        for i, w in enumerate(widths):
            single[width_bin_index(w)] += 1
            target = merged_a if i % 2 == 0 else merged_b
            target[width_bin_index(w)] += 1
        assert merge_width_bins(merged_a, merged_b) == single

    @given(
        st.lists(st.floats(min_value=0.0, max_value=1e5, allow_nan=False), min_size=1, max_size=80),
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    )
    def test_percentile_brackets_the_rank_width(self, widths, q):
        bins = new_width_bins()
        for w in widths:
            bins[width_bin_index(w)] += 1
        readout = width_percentile_from_bins(bins, q)
        rank = max(1, math.ceil(q * len(widths)))
        exact = sorted(widths)[rank - 1]
        # the histogram readout reports the bin's upper edge, so it can
        # only round *up* relative to the exact rank statistic
        assert readout >= exact or readout == float("inf")
