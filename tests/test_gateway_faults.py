"""Fault-injection tests for the fleet gateway.

A production fleet tier is judged on what happens when things go wrong:
a shard process dying must fail exactly that shard's in-flight work —
with a precise error naming the instance — while every other shard keeps
serving and ``close()`` still drains and joins cleanly.  These tests
kill real worker processes (SIGKILL, mid-stream) and fill real bounded
queues; they run under both fork and spawn start methods in CI's
``parallel-parity`` job.

The ``FleetGateway._stall`` hook (a sleep op processed in shard queue
order) is the instrumentation that makes queue states deterministic:
while a shard sleeps, its queue holds whatever the test enqueued.
"""

import time

import pytest

from repro.core.config import GatewayConfig, fast_profile
from repro.service import (
    FleetGateway,
    GatewayBackpressureError,
    ShardCrashedError,
    shard_for,
)
from repro.workload import FleetConfig, FleetGenerator


@pytest.fixture(scope="module")
def traces():
    gen = FleetGenerator(FleetConfig(seed=3, volume_scale=0.1))
    return [gen.generate_trace(gen.sample_instance(i), 0.7) for i in range(3)]


def two_shard_gateway(traces, **config_kwargs):
    """A 2-shard gateway with every instance registered; returns the
    gateway plus one (instance_id, trace) per populated shard."""
    gateway = FleetGateway(
        GatewayConfig(n_shards=2, **config_kwargs), stage_config=fast_profile()
    )
    per_shard = {}
    for trace in traces:
        shard = gateway.register_instance(trace.instance)
        per_shard.setdefault(shard, trace)
    assert len(per_shard) == 2, "fixture fleet must populate both shards"
    return gateway, per_shard


class TestShardCrash:
    def test_crash_fails_pending_with_instance_id_and_contains(self, traces):
        gateway, per_shard = two_shard_gateway(traces)
        victim_shard = min(per_shard)
        victim = per_shard[victim_shard]
        survivor_shard = max(per_shard)
        survivor = per_shard[survivor_shard]
        try:
            # hold the victim shard busy so the next ops are genuinely
            # in flight (queued, unanswered) when the process dies
            gateway._stall(victim_shard, 30.0)
            pending = [
                gateway.predict_async(victim.instance.instance_id, victim[i])
                for i in range(3)
            ]
            gateway._shards[victim_shard].process.kill()

            for future in pending:
                with pytest.raises(ShardCrashedError) as err:
                    future.result(timeout=30)
                assert err.value.shard_index == victim_shard
                assert err.value.instance_id == victim.instance.instance_id

            # new ops to the dead shard fail fast, with the instance id
            with pytest.raises(ShardCrashedError):
                gateway.predict_async(victim.instance.instance_id, victim[0])

            # the other shard keeps serving live traffic and replays
            prediction = gateway.predict(
                survivor.instance.instance_id, survivor[0], timeout=60
            )
            assert prediction.exec_time >= 0.0
            components = gateway.replay_components(survivor, n_clients=2)
            assert len(components) == len(survivor)

            # fleet drain/metrics still work, reporting only live shards
            gateway.drain()
            stats = gateway.stats()
            rows = {row["shard"]: row for row in stats["shards"]}
            assert rows[victim_shard]["alive"] is False
            assert rows[survivor_shard]["alive"] is True
        finally:
            gateway.close()

    def test_close_after_crash_drains_and_joins(self, traces):
        gateway, per_shard = two_shard_gateway(traces)
        victim_shard = min(per_shard)
        gateway._stall(victim_shard, 30.0)
        stranded = gateway.predict_async(
            per_shard[victim_shard].instance.instance_id, per_shard[victim_shard][0]
        )
        gateway._shards[victim_shard].process.kill()
        t0 = time.monotonic()
        gateway.close()
        assert time.monotonic() - t0 < 30.0, "close must not wait out the stall"
        with pytest.raises(ShardCrashedError):
            stranded.result(timeout=1)
        for shard in gateway._shards:
            assert not shard.process.is_alive()
        # idempotent after a crash too
        gateway.close()

    def test_snapshot_with_crashed_shard_fails_before_writing(self, traces, tmp_path):
        """A crash must fail the snapshot up front — partially saving
        under an existing name would mix snapshot epochs on disk."""
        from repro.service import FleetGateway, ModelRegistry

        registry = ModelRegistry(str(tmp_path))
        gateway, per_shard = two_shard_gateway(traces)
        try:
            gateway.snapshot(registry, "fleet")  # healthy first epoch
            victim_shard = min(per_shard)
            gateway._shards[victim_shard].process.kill()
            deadline = time.monotonic() + 10
            while not gateway._shards[victim_shard].crashed:
                assert time.monotonic() < deadline
                time.sleep(0.05)
            with pytest.raises(RuntimeError, match="crashed shards"):
                gateway.snapshot(registry, "fleet")
        finally:
            gateway.close()
        # the first epoch survived untouched and still restores whole
        restored = FleetGateway.restore(registry, "fleet")
        try:
            assert restored.instance_ids == tuple(
                sorted(t.instance.instance_id for t in traces)
            )
        finally:
            restored.close()


class TestShutdownAndBackpressure:
    def test_enqueue_after_shutdown_rejected(self, traces):
        gateway, per_shard = two_shard_gateway(traces)
        trace = next(iter(per_shard.values()))
        instance_id = trace.instance.instance_id
        gateway.close()
        with pytest.raises(RuntimeError, match="closed"):
            gateway.predict_async(instance_id, trace[0])
        with pytest.raises(RuntimeError, match="closed"):
            gateway.observe(instance_id, trace[0])
        with pytest.raises(RuntimeError, match="closed"):
            gateway.register_instance(traces[0].instance)
        with pytest.raises(RuntimeError, match="closed"):
            gateway.replay_components(trace)
        with pytest.raises(RuntimeError, match="closed"):
            gateway.drain()

    def test_full_queue_backpressure_times_out_then_recovers(self, traces):
        gateway, per_shard = two_shard_gateway(
            traces, queue_size=1, enqueue_timeout_s=0.2
        )
        try:
            shard = min(per_shard)
            trace = per_shard[shard]
            instance_id = trace.instance.instance_id
            gateway._stall(shard, 1.5)
            time.sleep(0.3)  # let the shard pick the sleep op up
            first = gateway.predict_async(instance_id, trace[0])  # fills the queue
            with pytest.raises(GatewayBackpressureError) as err:
                gateway.predict_async(instance_id, trace[1])
            assert err.value.shard_index == shard
            # machine-readable context for protocol layers: the shed
            # op's instance plus the configured back-off hint
            assert err.value.instance_id == instance_id
            assert err.value.timeout_s == pytest.approx(0.2)
            assert err.value.retry_after_s == pytest.approx(
                gateway.config.retry_after_s
            )
            # the failed enqueue rolled its sequence slot back: once the
            # stall clears, the stream continues with no gap to stall on
            assert first.result(timeout=30).prediction.exec_time >= 0.0
            follow_up = gateway.predict(instance_id, trace[1], timeout=30)
            assert follow_up.exec_time >= 0.0
            gateway.drain()
        finally:
            gateway.close()

    def test_close_timeout_bounded_with_wedged_shard(self, traces):
        """``close(timeout=T)`` must stay ~T even when one shard is both
        stalled (mid 30s sleep) and wedged (request queue full), because
        the shutdown broadcast and the join sweep share one monotonic
        deadline instead of compounding per-shard waits."""
        gateway, per_shard = two_shard_gateway(
            traces, queue_size=1, enqueue_timeout_s=0.2, shutdown_enqueue_timeout_s=0.3
        )
        shard = min(per_shard)
        trace = per_shard[shard]
        gateway._stall(shard, 30.0)
        time.sleep(0.3)  # shard picks the sleep up, emptying the queue
        gateway.predict_async(trace.instance.instance_id, trace[0])  # re-fill it
        t0 = time.monotonic()
        gateway.close(timeout=2.0)
        elapsed = time.monotonic() - t0
        # deadline (2s) + hard-terminate join; never the 30s stall, and
        # never shutdown_enqueue_timeout_s summed over shards on top
        assert elapsed < 10.0, f"close took {elapsed:.1f}s against a 2s deadline"
        for s in gateway._shards:
            assert not s.process.is_alive()

    def test_double_close_is_noop(self, traces):
        gateway, _ = two_shard_gateway(traces)
        gateway.close()
        gateway.close()
        assert gateway.closed


class TestCrashRaceCheck:
    def test_raises_only_when_winning_the_pending_pop(self, traces):
        """The enqueue-vs-failure-sweep race, pinned deterministically:
        flip the crash flag by hand (no SIGKILL, no sweep timing) and
        drive ``_crash_race_check`` through both outcomes for both the
        instance-op and control-op submission paths."""
        gateway, per_shard = two_shard_gateway(traces)
        try:
            shard_index = min(per_shard)
            shard = gateway._shards[shard_index]
            instance_id = per_shard[shard_index].instance.instance_id
            shard.crashed = True

            # we win the pop: raise, carrying the instance id (or None
            # for control ops), and leave no dangling pending entry
            op_id, _ = gateway._register_pending(shard, instance_id)
            with pytest.raises(ShardCrashedError) as err:
                gateway._crash_race_check(shard, op_id, instance_id)
            assert err.value.shard_index == shard_index
            assert err.value.instance_id == instance_id
            assert op_id not in shard.pending

            op_id, _ = gateway._register_pending(shard, None)
            with pytest.raises(ShardCrashedError) as err:
                gateway._crash_race_check(shard, op_id, None)
            assert err.value.instance_id is None
            assert op_id not in shard.pending

            # the sweep won: the future already carries the error, so
            # the check must stay silent rather than double-report
            op_id, future = gateway._register_pending(shard, instance_id)
            gateway._mark_crashed(shard)  # the listener's failure sweep
            assert isinstance(future.exception(timeout=5), ShardCrashedError)
            gateway._crash_race_check(shard, op_id, instance_id)
        finally:
            # the flagged shard never saw a real crash, so it gets no
            # shutdown broadcast: keep the terminate path bounded
            gateway.close(timeout=2.0)


class TestRoutingConsistency:
    def test_registration_uses_shard_for(self, traces):
        gateway, _ = two_shard_gateway(traces)
        try:
            with gateway._registry_lock:
                assignment = dict(gateway._instances)
            for instance_id, shard in assignment.items():
                assert shard == shard_for(instance_id, 2)
        finally:
            gateway.close()
