"""Tests for the Bayesian GBM ensemble (paper Eq. 1-2)."""

import numpy as np
import pytest

from repro.ml.ensemble import BayesianGBMEnsemble


@pytest.fixture(scope="module")
def fitted_ensemble():
    rng = np.random.default_rng(11)
    X = rng.normal(size=(500, 5))
    y = X[:, 0] * 3 + np.abs(X[:, 1]) + 0.2 * rng.normal(size=500)
    ens = BayesianGBMEnsemble(n_members=5, n_estimators=30, max_depth=3, random_state=0)
    ens.fit(X, y)
    return ens, X, y


class TestConstruction:
    def test_invalid_member_count(self):
        with pytest.raises(ValueError):
            BayesianGBMEnsemble(n_members=0)

    def test_objective_cannot_be_overridden(self):
        ens = BayesianGBMEnsemble(n_members=2, objective="squared_error")
        assert "objective" not in ens.gbm_kwargs

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            BayesianGBMEnsemble(n_members=2).predict(np.zeros((1, 3)))


class TestUncertaintyDecomposition:
    def test_total_is_sum_of_parts(self, fitted_ensemble):
        ens, X, _ = fitted_ensemble
        p = ens.predict(X[:50])
        np.testing.assert_allclose(p.total_uncertainty, p.model_uncertainty + p.data_uncertainty)

    def test_uncertainties_non_negative(self, fitted_ensemble):
        ens, X, _ = fitted_ensemble
        p = ens.predict(X[:100])
        assert (p.model_uncertainty >= 0).all()
        assert (p.data_uncertainty >= 0).all()

    def test_std_is_sqrt_total(self, fitted_ensemble):
        ens, X, _ = fitted_ensemble
        p = ens.predict(X[:20])
        np.testing.assert_allclose(p.std, np.sqrt(p.total_uncertainty))

    def test_single_member_has_zero_model_uncertainty(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(200, 3))
        y = X[:, 0] + 0.1 * rng.normal(size=200)
        ens = BayesianGBMEnsemble(n_members=1, n_estimators=20, random_state=0)
        ens.fit(X, y)
        p = ens.predict(X[:30])
        np.testing.assert_allclose(p.model_uncertainty, 0.0, atol=1e-12)

    def test_mean_is_average_of_members(self, fitted_ensemble):
        ens, X, _ = fitted_ensemble
        p = ens.predict(X[:10])
        member_means = np.array([m.predict_dist(X[:10])[0] for m in ens.members_])
        np.testing.assert_allclose(p.mean, member_means.mean(axis=0))

    def test_less_data_means_more_model_uncertainty(self):
        """The paper's motivation for the local model: model uncertainty is
        high when there are few training examples (Section 4.3)."""
        rng = np.random.default_rng(4)
        X = rng.normal(size=(800, 5))
        y = X[:, 0] * 3 + np.abs(X[:, 1]) + 0.2 * rng.normal(size=800)
        X_test = rng.normal(size=(300, 5))

        small = BayesianGBMEnsemble(
            n_members=5, n_estimators=30, max_depth=3, random_state=0
        ).fit(X[:40], y[:40])
        large = BayesianGBMEnsemble(
            n_members=5, n_estimators=30, max_depth=3, random_state=0
        ).fit(X, y)
        small_unc = small.predict(X_test).model_uncertainty.mean()
        large_unc = large.predict(X_test).model_uncertainty.mean()
        assert small_unc > large_unc


class TestAccuracy:
    def test_predict_mean_matches_predict(self, fitted_ensemble):
        ens, X, _ = fitted_ensemble
        np.testing.assert_allclose(ens.predict_mean(X[:20]), ens.predict(X[:20]).mean)

    def test_tracks_target(self, fitted_ensemble):
        ens, X, y = fitted_ensemble
        pred = ens.predict_mean(X)
        assert np.corrcoef(pred, y)[0, 1] > 0.9

    def test_is_fitted_flag(self):
        ens = BayesianGBMEnsemble(n_members=2)
        assert not ens.is_fitted

    def test_byte_size(self, fitted_ensemble):
        ens, _, _ = fitted_ensemble
        assert ens.byte_size() > 0
        assert BayesianGBMEnsemble(n_members=2).byte_size() == 0
