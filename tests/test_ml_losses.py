"""Unit and property tests for the boosting objectives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.losses import (
    AbsoluteError,
    GaussianNLL,
    SquaredError,
    get_objective,
)


def _finite_arrays(n_min=2, n_max=40):
    return st.lists(
        st.floats(min_value=-100, max_value=100, allow_nan=False),
        min_size=n_min,
        max_size=n_max,
    ).map(lambda xs: np.asarray(xs, dtype=np.float64))


class TestGetObjective:
    def test_lookup_by_name(self):
        assert isinstance(get_objective("squared_error"), SquaredError)
        assert isinstance(get_objective("absolute_error"), AbsoluteError)
        assert isinstance(get_objective("gaussian_nll"), GaussianNLL)

    def test_pass_through_instance(self):
        obj = SquaredError()
        assert get_objective(obj) is obj

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown objective"):
            get_objective("nope")


class TestSquaredError:
    def test_init_raw_is_mean(self):
        y = np.array([1.0, 2.0, 3.0])
        assert SquaredError().init_raw(y) == pytest.approx([2.0])

    def test_grad_is_residual(self):
        obj = SquaredError()
        y = np.array([1.0, 2.0])
        raw = np.array([[3.0], [1.0]])
        grad, hess = obj.grad_hess(y, raw)
        np.testing.assert_allclose(grad[:, 0], [2.0, -1.0])
        np.testing.assert_allclose(hess[:, 0], [1.0, 1.0])

    def test_zero_variance_prediction(self):
        mean, var = SquaredError().raw_to_prediction(np.array([[5.0]]))
        assert mean[0] == 5.0 and var[0] == 0.0

    @given(_finite_arrays())
    @settings(max_examples=25, deadline=None)
    def test_loss_zero_at_perfect_fit(self, y):
        obj = SquaredError()
        assert obj.loss(y, y[:, None]) == pytest.approx(0.0, abs=1e-12)


class TestAbsoluteError:
    def test_init_raw_is_median(self):
        y = np.array([1.0, 9.0, 2.0])
        assert AbsoluteError().init_raw(y) == pytest.approx([2.0])

    def test_grad_is_sign(self):
        obj = AbsoluteError()
        y = np.array([1.0, 5.0])
        raw = np.array([[3.0], [3.0]])
        grad, _ = obj.grad_hess(y, raw)
        np.testing.assert_allclose(grad[:, 0], [1.0, -1.0])

    def test_loss_is_mae(self):
        obj = AbsoluteError()
        y = np.array([0.0, 4.0])
        raw = np.array([[1.0], [1.0]])
        assert obj.loss(y, raw) == pytest.approx(2.0)


class TestGaussianNLL:
    def test_two_params(self):
        assert GaussianNLL().n_params == 2

    def test_init_raw_matches_moments(self):
        y = np.array([1.0, 3.0, 5.0])
        raw0 = GaussianNLL().init_raw(y)
        assert raw0[0] == pytest.approx(3.0)
        assert np.exp(raw0[1]) == pytest.approx(np.var(y), rel=1e-3)

    def test_gradients_numerically(self):
        obj = GaussianNLL()
        y = np.array([2.0])
        raw = np.array([[1.0, 0.3]])
        grad, _ = obj.grad_hess(y, raw)
        eps = 1e-6
        for p in range(2):
            raw_hi = raw.copy()
            raw_hi[0, p] += eps
            raw_lo = raw.copy()
            raw_lo[0, p] -= eps
            num = (obj.loss(y, raw_hi) - obj.loss(y, raw_lo)) / (2 * eps)
            assert grad[0, p] == pytest.approx(num, rel=1e-4)

    def test_hessians_positive(self):
        obj = GaussianNLL()
        rng = np.random.default_rng(0)
        y = rng.normal(size=50)
        raw = np.column_stack([rng.normal(size=50), rng.normal(size=50)])
        _, hess = obj.grad_hess(y, raw)
        assert (hess > 0).all()

    def test_variance_decoded_positive(self):
        obj = GaussianNLL()
        raw = np.array([[0.0, -3.0], [1.0, 2.0]])
        _, var = obj.raw_to_prediction(raw)
        assert (var > 0).all()

    @given(
        st.floats(min_value=-50, max_value=50, allow_nan=False),
        st.floats(min_value=-5, max_value=5, allow_nan=False),
    )
    @settings(max_examples=50, deadline=None)
    def test_loss_minimized_at_true_mean(self, y_val, log_var):
        """For fixed variance, loss at mu=y must not exceed loss at mu!=y."""
        obj = GaussianNLL()
        y = np.array([y_val])
        at_true = obj.loss(y, np.array([[y_val, log_var]]))
        off = obj.loss(y, np.array([[y_val + 1.0, log_var]]))
        assert at_true <= off
