"""Tests for accuracy and PRR metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.metrics import (
    ErrorSummary,
    absolute_errors,
    bucketed_summary,
    prr_curves,
    prr_score,
    q_errors,
    summarize_errors,
)


class TestAbsoluteErrors:
    def test_basic(self):
        np.testing.assert_allclose(absolute_errors([1.0, 5.0], [2.0, 3.0]), [1.0, 2.0])

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            absolute_errors([1.0], [1.0, 2.0])


class TestQErrors:
    def test_minimum_is_one(self):
        assert q_errors([5.0], [5.0])[0] == pytest.approx(1.0)

    def test_symmetric(self):
        over = q_errors([2.0], [8.0])[0]
        under = q_errors([8.0], [2.0])[0]
        assert over == pytest.approx(under) == pytest.approx(4.0)

    @given(
        st.lists(
            st.floats(min_value=1e-4, max_value=1e5, allow_nan=False),
            min_size=1,
            max_size=30,
        ),
        st.lists(
            st.floats(min_value=1e-4, max_value=1e5, allow_nan=False),
            min_size=1,
            max_size=30,
        ),
    )
    @settings(max_examples=40, deadline=None)
    def test_always_at_least_one(self, true, pred):
        n = min(len(true), len(pred))
        qe = q_errors(true[:n], pred[:n])
        assert (qe >= 1.0 - 1e-12).all()

    def test_floor_prevents_blowup(self):
        qe = q_errors([1e-9], [1.0], floor=1e-3)
        assert qe[0] == pytest.approx(1000.0)


class TestSummaries:
    def test_error_summary_fields(self):
        s = ErrorSummary.from_errors(np.array([1.0, 2.0, 3.0, 4.0, 100.0]))
        assert s.n == 5
        assert s.mean == pytest.approx(22.0)
        assert s.p50 == pytest.approx(3.0)

    def test_empty_summary_is_nan(self):
        s = ErrorSummary.from_errors(np.zeros(0))
        assert s.n == 0 and np.isnan(s.mean)

    def test_summarize_unknown_metric(self):
        with pytest.raises(ValueError):
            summarize_errors([1.0], [1.0], metric="rmse")

    def test_bucketed_summary_covers_all_buckets(self):
        true = np.array([1.0, 30.0, 90.0, 200.0, 500.0])
        pred = true + 1.0
        out = bucketed_summary(true, pred)
        assert out["Overall"].n == 5
        for label in ("0s - 10s", "10s - 60s", "60s - 120s", "120s - 300s", "300s+"):
            assert out[label].n == 1

    def test_bucketed_by_true_time(self):
        # a 1s query predicted as 500s must stay in the 0-10s bucket
        out = bucketed_summary(np.array([1.0]), np.array([500.0]))
        assert out["0s - 10s"].n == 1
        assert out["300s+"].n == 0


class TestPRR:
    def test_oracle_ranking_scores_one(self):
        rng = np.random.default_rng(0)
        errors = rng.exponential(size=200)
        assert prr_score(errors, errors) == pytest.approx(1.0)

    def test_random_ranking_scores_near_zero(self):
        rng = np.random.default_rng(1)
        errors = rng.exponential(size=5000)
        noise = rng.random(5000)
        assert abs(prr_score(errors, noise)) < 0.1

    def test_anticorrelated_ranking_negative(self):
        errors = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        assert prr_score(errors, -errors) < 0

    def test_partial_correlation_between(self):
        rng = np.random.default_rng(2)
        errors = rng.exponential(size=2000)
        noisy_unc = errors + rng.exponential(size=2000)
        score = prr_score(errors, noisy_unc)
        assert 0.2 < score < 1.0

    def test_curves_shapes_and_bounds(self):
        errors = np.array([3.0, 1.0, 2.0])
        unc = np.array([1.0, 2.0, 3.0])
        fractions, oracle, by_unc, random = prr_curves(errors, unc)
        for curve in (fractions, oracle, by_unc, random):
            assert curve.shape == (4,)
            assert curve[0] == 0.0
            assert curve[-1] == pytest.approx(1.0)
        # oracle dominates any other ranking pointwise
        assert (oracle >= by_unc - 1e-12).all()

    def test_zero_errors_score_zero(self):
        assert prr_score(np.zeros(10), np.arange(10)) == 0.0

    def test_mismatched_shapes(self):
        with pytest.raises(ValueError):
            prr_curves(np.zeros(3), np.zeros(4))

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            prr_curves(np.zeros(0), np.zeros(0))
