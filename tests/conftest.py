"""Shared test configuration: deterministic hypothesis profiles.

The property suite (``tests/test_properties.py``) runs under a
fixed-seed profile by default so CI and local runs explore the same
examples — shrink-churn or flaky example discovery can never make the
suite green on one machine and red on another.  Set
``REPRO_HYPOTHESIS_PROFILE=dev`` for randomized exploration (more
examples, fresh seeds every run) when hunting for new counterexamples.
"""

import os

from hypothesis import settings

settings.register_profile("ci", derandomize=True, max_examples=30, deadline=None)
settings.register_profile("dev", max_examples=75, deadline=None)
settings.load_profile(os.environ.get("REPRO_HYPOTHESIS_PROFILE", "ci"))
