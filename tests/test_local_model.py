"""Tests for the local model wrapper (online retraining + uncertainty)."""

import numpy as np
import pytest

from repro.core.config import LocalModelConfig
from repro.core.interfaces import PredictionSource
from repro.local_model import LocalModel


def _fast_config(**overrides):
    base = dict(
        n_members=3,
        n_estimators=15,
        max_depth=3,
        min_train_size=20,
        retrain_interval=50,
    )
    base.update(overrides)
    return LocalModelConfig(**base)


def _make_examples(n, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, 6))
    y = np.exp(1.0 + X[:, 0]) * rng.lognormal(0, 0.1, size=n)
    return X, y


class TestLifecycle:
    def test_not_ready_until_min_train_size(self):
        model = LocalModel(_fast_config())
        X, y = _make_examples(19)
        for i in range(19):
            model.add_example(X[i], y[i])
        assert not model.is_ready
        with pytest.raises(RuntimeError):
            model.predict(X[0])

    def test_trains_at_min_size(self):
        model = LocalModel(_fast_config())
        X, y = _make_examples(20)
        for i in range(20):
            model.add_example(X[i], y[i])
        assert model.is_ready
        assert model.n_retrains == 1

    def test_retrain_interval(self):
        model = LocalModel(_fast_config())
        X, y = _make_examples(120)
        for i in range(120):
            model.add_example(X[i], y[i])
        # first train at 20, then retrains every 50 additions: 70, 120
        assert model.n_retrains == 3

    def test_cache_hits_do_not_count_toward_retraining(self):
        model = LocalModel(_fast_config())
        X, y = _make_examples(30)
        for i in range(30):
            model.add_example(X[i], y[i], cache_hit=True)
        assert not model.is_ready
        assert len(model.pool) == 0


class TestPrediction:
    @pytest.fixture(scope="class")
    def trained(self):
        model = LocalModel(_fast_config(), random_state=1)
        X, y = _make_examples(300, seed=1)
        for i in range(300):
            model.add_example(X[i], y[i])
        return model, X, y

    def test_prediction_fields(self, trained):
        model, X, _ = trained
        pred = model.predict(X[0])
        assert pred.source == PredictionSource.LOCAL
        assert pred.exec_time >= 0
        assert pred.variance >= 0
        assert pred.variance == pytest.approx(pred.model_uncertainty + pred.data_uncertainty)

    def test_tracks_target(self, trained):
        model, X, y = trained
        preds = np.array([model.predict(X[i]).exec_time for i in range(100)])
        assert np.corrcoef(np.log1p(preds), np.log1p(y[:100]))[0, 1] > 0.7

    def test_byte_size(self, trained):
        model, _, _ = trained
        assert model.byte_size() > 0
        assert LocalModel(_fast_config()).byte_size() == 0

    def test_predict_batch_rowwise_equals_predict(self, trained):
        """One batched ensemble call must be bit-identical, row by row,
        to looping :meth:`predict` — the replay harness relies on this
        to defer component inference without changing any array."""
        model, X, _ = trained
        batch = model.predict_batch(X[:50])
        assert len(batch) == 50
        for i, bp in enumerate(batch):
            lp = model.predict(X[i])
            assert bp.exec_time == lp.exec_time
            assert bp.variance == lp.variance
            assert bp.model_uncertainty == lp.model_uncertainty
            assert bp.data_uncertainty == lp.data_uncertainty
            assert bp.source == PredictionSource.LOCAL

    def test_predict_batch_requires_trained_model(self):
        model = LocalModel(_fast_config())
        with pytest.raises(RuntimeError):
            model.predict_batch(np.zeros((2, 6)))
        assert model.frozen() is None

    def test_frozen_snapshot_survives_retrain(self):
        """A frozen snapshot keeps answering from its own ensemble even
        after the live model retrains (per-retrain-window batching)."""
        model = LocalModel(_fast_config(), random_state=3)
        X, y = _make_examples(60, seed=2)
        for i in range(60):
            model.add_example(X[i], y[i])
        frozen = model.frozen()
        assert frozen is not None and frozen.generation == model.n_retrains
        before = frozen.predict_batch(X[:5])
        model.retrain()
        assert model.n_retrains == frozen.generation + 1
        after = frozen.predict_batch(X[:5])
        for a, b in zip(before, after):
            assert a.exec_time == b.exec_time and a.variance == b.variance

    def test_uncertainty_higher_off_distribution(self, trained):
        """Novel feature regions should carry higher total uncertainty on
        average than the densest training region."""
        model, X, _ = trained
        in_dist = np.mean([model.predict(X[i]).variance for i in range(60)])
        rng = np.random.default_rng(5)
        off = np.mean([model.predict(rng.normal(loc=8.0, size=6)).variance for _ in range(60)])
        assert off > in_dist * 0.5  # at minimum, not dramatically lower
