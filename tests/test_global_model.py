"""Tests for the global model: featurization, trainer, transfer."""

import numpy as np
import pytest

from repro.core.config import GlobalModelConfig
from repro.core.interfaces import PredictionSource
from repro.global_model import (
    GlobalModelTrainer,
    SYS_FEATURE_DIM,
    load_global_model,
    record_to_graph,
    records_to_graphs,
    save_global_model,
    system_features,
)
from repro.workload import FleetConfig, FleetGenerator


@pytest.fixture(scope="module")
def fleet():
    gen = FleetGenerator(FleetConfig(seed=21, volume_scale=0.4))
    train = gen.generate_fleet_traces(8, 2.0, start_index=50)
    held_out = gen.generate_trace(gen.sample_instance(0), 1.5)
    return gen, train, held_out


@pytest.fixture(scope="module")
def trained_model(fleet):
    _, train, __ = fleet
    cfg = GlobalModelConfig(hidden_dim=40, n_conv_layers=3, epochs=25, max_queries_per_instance=300)
    return GlobalModelTrainer(cfg).train(train)


class TestFeaturization:
    def test_system_features_dim(self, fleet):
        _, train, __ = fleet
        record = train[0][0]
        sys = system_features(record.plan, train[0].instance)
        assert sys.shape == (SYS_FEATURE_DIM,)

    def test_graph_has_plan_shape(self, fleet):
        _, train, __ = fleet
        record = train[0][0]
        g = record_to_graph(record.plan, train[0].instance)
        assert g.node_features.shape[0] == record.plan.n_nodes
        assert g.sys_features.shape == (SYS_FEATURE_DIM,)

    def test_latent_speed_not_in_features(self, fleet):
        """The hidden instance factor must be invisible to the global model."""
        _, train, __ = fleet
        import dataclasses

        inst = train[0].instance
        doubled = dataclasses.replace(inst, latent_speed=inst.latent_speed * 4)
        record = train[0][0]
        np.testing.assert_array_equal(
            record_to_graph(record.plan, inst).sys_features,
            record_to_graph(record.plan, doubled).sys_features,
        )


class TestTrainer:
    def test_dataset_respects_per_instance_cap(self, fleet):
        _, train, __ = fleet
        cfg = GlobalModelConfig(max_queries_per_instance=20)
        graphs, targets = GlobalModelTrainer(cfg).build_dataset(train)
        assert len(graphs) <= 20 * len(train)
        assert len(graphs) == targets.shape[0]

    def test_dataset_deduplicates_identities(self, fleet):
        _, train, __ = fleet
        cfg = GlobalModelConfig(max_queries_per_instance=10_000)
        graphs, _ = GlobalModelTrainer(cfg).build_dataset(train)
        n_identities = sum(len({r.identity for r in trace}) for trace in train)
        assert len(graphs) == n_identities

    def test_empty_traces_raise(self):
        with pytest.raises(ValueError, match="empty traces"):
            GlobalModelTrainer().train([])


class TestTrainedModel:
    def test_predicts_positive_seconds(self, trained_model, fleet):
        _, __, held_out = fleet
        pred = trained_model.predict(held_out[0].plan, held_out.instance)
        assert pred.source == PredictionSource.GLOBAL
        assert pred.exec_time > 0

    def test_transfer_beats_constant_on_unseen_instance(self, trained_model, fleet):
        """Zero-shot transfer: on a *held-out* instance the global model
        should rank queries far better than a constant predictor."""
        _, __, held_out = fleet
        records = list(held_out)[:300]
        graphs = [record_to_graph(r.plan, held_out.instance) for r in records]
        preds = trained_model.predict_graphs(graphs)
        true = np.array([r.exec_time for r in records])
        corr = np.corrcoef(np.log1p(preds), np.log1p(true))[0, 1]
        # the hidden per-instance speed factor bounds what zero-shot
        # transfer can achieve (the paper's Section 5.4 discussion), but
        # plan difficulty must still rank clearly better than chance
        assert corr > 0.5

    def test_batch_and_single_predictions_match(self, trained_model, fleet):
        _, __, held_out = fleet
        records = list(held_out)[:5]
        graphs = [record_to_graph(r.plan, held_out.instance) for r in records]
        batch = trained_model.predict_graphs(graphs)
        singles = [trained_model.predict(r.plan, held_out.instance).exec_time for r in records]
        np.testing.assert_allclose(batch, singles, rtol=1e-9)

    def test_byte_size(self, trained_model):
        assert trained_model.byte_size() > 0

    def test_records_to_graphs_matches_singles(self, fleet):
        _, __, held_out = fleet
        records = list(held_out)[:8]
        batch = records_to_graphs(records, held_out.instance)
        for graph, record in zip(batch, records):
            single = record_to_graph(record.plan, held_out.instance)
            np.testing.assert_array_equal(graph.node_features, single.node_features)
            np.testing.assert_array_equal(graph.sys_features, single.sys_features)


class TestSerialization:
    """Save → load → identical predictions; the sweeper's pool
    initializer and any fleet-wide deployment depend on this artifact
    being faithful."""

    def test_round_trip_predictions_identical(self, trained_model, fleet, tmp_path):
        _, __, held_out = fleet
        graphs = records_to_graphs(list(held_out)[:50], held_out.instance)
        path = str(tmp_path / "global_model.npz")
        save_global_model(trained_model, path)
        loaded = load_global_model(path)
        np.testing.assert_array_equal(
            trained_model.predict_graphs(graphs),
            loaded.predict_graphs(graphs),
        )

    def test_round_trip_preserves_scalers_and_architecture(self, trained_model, tmp_path):
        path = str(tmp_path / "global_model.npz")
        save_global_model(trained_model, path)
        loaded = load_global_model(path)
        np.testing.assert_array_equal(trained_model.node_scaler.mean_, loaded.node_scaler.mean_)
        np.testing.assert_array_equal(trained_model.node_scaler.scale_, loaded.node_scaler.scale_)
        np.testing.assert_array_equal(trained_model.sys_scaler.mean_, loaded.sys_scaler.mean_)
        np.testing.assert_array_equal(trained_model.sys_scaler.scale_, loaded.sys_scaler.scale_)
        assert loaded.gcn.hidden_dim == trained_model.gcn.hidden_dim
        assert len(loaded.gcn.convs) == len(trained_model.gcn.convs)
        assert loaded.transform.max_seconds == trained_model.transform.max_seconds

    def test_round_trip_survives_pickle(self, trained_model, fleet, tmp_path):
        """The loaded artifact must also pickle cleanly — that is how
        the pool initializer ships it to worker processes."""
        import pickle

        _, __, held_out = fleet
        graphs = records_to_graphs(list(held_out)[:10], held_out.instance)
        path = str(tmp_path / "global_model.npz")
        save_global_model(trained_model, path)
        loaded = pickle.loads(pickle.dumps(load_global_model(path)))
        np.testing.assert_array_equal(
            trained_model.predict_graphs(graphs),
            loaded.predict_graphs(graphs),
        )

    def test_version_mismatch_rejected(self, trained_model, tmp_path):
        path = str(tmp_path / "global_model.npz")
        save_global_model(trained_model, path)
        with np.load(path) as data:
            arrays = {k: data[k].copy() for k in data.files}
        arrays["meta"][0] = 999
        np.savez_compressed(path, **arrays)
        with pytest.raises(ValueError, match="format version"):
            load_global_model(path)
