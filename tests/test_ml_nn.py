"""Tests for the neural-network building blocks (gradient checks etc.)."""

import numpy as np
import pytest

from repro.ml.nn import (
    MLP,
    Adam,
    Dropout,
    Linear,
    Parameter,
    ReLU,
    huber_loss,
    mse_loss,
)


def _numeric_grad(f, x, eps=1e-6):
    grad = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = x[idx]
        x[idx] = orig + eps
        hi = f()
        x[idx] = orig - eps
        lo = f()
        x[idx] = orig
        grad[idx] = (hi - lo) / (2 * eps)
        it.iternext()
    return grad


class TestLinear:
    def test_forward_shape(self):
        rng = np.random.default_rng(0)
        lin = Linear(4, 3, rng)
        out = lin.forward(np.ones((5, 4)))
        assert out.shape == (5, 3)

    def test_gradient_check(self):
        rng = np.random.default_rng(1)
        lin = Linear(3, 2, rng)
        x = rng.normal(size=(4, 3))
        target = rng.normal(size=(4, 2))

        def loss_fn():
            out = lin.forward(x)
            return 0.5 * np.sum((out - target) ** 2)

        out = lin.forward(x)
        dout = out - target
        lin.W.zero_grad()
        lin.b.zero_grad()
        dx = lin.backward(dout)

        num_W = _numeric_grad(loss_fn, lin.W.value)
        np.testing.assert_allclose(lin.W.grad, num_W, atol=1e-5)
        num_b = _numeric_grad(loss_fn, lin.b.value)
        np.testing.assert_allclose(lin.b.grad, num_b, atol=1e-5)

        def loss_fn_x():
            return 0.5 * np.sum((lin.forward(x) - target) ** 2)

        num_x = _numeric_grad(loss_fn_x, x)
        np.testing.assert_allclose(dx, num_x, atol=1e-5)


class TestReLU:
    def test_forward_clips_negatives(self):
        relu = ReLU()
        out = relu.forward(np.array([-1.0, 0.0, 2.0]))
        np.testing.assert_allclose(out, [0.0, 0.0, 2.0])

    def test_backward_masks(self):
        relu = ReLU()
        relu.forward(np.array([-1.0, 3.0]))
        dout = relu.backward(np.array([5.0, 5.0]))
        np.testing.assert_allclose(dout, [0.0, 5.0])


class TestDropout:
    def test_eval_mode_is_identity(self):
        rng = np.random.default_rng(0)
        d = Dropout(0.5, rng)
        x = rng.normal(size=(10, 10))
        np.testing.assert_allclose(d.forward(x, training=False), x)

    def test_train_mode_preserves_expectation(self):
        rng = np.random.default_rng(0)
        d = Dropout(0.3, rng)
        x = np.ones((200, 200))
        out = d.forward(x, training=True)
        assert abs(out.mean() - 1.0) < 0.02

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            Dropout(1.0, np.random.default_rng(0))


class TestMLP:
    def test_needs_two_dims(self):
        with pytest.raises(ValueError):
            MLP([5], np.random.default_rng(0))

    def test_learns_linear_function(self):
        rng = np.random.default_rng(2)
        X = rng.normal(size=(400, 3))
        y = X @ np.array([1.0, -2.0, 0.5]) + 0.3
        mlp = MLP([3, 16, 1], rng)
        opt = Adam(mlp.parameters(), lr=1e-2)
        for _ in range(300):
            pred = mlp.forward(X, training=True)[:, 0]
            loss, dpred = mse_loss(pred, y)
            opt.zero_grad()
            mlp.backward(dpred[:, None])
            opt.step()
        final = mlp.forward(X)[:, 0]
        assert np.mean((final - y) ** 2) < 0.05 * np.var(y)

    def test_full_gradient_check(self):
        rng = np.random.default_rng(3)
        mlp = MLP([3, 4, 1], rng)
        x = rng.normal(size=(6, 3))
        target = rng.normal(size=6)

        pred = mlp.forward(x)[:, 0]
        _, dpred = mse_loss(pred, target)
        for p in mlp.parameters():
            p.zero_grad()
        mlp.backward(dpred[:, None])

        for p in mlp.parameters():
            def loss_fn():
                out = mlp.forward(x)[:, 0]
                return mse_loss(out, target)[0]

            num = _numeric_grad(loss_fn, p.value)
            np.testing.assert_allclose(p.grad, num, atol=1e-5)


class TestAdam:
    def test_minimizes_quadratic(self):
        p = Parameter(np.array([5.0, -3.0]))
        opt = Adam([p], lr=0.1)
        for _ in range(500):
            opt.zero_grad()
            p.grad += 2 * p.value  # d/dx of ||x||^2
            opt.step()
        assert np.abs(p.value).max() < 1e-2

    def test_weight_decay_shrinks(self):
        p = Parameter(np.array([10.0]))
        opt = Adam([p], lr=0.05, weight_decay=1.0)
        for _ in range(200):
            opt.zero_grad()
            opt.step()
        assert abs(p.value[0]) < 10.0


class TestLosses:
    def test_mse_gradient(self):
        pred = np.array([1.0, 2.0])
        target = np.array([0.0, 0.0])
        loss, dpred = mse_loss(pred, target)
        assert loss == pytest.approx(2.5)
        np.testing.assert_allclose(dpred, [1.0, 2.0])

    def test_huber_quadratic_region(self):
        pred = np.array([0.5])
        target = np.array([0.0])
        loss, dpred = huber_loss(pred, target, delta=1.0)
        assert loss == pytest.approx(0.125)
        np.testing.assert_allclose(dpred, [0.5])

    def test_huber_linear_region(self):
        pred = np.array([10.0])
        target = np.array([0.0])
        loss, dpred = huber_loss(pred, target, delta=1.0)
        assert loss == pytest.approx(9.5)
        np.testing.assert_allclose(dpred, [1.0])
